// Vendored code: exempt from workspace lint policy.
#![allow(clippy::all)]

//! Vendored `parking_lot` shim over `std::sync`.
//!
//! The real parking_lot provides faster, poison-free locks. This shim keeps
//! the poison-free *API* (guards come back directly, not inside a `Result`)
//! by recovering the inner data from poisoned std locks: a panicked holder
//! does not wedge every later acquirer.

use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive (std-backed).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (std-backed).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
