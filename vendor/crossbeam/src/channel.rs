//! MPMC channels (Mutex + Condvar backed) with crossbeam-channel semantics:
//! cloneable senders *and* receivers, timeouts, and disconnect detection.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sending half of a channel has hung up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Why a non-blocking receive returned nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Queue empty, senders still connected.
    Empty,
    /// Queue empty and every sender dropped.
    Disconnected,
}

/// Why a bounded-wait receive returned nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// Queue empty and every sender dropped.
    Disconnected,
}

/// Every receiver dropped; carries the unsent message back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}
impl std::error::Error for RecvError {}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}
impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Creates a "bounded" channel. The shim does not block producers at the
/// capacity limit (the workspace only relies on bounded channels for
/// batching hints, never for backpressure correctness); it is an unbounded
/// queue with the bounded constructor's signature.
pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    unbounded()
}

/// The sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues a message, failing only when every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(msg));
        }
        self.shared.queue.lock().unwrap().push_back(msg);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake all blocked receivers so they observe
            // the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

/// The receiving half; cloneable (competing consumers).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self.shared.ready.wait(q).unwrap();
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self.shared.ready.wait_timeout(q, deadline - now).unwrap();
            q = guard;
            if res.timed_out() && q.is_empty() {
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.queue.lock().unwrap();
        if let Some(msg) = q.pop_front() {
            return Ok(msg);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking iterator draining the channel until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_a_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(
            (0..10).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_to_no_receivers_fails() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        t.join().unwrap();
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = unbounded();
        let n = 1000;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..n {
                        tx.send(p * n + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 4 * n);
    }
}
