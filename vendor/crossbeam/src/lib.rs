// Vendored code: exempt from workspace lint policy.
#![allow(clippy::all)]

//! Vendored `crossbeam` shim: the `channel` module only.

pub mod channel;
