//! `Serialize`/`Deserialize` impls for the primitives and containers the
//! workspace's derived types are built from.

use crate::{Content, DeError, Deserialize, Serialize};

// --- booleans --------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

// --- integers --------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                #[allow(unused_comparisons)]
                if (*self as i128) < 0 {
                    Content::I64(*self as i64)
                } else {
                    Content::U64(*self as u64)
                }
            }
        }

        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let wide: i128 = match c {
                    Content::I64(v) => i128::from(*v),
                    Content::U64(v) => i128::from(*v),
                    // JSON has one number type; accept integral floats.
                    Content::F64(v) if v.fract() == 0.0 && v.abs() < 1.8e19 => *v as i128,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --- floats ----------------------------------------------------------------

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        // Exact widening; narrows back exactly on deserialize.
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        f64::deserialize(c).map(|v| v as f32)
    }
}

// --- strings ---------------------------------------------------------------

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

// --- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let s = c
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "array"))?;
        if s.len() != N {
            return Err(DeError(format!(
                "expected sequence of length {N}, got {}",
                s.len()
            )));
        }
        let v: Vec<T> = s.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        v.try_into()
            .map_err(|_| DeError::expected("exact-length sequence", "array"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Content {
        Content::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let s = c
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "tuple"))?;
        if s.len() != 2 {
            return Err(DeError::expected("2-element sequence", "tuple"));
        }
        Ok((A::deserialize(&s[0])?, B::deserialize(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Content {
        Content::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let s = c
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "tuple"))?;
        if s.len() != 3 {
            return Err(DeError::expected("3-element sequence", "tuple"));
        }
        Ok((
            A::deserialize(&s[0])?,
            B::deserialize(&s[1])?,
            C::deserialize(&s[2])?,
        ))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn serialize(&self) -> Content {
        Content::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
            self.3.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let s = c
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "tuple"))?;
        if s.len() != 4 {
            return Err(DeError::expected("4-element sequence", "tuple"));
        }
        Ok((
            A::deserialize(&s[0])?,
            B::deserialize(&s[1])?,
            C::deserialize(&s[2])?,
            D::deserialize(&s[3])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip_across_content_forms() {
        assert_eq!(usize::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&Content::I64(-7)).unwrap(), -7);
        assert_eq!(u8::deserialize(&Content::F64(3.0)).unwrap(), 3);
        assert!(u8::deserialize(&Content::I64(-1)).is_err());
        assert!(u8::deserialize(&Content::F64(0.5)).is_err());
    }

    #[test]
    fn f32_widens_exactly() {
        for v in [0.1f32, -1e30, 3.14159, f32::MIN_POSITIVE] {
            let c = v.serialize();
            assert_eq!(f32::deserialize(&c).unwrap(), v);
        }
    }

    #[test]
    fn arrays_check_length() {
        let c = [1usize, 2, 3].serialize();
        assert_eq!(<[usize; 3]>::deserialize(&c).unwrap(), [1, 2, 3]);
        assert!(<[usize; 2]>::deserialize(&c).is_err());
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u32>::deserialize(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::deserialize(&Content::U64(5)).unwrap(),
            Some(5)
        );
        assert_eq!(None::<u32>.serialize(), Content::Null);
    }
}
