// Vendored code: exempt from workspace lint policy.
#![allow(clippy::all)]

//! Vendored `serde` shim.
//!
//! Instead of upstream's visitor architecture, values round-trip through an
//! owned [`Content`] tree (the same idea as `serde_json::Value`): `Serialize`
//! renders a value *to* a `Content`, `Deserialize` reads a value *from* one.
//! That is dramatically simpler than the streaming design and is fully
//! adequate for this workspace, which only (de)serializes small config and
//! report structures through `serde_json`.
//!
//! Maps preserve insertion order (`Vec` of pairs) so emitted JSON keeps
//! struct field order, matching upstream derive output.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

mod impls;

/// An owned, self-describing value tree — the interchange format between
/// [`Serialize`], [`Deserialize`], and the `serde_json` shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null` (also `None` and non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Negative integer.
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Key/value map in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A value renderable to a [`Content`] tree.
pub trait Serialize {
    /// Renders `self` as a content tree.
    fn serialize(&self) -> Content;
}

/// A value reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reads a value out of a content tree.
    fn deserialize(c: &Content) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    /// Type mismatch while deserializing `ty`.
    pub fn expected(what: &str, ty: &str) -> DeError {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// Enum tag did not match any variant of `ty`.
    pub fn unknown_variant(tag: &str, ty: &str) -> DeError {
        DeError(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a struct field in a map's entries. Used by generated
/// `Deserialize` impls; missing fields are an error (no `#[serde(default)]`
/// in this shim).
pub fn field<'a>(
    entries: &'a [(String, Content)],
    name: &str,
    ty: &str,
) -> Result<&'a Content, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}` while deserializing {ty}")))
}
