// Vendored code: exempt from workspace lint policy.
#![allow(clippy::all)]

//! Vendored `rayon` shim.
//!
//! Provides the parallel-slice API the tensor kernels use
//! (`par_chunks_mut(..).enumerate().for_each(..)`) on `std::thread::scope`
//! instead of a work-stealing pool. Each call splits the chunk list evenly
//! across up to [`max_threads`] OS threads; callers (the tensor kernels)
//! already gate small inputs onto a serial path, so per-call spawn overhead
//! only occurs on matrices large enough to amortize it.

use std::sync::OnceLock;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::ParallelSliceMut;
}

/// Number of worker threads a parallel call may use.
pub fn max_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    })
}

/// Parallel mutable-slice operations.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel analog of `chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate(self)
    }

    /// Applies `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel chunk iterator.
pub struct ParChunksMutEnumerate<'a, T>(ParChunksMut<'a, T>);

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Applies `f` to every `(index, chunk)` pair, fanning the chunk list
    /// out over scoped threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk_size = self.0.chunk_size;
        let mut chunks: Vec<(usize, &mut [T])> =
            self.0.slice.chunks_mut(chunk_size).enumerate().collect();
        let threads = max_threads().min(chunks.len());
        if threads <= 1 {
            for item in chunks {
                f(item);
            }
            return;
        }
        // Split the chunk list into `threads` contiguous portions; each
        // scoped thread owns one portion outright, so no work queue or
        // synchronization is needed.
        let per = chunks.len().div_ceil(threads);
        std::thread::scope(|s| {
            while !chunks.is_empty() {
                let take = per.min(chunks.len());
                let portion: Vec<(usize, &mut [T])> = chunks.drain(..take).collect();
                let f = &f;
                s.spawn(move || {
                    for item in portion {
                        f(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_chunks_visited_with_correct_indices() {
        let mut v = vec![0usize; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i + 1;
            }
        });
        for (pos, &x) in v.iter().enumerate() {
            assert_eq!(x, pos / 10 + 1);
        }
    }

    #[test]
    fn runs_every_chunk_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut v = vec![0u8; 64];
        v.par_chunks_mut(1).for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn single_chunk_stays_serial() {
        let mut v = vec![1.0f32; 7];
        v.par_chunks_mut(100).enumerate().for_each(|(i, c)| {
            assert_eq!(i, 0);
            for x in c.iter_mut() {
                *x *= 2.0;
            }
        });
        assert!(v.iter().all(|&x| x == 2.0));
    }
}
