// Vendored code: exempt from workspace lint policy.
#![allow(clippy::all)]

//! Vendored `rayon` shim: a real persistent worker pool.
//!
//! The original shim spawned and joined scoped OS threads on *every*
//! parallel call, which put thread start-up latency on the matmul hot path
//! of every training step. This version keeps the same public surface
//! (`par_chunks_mut(..).enumerate().for_each(..)`) but executes on:
//!
//! * **long-lived worker threads**, spawned lazily on the first parallel
//!   call and parked on a condvar between jobs;
//! * a **shared injector**: submitted jobs are pushed to a queue; idle
//!   workers and the submitting thread race on each job's **atomic chunk
//!   cursor**, so chunk distribution self-balances (a slow thread simply
//!   claims fewer chunks) without any per-chunk channel traffic;
//! * a [`join`] two-closure primitive in the classic rayon style.
//!
//! ## Scaling fixes (PR 10 regression notes)
//!
//! The first `VC_THREADS` sweep (`bench_train`) exposed three scaling bugs
//! in this shim, all fixed here; keep them fixed:
//!
//! 1. **False sharing on the job header.** `cursor`, `pending` and
//!    `helpers` were adjacent `AtomicUsize` fields — three hot atomics on
//!    one 64-byte line, so every chunk claim (`cursor.fetch_add`) and every
//!    chunk retire (`pending.fetch_sub`) by different threads ping-ponged
//!    the same cache line. Each is now wrapped in [`CachePadded`]
//!    (`#[repr(align(64))]`) so claims and retires stay on separate lines.
//! 2. **Thundering herd on short chunk lists.** Submission used
//!    `notify_all`: a 2-chunk job on an 8-thread pool woke all 7 workers,
//!    6 of which fought over the queue lock, found nothing, and went back
//!    to sleep — pure contention on the exact jobs where dispatch latency
//!    dominates. Submission now wakes `min(helper_cap, n_items - 1)`
//!    workers with `notify_one`.
//! 3. **`join` was serial.** It ran `a` to completion *first* and only then
//!    called the internal parallel-for with `n_items == 1`, which takes the
//!    inline fast path — `b` was never offered to the pool at all. `join`
//!    now pushes the `b` job *before* running `a`, so an idle worker can
//!    overlap it, and the caller claims `b` itself if nobody got there.
//!
//! Dispatch is also **allocation-free** now: jobs live on the submitting
//! thread's stack and the injector holds raw pointers in a pre-reserved
//! queue, so steady-state parallel calls do no heap work (this is load
//! bearing for `zero_alloc.rs`, which asserts a zero-allocation training
//! step at every thread cap).
//!
//! ## Determinism
//!
//! Which thread executes a chunk never affects *what* the chunk computes:
//! every chunk owns a disjoint output range and runs an internally
//! sequential kernel. Results are therefore byte-identical for any thread
//! count, including 1 (see `VC_THREADS`).
//!
//! ## Configuration
//!
//! * `VC_THREADS=n` caps total parallelism (workers + caller) at `n`;
//!   `VC_THREADS=1` runs every parallel call inline on the caller.
//! * [`set_thread_cap`] adjusts the cap at runtime (used by the scaling
//!   benches); the cap never exceeds the spawned worker count + 1.
//!
//! ## Panic safety
//!
//! A panicking chunk poisons only its own job: workers catch the payload,
//! finish draining the job, and the panic resumes on the *submitting*
//! thread once the job completes. Worker threads never die, so a panicked
//! call does not wedge later calls.
//!
//! ## Nested calls
//!
//! A parallel call from inside a worker thread pushes a child job and the
//! nested caller drains it itself (other workers may help if idle), so
//! nesting cannot deadlock: progress never waits on a thread that is
//! waiting on us.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::ParallelSliceMut;
}

// --------------------------------------------------------------------- pool

/// Pads a hot atomic out to its own cache line so concurrent updates to
/// *different* counters never contend on the same line (x86-64 lines are
/// 64 bytes; aarch64 is sometimes 128 but 64 still removes the worst of
/// the ping-pong).
#[repr(align(64))]
struct CachePadded<T>(T);

/// Runtime cap on total parallelism (workers helping + the caller).
/// `usize::MAX` means "no extra cap beyond the pool size".
static THREAD_CAP: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Caps the number of threads (including the calling thread) that later
/// parallel calls may use. Intended for benchmarks measuring scaling
/// curves; `n` is clamped to at least 1. Returns the previous cap.
pub fn set_thread_cap(n: usize) -> usize {
    THREAD_CAP.swap(n.max(1), Ordering::SeqCst)
}

/// Total parallelism the pool was built for (workers + caller), after the
/// `VC_THREADS` override but before [`set_thread_cap`].
pub fn max_threads() -> usize {
    pool().n_threads
}

/// Parallelism the next parallel call will actually use (pool size clamped
/// by [`set_thread_cap`]). Kernels use this to pick chunk granularity.
pub fn current_threads() -> usize {
    effective_threads()
}

fn effective_threads() -> usize {
    max_threads().min(THREAD_CAP.load(Ordering::Relaxed))
}

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("VC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Type-erased `Fn(chunk_index)` that may borrow the submitting thread's
/// stack. Safety: the pointee outlives every call because the submitter
/// blocks in `Job::wait_settled` until all chunks have completed and every
/// helper has deregistered.
struct FnPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for FnPtr {}
unsafe impl Sync for FnPtr {}

/// One submitted parallel-for: an atomic cursor over `n_items` chunks.
///
/// Jobs live on the *submitting thread's stack* — the injector queue holds
/// raw pointers, not `Arc`s, so dispatch never allocates. The lifetime
/// protocol that makes this sound:
///
/// * workers register as helpers (`helpers += 1`) only **under the queue
///   lock, while the job is still in the queue**;
/// * the submitter **removes the job from the queue before waiting**, so
///   after removal no new helper can appear;
/// * the submitter then waits for `done && helpers == 0`
///   ([`Job::wait_settled`]) before its frame (and the job) goes away. A
///   helper's final access is the decrement + notify inside
///   [`Job::release_helper`], performed while holding `done`'s mutex, so
///   the submitter cannot observe the settled state before the helper is
///   finished touching the job.
struct Job {
    func: FnPtr,
    n_items: usize,
    /// Max workers allowed to help (thread cap minus the submitter).
    helper_cap: usize,
    /// Next chunk index to claim. Own cache line: this is the single
    /// hottest atomic (every chunk claim hits it).
    cursor: CachePadded<AtomicUsize>,
    /// Chunks not yet finished (claimed or not). Own line so retires don't
    /// ping-pong with claims.
    pending: CachePadded<AtomicUsize>,
    /// Workers currently helping (the submitter is not counted).
    helpers: CachePadded<AtomicUsize>,
    /// First panic payload raised by any chunk.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Job {
    /// Safety: caller must keep `f` alive until [`Job::wait_settled`]
    /// returns (enforced by the submit/finish protocol in this module).
    fn new(f: &(dyn Fn(usize) + Sync), n_items: usize, helper_cap: usize) -> Job {
        Job {
            func: FnPtr(unsafe {
                std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                    f,
                )
            }),
            n_items,
            helper_cap,
            cursor: CachePadded(AtomicUsize::new(0)),
            pending: CachePadded(AtomicUsize::new(n_items)),
            helpers: CachePadded(AtomicUsize::new(0)),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }

    /// Claims and runs chunks until the cursor is exhausted. Panics are
    /// captured, never propagated — the submitter re-raises them.
    fn run_items(&self) {
        loop {
            let i = self.cursor.0.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_items {
                return;
            }
            let f = unsafe { &*self.func.0 };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                let mut p = self.panic.lock().unwrap();
                if p.is_none() {
                    *p = Some(payload);
                }
            }
            if self.pending.0.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut d = self.done.lock().unwrap();
                *d = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.cursor.0.load(Ordering::Relaxed) >= self.n_items
    }

    /// Deregisters a helper. The decrement and the wakeup happen while
    /// holding `done`'s mutex so this is the helper's *last* access to the
    /// job before the submitter can free it (see the struct docs).
    fn release_helper(&self) {
        let _d = self.done.lock().unwrap();
        self.helpers.0.fetch_sub(1, Ordering::AcqRel);
        self.done_cv.notify_all();
    }

    /// Blocks until every chunk has completed *and* every helper has
    /// deregistered — only then may the job's memory be reclaimed.
    fn wait_settled(&self) {
        let mut d = self.done.lock().unwrap();
        while !*d || self.helpers.0.load(Ordering::Acquire) != 0 {
            d = self.done_cv.wait(d).unwrap();
        }
    }
}

/// Pointer to a stack-resident [`Job`]. Valid while the job is queued or
/// has live helpers (see [`Job`] docs).
#[derive(Clone, Copy)]
struct JobPtr(*const Job);
unsafe impl Send for JobPtr {}

/// Queue capacity reserved at pool init. The queue holds one entry per
/// *in-flight* parallel call, so its depth is bounded by call-nesting
/// depth (plus concurrent submitting threads) — far below this. Keeping it
/// pre-reserved means steady-state submission never reallocates.
const QUEUE_RESERVE: usize = 64;

struct Injector {
    /// Jobs with unclaimed chunks, in submission order.
    queue: Mutex<Vec<JobPtr>>,
    cv: Condvar,
}

struct Pool {
    injector: Arc<Injector>,
    /// Total parallelism: worker threads + the submitting thread.
    n_threads: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let n_threads = configured_threads();
        let injector = Arc::new(Injector {
            queue: Mutex::new(Vec::with_capacity(QUEUE_RESERVE)),
            cv: Condvar::new(),
        });
        for w in 0..n_threads.saturating_sub(1) {
            let inj = Arc::clone(&injector);
            std::thread::Builder::new()
                .name(format!("vc-pool-{w}"))
                .spawn(move || worker_loop(inj))
                .expect("spawn pool worker");
        }
        Pool {
            injector,
            n_threads,
        }
    })
}

fn worker_loop(inj: Arc<Injector>) {
    loop {
        let job: *const Job = {
            let mut q = inj.queue.lock().unwrap();
            loop {
                // Claim a helper slot under the lock so the per-job helper
                // cap is exact and the registration is ordered before any
                // possible dequeue by the submitter.
                let found = q
                    .iter()
                    .find(|jp| {
                        let j = unsafe { &*jp.0 };
                        !j.exhausted() && j.helpers.0.load(Ordering::Relaxed) < j.helper_cap
                    })
                    .copied();
                if let Some(jp) = found {
                    unsafe { &*jp.0 }.helpers.0.fetch_add(1, Ordering::Relaxed);
                    break jp.0;
                }
                q = inj.cv.wait(q).unwrap();
            }
        };
        // Safety: registered as a helper above, so the submitter's
        // wait_settled keeps the job alive until release_helper below.
        let j = unsafe { &*job };
        j.run_items();
        j.release_helper();
    }
}

/// Makes `job` visible to the pool and wakes just enough workers to cover
/// its chunks (`notify_all` here was the thundering-herd bug — see the
/// module docs).
fn submit(p: &Pool, job: &Job) {
    {
        let mut q = p.injector.queue.lock().unwrap();
        q.push(JobPtr(job as *const Job));
    }
    let wake = job.helper_cap.min(job.n_items.saturating_sub(1));
    for _ in 0..wake {
        p.injector.cv.notify_one();
    }
}

/// Dequeues `job` (cutting off new helpers) and blocks until it is fully
/// settled. After this returns the job may be dropped.
fn finish(p: &Pool, job: &Job) {
    {
        let mut q = p.injector.queue.lock().unwrap();
        if let Some(pos) = q.iter().position(|x| std::ptr::eq(x.0, job)) {
            q.remove(pos);
        }
    }
    job.wait_settled();
}

/// Runs `f(0..n_items)` across the pool, blocking until every chunk has
/// completed. Panics from chunks are re-raised here, on the caller.
fn run_parallel(n_items: usize, f: &(dyn Fn(usize) + Sync)) {
    if n_items == 0 {
        return;
    }
    let threads = effective_threads();
    if threads <= 1 || n_items == 1 {
        for i in 0..n_items {
            f(i);
        }
        return;
    }
    let p = pool();
    let job = Job::new(f, n_items, threads - 1);
    submit(p, &job);
    job.run_items();
    finish(p, &job);
    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Runs both closures and returns both results; `b` is pushed to the pool
/// *before* the caller runs `a`, so an idle worker can execute it
/// concurrently, and the caller claims `b` itself if no worker got there
/// first. Panics from either side propagate after both have finished
/// (`a`'s first if both panicked).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if effective_threads() <= 1 {
        // Match the pool path's semantics: `b` always runs (there it was
        // already submitted before `a` started), and `a`'s panic is
        // re-raised only after `b` has finished.
        let ra = catch_unwind(AssertUnwindSafe(a));
        let rb = catch_unwind(AssertUnwindSafe(b));
        return match (ra, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(pa), _) => resume_unwind(pa),
            (_, Err(pb)) => resume_unwind(pb),
        };
    }
    let b_fn: Mutex<Option<B>> = Mutex::new(Some(b));
    let b_out: Mutex<Option<RB>> = Mutex::new(None);
    let run_b = |_i: usize| {
        if let Some(bf) = b_fn.lock().unwrap().take() {
            *b_out.lock().unwrap() = Some(bf());
        }
    };
    let p = pool();
    let job = Job::new(&run_b, 1, 1);
    submit(p, &job);
    let mut ra: Option<RA> = None;
    // Catch `a`'s panic so the caller's frame (which the queued `b` job
    // borrows) stays alive until that job has fully settled, then re-raise.
    let a_result = {
        let ra = &mut ra;
        catch_unwind(AssertUnwindSafe(move || *ra = Some(a())))
    };
    job.run_items();
    finish(p, &job);
    if let Err(payload) = a_result {
        resume_unwind(payload);
    }
    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
    (
        ra.expect("join: closure `a` completed without a result"),
        b_out
            .into_inner()
            .unwrap()
            .expect("join: closure `b` completed without a result"),
    )
}

// ----------------------------------------------------------- slice surface

/// Parallel mutable-slice operations.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel analog of `chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate(self)
    }

    /// Applies `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel chunk iterator.
pub struct ParChunksMutEnumerate<'a, T>(ParChunksMut<'a, T>);

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Applies `f` to every `(index, chunk)` pair across the pool.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk_size = self.0.chunk_size;
        let len = self.0.slice.len();
        if len == 0 {
            return;
        }
        let n_chunks = len.div_ceil(chunk_size);
        let base = self.0.slice.as_mut_ptr() as usize;
        let run = |i: usize| {
            let start = i * chunk_size;
            let clen = chunk_size.min(len - start);
            // Safety: chunk `i` is a disjoint subrange of the borrowed
            // slice, each index is claimed exactly once by the job cursor,
            // and the borrow outlives the job (run_parallel blocks).
            let chunk =
                unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), clen) };
            f((i, chunk));
        };
        run_parallel(n_chunks, &run);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Tests that touch the global [`set_thread_cap`] must not interleave.
    static CAP_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn all_chunks_visited_with_correct_indices() {
        let mut v = vec![0usize; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i + 1;
            }
        });
        for (pos, &x) in v.iter().enumerate() {
            assert_eq!(x, pos / 10 + 1);
        }
    }

    #[test]
    fn runs_every_chunk_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut v = vec![0u8; 64];
        v.par_chunks_mut(1).for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn single_chunk_stays_serial() {
        let mut v = vec![1.0f32; 7];
        v.par_chunks_mut(100).enumerate().for_each(|(i, c)| {
            assert_eq!(i, 0);
            for x in c.iter_mut() {
                *x *= 2.0;
            }
        });
        assert!(v.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn empty_slice_is_a_noop() {
        let mut v: Vec<u8> = Vec::new();
        v.par_chunks_mut(4)
            .for_each(|_| panic!("no chunks expected"));
    }

    #[test]
    fn pool_survives_a_panicking_task() {
        let mut v = vec![0u32; 256];
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            v.par_chunks_mut(8).enumerate().for_each(|(i, _)| {
                if i == 7 {
                    panic!("poisoned chunk");
                }
            });
        }));
        assert!(r.is_err(), "panic must propagate to the submitter");
        // Later calls must still run to completion on the same pool.
        let mut w = vec![0usize; 333];
        w.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i;
            }
        });
        for (pos, &x) in w.iter().enumerate() {
            assert_eq!(x, pos / 7);
        }
    }

    #[test]
    fn nested_par_calls_do_not_deadlock() {
        let mut outer = vec![0usize; 16];
        outer.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
            let mut inner = vec![0usize; 64];
            inner.par_chunks_mut(8).enumerate().for_each(|(j, c)| {
                for x in c.iter_mut() {
                    *x = j + 1;
                }
            });
            let sum: usize = inner.iter().sum();
            for x in chunk.iter_mut() {
                *x = i * 1000 + sum;
            }
        });
        let expect: usize = (0..8).map(|j| (j + 1) * 8).sum();
        for (pos, &x) in outer.iter().enumerate() {
            assert_eq!(x, (pos / 4) * 1000 + expect);
        }
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "right".len());
        assert_eq!((a, b), (4, 5));
    }

    #[test]
    fn join_nests() {
        let ((a, b), (c, d)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn join_propagates_b_panic() {
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            join(|| 1, || -> i32 { panic!("b failed") })
        }));
        assert!(r.is_err());
        // Pool still usable.
        let (a, b) = join(|| 10, || 20);
        assert_eq!((a, b), (10, 20));
    }

    #[test]
    fn join_propagates_a_panic_after_b_completes() {
        let b_ran = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            join(
                || -> i32 { panic!("a failed") },
                || b_ran.fetch_add(1, Ordering::Relaxed),
            )
        }));
        assert!(r.is_err());
        assert_eq!(
            b_ran.load(Ordering::Relaxed),
            1,
            "b must complete before a's panic resumes"
        );
    }

    #[test]
    fn thread_cap_one_runs_inline() {
        let _g = CAP_LOCK.lock().unwrap();
        let prev = set_thread_cap(1);
        let caller = std::thread::current().id();
        let mut v = vec![0u8; 4096];
        v.par_chunks_mut(16).for_each(|chunk| {
            assert_eq!(std::thread::current().id(), caller);
            for x in chunk.iter_mut() {
                *x = 1;
            }
        });
        set_thread_cap(prev);
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn results_identical_across_thread_caps() {
        let _g = CAP_LOCK.lock().unwrap();
        // The kernels' determinism argument in miniature: the chunk→output
        // mapping is fixed, so any cap produces byte-identical results.
        let run = |cap: usize| {
            let prev = set_thread_cap(cap);
            let mut v = vec![0f32; 10_000];
            v.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = (i * 64 + j) as f32 * 0.5;
                }
            });
            set_thread_cap(prev);
            v
        };
        let serial = run(1);
        let parallel = run(usize::MAX);
        assert_eq!(
            serial.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            parallel.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}
