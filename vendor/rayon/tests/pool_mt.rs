//! Multi-thread pool behaviour, pinned at `VC_THREADS=8`.
//!
//! The in-crate unit tests run against whatever parallelism the host
//! offers (often 1 in CI containers), so they cannot observe scaling
//! behaviour at all. This integration test owns its process: `setup()`
//! forces `VC_THREADS=8` before the pool's `OnceLock` initializes, so the
//! pool really has 7 workers regardless of host core count, and
//! `set_thread_cap` sweeps below that.

use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Forces an 8-thread pool (idempotent, race-free: the first caller sets
/// the env var and touches the pool inside the `OnceLock` init). Every
/// test calls this first. Also serves as the cap-sweep lock token source.
fn setup() -> usize {
    static INIT: OnceLock<usize> = OnceLock::new();
    *INIT.get_or_init(|| {
        std::env::set_var("VC_THREADS", "8");
        rayon::max_threads()
    })
}

/// Tests that touch the global `set_thread_cap` must not interleave.
static CAP_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn pool_honours_vc_threads_override() {
    assert_eq!(setup(), 8, "VC_THREADS=8 must size the pool to 8");
}

#[test]
fn work_actually_spreads_across_threads() {
    setup();
    let _g = CAP_LOCK.lock().unwrap();
    let prev = rayon::set_thread_cap(8);
    let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
    let mut v = [0u8; 64];
    v.par_chunks_mut(1).for_each(|_| {
        ids.lock().unwrap().insert(std::thread::current().id());
        // Long enough for parked workers to wake and claim chunks, short
        // enough to keep the test fast even fully serialized (64 × 2 ms).
        std::thread::sleep(Duration::from_millis(2));
    });
    rayon::set_thread_cap(prev);
    let distinct = ids.lock().unwrap().len();
    assert!(
        distinct >= 2,
        "expected chunks on ≥2 threads with an 8-thread pool, saw {distinct}"
    );
}

#[test]
fn results_bit_identical_across_cap_sweep() {
    setup();
    let _g = CAP_LOCK.lock().unwrap();
    let run = |cap: usize| {
        let prev = rayon::set_thread_cap(cap);
        let mut v = vec![0f32; 40_000];
        v.par_chunks_mut(97).enumerate().for_each(|(i, chunk)| {
            let mut acc = 0.1f32;
            for (j, x) in chunk.iter_mut().enumerate() {
                acc = ((i * 97 + j) as f32).mul_add(0.25, acc);
                *x = acc;
            }
        });
        rayon::set_thread_cap(prev);
        v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
    };
    let baseline = run(1);
    for cap in [2, 4, 8] {
        assert_eq!(run(cap), baseline, "cap={cap} must be bit-identical");
    }
}

#[test]
fn join_overlaps_b_with_a() {
    setup();
    let _g = CAP_LOCK.lock().unwrap();
    let prev = rayon::set_thread_cap(8);
    // `a` blocks until `b` signals: this only terminates if `b` runs on a
    // worker *while* `a` is still executing — i.e. join really offers `b`
    // to the pool before running `a` (the PR 10 join fix).
    let (tx, rx) = mpsc::channel::<()>();
    let ((), sent) = rayon::join(
        move || {
            rx.recv_timeout(Duration::from_secs(10))
                .expect("b never ran concurrently with a — join is serial again")
        },
        move || tx.send(()).is_ok(),
    );
    rayon::set_thread_cap(prev);
    assert!(sent);
}

#[test]
fn panic_poisons_only_its_job_at_full_width() {
    setup();
    let _g = CAP_LOCK.lock().unwrap();
    let prev = rayon::set_thread_cap(8);
    let mut v = vec![0u32; 512];
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        v.par_chunks_mut(4).enumerate().for_each(|(i, _)| {
            if i % 16 == 3 {
                panic!("chunk {i} poisoned");
            }
        });
    }));
    assert!(r.is_err(), "panic must reach the submitter");
    // Pool must stay fully functional at width 8 afterwards.
    let counter = AtomicUsize::new(0);
    let mut w = vec![0u8; 256];
    w.par_chunks_mut(2).for_each(|_| {
        counter.fetch_add(1, Ordering::Relaxed);
    });
    rayon::set_thread_cap(prev);
    assert_eq!(counter.load(Ordering::Relaxed), 128);
}

#[test]
fn nested_calls_at_full_width() {
    setup();
    let _g = CAP_LOCK.lock().unwrap();
    let prev = rayon::set_thread_cap(8);
    let mut outer = vec![0usize; 32];
    outer.par_chunks_mut(4).enumerate().for_each(|(i, chunk)| {
        let mut inner = vec![0usize; 128];
        inner.par_chunks_mut(8).enumerate().for_each(|(j, c)| {
            for x in c.iter_mut() {
                *x = j + 1;
            }
        });
        let sum: usize = inner.iter().sum();
        for x in chunk.iter_mut() {
            *x = i * 10_000 + sum;
        }
    });
    rayon::set_thread_cap(prev);
    let expect: usize = (0..16).map(|j| (j + 1) * 8).sum();
    for (pos, &x) in outer.iter().enumerate() {
        assert_eq!(x, (pos / 4) * 10_000 + expect);
    }
}
