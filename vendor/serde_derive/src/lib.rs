//! Vendored `serde_derive` shim.
//!
//! Derives `serde::Serialize` / `serde::Deserialize` for the shapes this
//! workspace actually uses: structs with named fields, tuple structs, unit
//! structs, and enums whose variants are unit, newtype, tuple, or
//! struct-like. Generics, lifetimes, and `#[serde(...)]` field attributes
//! are not supported (the attribute is accepted and ignored so adding one
//! is a compile-time no-op rather than an error).
//!
//! The implementation deliberately avoids `syn`/`quote`: the item is parsed
//! by walking `proc_macro::TokenTree`s — only names and field shapes are
//! needed, never types, because the generated code lets inference pick the
//! right `Deserialize` impl per field. The impls are assembled as source
//! strings and re-parsed into a `TokenStream`.
//!
//! Wire shape matches upstream serde's defaults (externally tagged enums):
//! unit variant → `"Name"`, newtype variant → `{"Name": value}`, tuple
//! variant → `{"Name": [..]}`, struct variant → `{"Name": {..}}`, newtype
//! struct → the inner value, tuple struct → `[..]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Item model + token-walking parser
// ---------------------------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    kind: Kind,
}

impl Item {
    fn parse(input: TokenStream) -> Item {
        let toks: Vec<TokenTree> = input.into_iter().collect();
        let mut i = 0;
        skip_attrs_and_vis(&toks, &mut i);
        let kw = expect_ident(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
        match kw.as_str() {
            "struct" => {
                let fields = match toks.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => Fields::Unit,
                };
                Item {
                    name,
                    kind: Kind::Struct(fields),
                }
            }
            "enum" => {
                let g = match toks.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                    _ => panic!("serde_derive shim: malformed enum `{name}`"),
                };
                Item {
                    name,
                    kind: Kind::Enum(parse_variants(g.stream())),
                }
            }
            other => panic!("serde_derive shim: cannot derive for `{other}` items"),
        }
    }
}

/// Advances past any `#[...]` attributes (incl. doc comments) and a `pub` /
/// `pub(...)` visibility qualifier.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // '#' + [...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, found {other:?}"),
    }
}

/// `{ a: T, b: U }` → `["a", "b"]`. Types are skipped by scanning to the
/// next comma outside any `<...>` nesting (delimited groups are single
/// tokens, so only angle brackets need balancing).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        fields.push(expect_ident(&toks, &mut i));
        i += 1; // ':'
        let mut angle_depth = 0i32;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// `(pub u64,)` / `(f32, f32)` → field count.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut angle_depth = 0i32;
    let mut segment_has_tokens = false;
    for t in &toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if segment_has_tokens {
                        count += 1;
                    }
                    segment_has_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip anything up to the separating comma (e.g. a discriminant).
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})),")
                })
                .collect();
            format!("::serde::Content::Map(vec![{entries}])")
        }
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: String = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize(&self.{k}),"))
                .collect();
            format!("::serde::Content::Seq(vec![{items}])")
        }
        Kind::Struct(Fields::Unit) => "::serde::Content::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("{name}::{v} => ::serde::Content::Str(\"{v}\".to_string()),")
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Content::Map(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::serialize(f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b}),"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Content::Map(vec![(\"{v}\".to_string(), \
                             ::serde::Content::Seq(vec![{items}]))]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::serialize({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Content::Map(vec![\
                             (\"{v}\".to_string(), ::serde::Content::Map(vec![{entries}]))]),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                         ::serde::field(m, \"{f}\", \"{name}\")?)?,"
                    )
                })
                .collect();
            format!(
                "let m = c.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(c)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items: String = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize(&s[{k}])?,"))
                .collect();
            format!(
                "let s = c.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"sequence\", \"{name}\"))?;\n\
                 if s.len() != {n} {{ return Err(::serde::DeError::expected(\
                 \"sequence of {n}\", \"{name}\")); }}\n\
                 Ok({name}({items}))"
            )
        }
        Kind::Struct(Fields::Unit) => format!("let _ = c; Ok({name})"),
        Kind::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(c: &::serde::Content) \
              -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
        .collect();
    let payload_variants: Vec<&(String, Fields)> = variants
        .iter()
        .filter(|(_, f)| !matches!(f, Fields::Unit))
        .collect();

    let str_arm = format!(
        "::serde::Content::Str(s) => match s.as_str() {{\n\
             {unit_arms}\n\
             other => Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
         }},"
    );

    let map_arm = if payload_variants.is_empty() {
        String::new()
    } else {
        let arms: String = payload_variants
            .iter()
            .map(|(v, fields)| match fields {
                Fields::Tuple(1) => format!(
                    "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::deserialize(payload)?)),"
                ),
                Fields::Tuple(n) => {
                    let items: String = (0..*n)
                        .map(|k| format!("::serde::Deserialize::deserialize(&s[{k}])?,"))
                        .collect();
                    format!(
                        "\"{v}\" => {{\n\
                             let s = payload.as_seq().ok_or_else(|| \
                             ::serde::DeError::expected(\"sequence\", \"{name}::{v}\"))?;\n\
                             if s.len() != {n} {{ return Err(::serde::DeError::expected(\
                             \"sequence of {n}\", \"{name}::{v}\")); }}\n\
                             Ok({name}::{v}({items}))\n\
                         }}"
                    )
                }
                Fields::Named(fs) => {
                    let inits: String = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize(\
                                 ::serde::field(m, \"{f}\", \"{name}::{v}\")?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "\"{v}\" => {{\n\
                             let m = payload.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"map\", \"{name}::{v}\"))?;\n\
                             Ok({name}::{v} {{ {inits} }})\n\
                         }}"
                    )
                }
                Fields::Unit => unreachable!(),
            })
            .collect();
        format!(
            "::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                 let payload = &entries[0].1;\n\
                 match entries[0].0.as_str() {{\n\
                     {arms}\n\
                     other => Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
                 }}\n\
             }},"
        )
    };

    format!(
        "match c {{\n\
             {str_arm}\n\
             {map_arm}\n\
             _ => Err(::serde::DeError::expected(\
             \"variant string or single-entry map\", \"{name}\")),\n\
         }}"
    )
}
