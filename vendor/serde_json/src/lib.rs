// Vendored code: exempt from workspace lint policy.
#![allow(clippy::all)]

//! Vendored `serde_json` shim: JSON text ⇄ [`serde::Content`] trees.
//!
//! The writer emits numbers with Rust's `{}` formatting (shortest exact
//! round-trip representation, never scientific notation) and serializes
//! non-finite floats as `null`, matching upstream behaviour. The reader is a
//! recursive-descent parser covering the full JSON grammar, including
//! `\uXXXX` escapes with surrogate pairs.

use serde::{Content, Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Clone, Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::deserialize(&content)?)
}

// --- writer ----------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, level: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{}` is the shortest string that parses back to the same
                // f64; integral values print without a fractional part,
                // which the integer-tolerant Deserialize impls accept.
                out.push_str(&format!("{v}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{kw}` at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Content::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Content::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".to_string()))?,
                            );
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(Error("bad escape".to_string())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".to_string()));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("bad \\u escape".to_string()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".to_string()))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".to_string()))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<i64>("-9").unwrap(), -9);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for v in [0.1f64, 1.0 / 3.0, -1e-308, 12345.6789] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), v, "via {s}");
        }
        for v in [0.1f32, -3.3333f32, 1e-38f32] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), v, "via {s}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\n\"quoted\"\t\\slash\u{1F600}é".to_string();
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
        // Surrogate-pair escape form parses too.
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);

        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2,]").is_err());
        assert!(from_str::<f64>("1.2.3").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
    }
}
