// Vendored code: exempt from workspace lint policy.
#![allow(clippy::all)]

//! Vendored `bytes` shim: reference-counted immutable byte buffers plus the
//! little-endian `Buf`/`BufMut` accessors the workspace codecs use.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer (`Arc`-shared).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::new(Vec::new()))
    }

    /// Wraps a static byte slice (copied; cheapness comes from later clones).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::new(bytes.to_vec()))
    }

    /// Wraps owned bytes.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::new(v.to_vec()))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Little-endian read accessors over a shrinking byte cursor.
///
/// Implemented for `&[u8]`: each `get_*` consumes from the front, exactly
/// like the upstream crate. Panics when fewer bytes remain than requested
/// (matching upstream `Buf` semantics).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consumes `n` bytes from the front.
    fn advance(&mut self, n: usize);
    /// Reads the next byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        let v = u16::from_le_bytes(head.try_into().unwrap());
        *self = rest;
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let v = u32::from_le_bytes(head.try_into().unwrap());
        *self = rest;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        let v = u64::from_le_bytes(head.try_into().unwrap());
        *self = rest;
        v
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Little-endian write accessors.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xDEADBEEF);
        b.put_u64_le(42);
        b.put_f32_le(1.5);
        let frozen = b.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 16);
        assert_eq!(cursor.get_u32_le(), 0xDEADBEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &c[..]);
        assert_eq!(b, c);
    }

    #[test]
    #[should_panic]
    fn get_past_end_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
