//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Element-count specification accepted by [`vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = vec(0u8..10, 2..6);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn nested_vec_strategy() {
        let mut rng = StdRng::seed_from_u64(10);
        let s = vec(vec(0u8..3, 0..4), 1..4);
        let v = s.sample(&mut rng);
        assert!(!v.is_empty() && v.len() < 4);
    }
}
