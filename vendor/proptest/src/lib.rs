// Vendored code: exempt from workspace lint policy.
#![allow(clippy::all)]

//! Vendored `proptest` shim.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro over named `arg in strategy` bindings, numeric range strategies,
//! tuples of strategies, and `prop::collection::vec`. Each test runs a fixed
//! number of cases sampled from a deterministic per-test RNG (seeded from the
//! test name), so failures reproduce without a persistence file. Shrinking is
//! not implemented — a failing case panics with the sampled inputs left in
//! the assertion message.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` path alias used as `prop::collection::vec(..)`.
        pub use crate::collection;
    }
}

/// Cases each property runs. Fixed and modest: several properties in this
/// workspace do real numeric work per case.
pub const CASES: u32 = 48;

/// Deterministic per-test RNG so every run explores the same cases.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples the strategies [`CASES`] times.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::rng_for(stringify!($name));
                for __proptest_case in 0..$crate::CASES {
                    let _ = __proptest_case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);
                    )+
                    // Zero-argument closure (bindings captured by move, with
                    // their concrete types) so `prop_assume!` can skip the
                    // case with an early return.
                    (move || $body)();
                }
            }
        )*
    };
}

/// Uniform choice among strategies of one value type (no weights — the
/// real proptest's `weight => strategy` arms are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Asserts a condition inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        /// Doc comments before the attribute must parse.
        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0u8..4, -1.0f32..1.0), 2..9),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!((-1.0..1.0).contains(&b));
            }
        }

        #[test]
        fn assume_skips_cases(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn same_name_same_samples() {
        use crate::strategy::Strategy;
        let mut a = crate::rng_for("t");
        let mut b = crate::rng_for("t");
        let s = 0u64..1000;
        for _ in 0..16 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
