//! Value-generation strategies. A strategy is anything that can be sampled
//! from an RNG; ranges and tuples of strategies are strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn range_and_tuple_sampling() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = (1usize..5, -1.0f32..1.0).sample(&mut rng);
            assert!((1..5).contains(&v.0));
            assert!((-1.0..1.0).contains(&v.1));
        }
    }
}
