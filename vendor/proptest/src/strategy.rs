//! Value-generation strategies. A strategy is anything that can be sampled
//! from an RNG; ranges and tuples of strategies are strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy producing the whole domain of `T` (mirrors proptest's `any`).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Builds a [`Union`]; used by the `prop_oneof!` expansion.
pub fn union<V>(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
    Union { options }
}

/// Boxes a strategy, erasing its concrete type (helper for `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn range_and_tuple_sampling() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = (1usize..5, -1.0f32..1.0).sample(&mut rng);
            assert!((1..5).contains(&v.0));
            assert!((-1.0..1.0).contains(&v.1));
        }
    }
}
