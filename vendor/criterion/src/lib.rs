// Vendored code: exempt from workspace lint policy.
#![allow(clippy::all)]

//! Vendored `criterion` shim.
//!
//! Keeps the bench targets compiling and producing useful wall-clock numbers
//! without the statistics engine: each benchmark runs one warm-up call plus
//! `sample_size` timed calls and reports the median per-call time on stdout.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Benchmark driver handed to the functions in `criterion_group!`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Fresh driver with the default sample size (10).
    pub fn new() -> Criterion {
        Criterion {
            default_sample_size: 10,
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("# group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::new()
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work per iteration; the shim echoes it for context.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Elements(n) => println!("# throughput {n} elements/iter"),
            Throughput::Bytes(n) => println!("# throughput {n} bytes/iter"),
        }
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, |b| f(b));
        self
    }

    /// Runs a benchmark identified by a [`BenchmarkId`], passing `input`
    /// through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.0, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for i in 0..=self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if i > 0 {
                // Sample 0 is warm-up.
                samples.push(b.elapsed);
            }
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!(
            "{}/{id}: median {median:?} over {} samples",
            self.name,
            samples.len()
        );
    }
}

/// Times the closure the benchmark wants measured.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Measures one call of `f` (criterion would run many; the shim's outer
    /// sample loop provides the repetition).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed = start.elapsed();
        hint::black_box(out);
    }
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new<P: Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Work performed per iteration, echoed in the output.
pub enum Throughput {
    /// Logical items per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Opaque value barrier re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Bundles benchmark functions under a group name, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(4));
        let mut calls = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        g.bench_with_input(BenchmarkId::new("with_input", 8), &8u32, |b, &n| {
            b.iter(|| n * 2);
        });
        let _ = BenchmarkId::from_parameter(99);
        g.finish();
        // warm-up + 3 samples per bench_function call
        assert_eq!(calls, 4);
    }
}
