//! Distributions (`Distribution`, `WeightedIndex`).

use crate::{Rng, RngCore};
use std::borrow::Borrow;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Samples indices proportionally to a weight list.
#[derive(Clone, Debug)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

/// Error for invalid weight lists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were supplied.
    NoItem,
    /// A weight was negative or non-finite, or all weights were zero.
    InvalidWeight,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights"),
            WeightedError::InvalidWeight => write!(f, "invalid weight"),
        }
    }
}

impl std::error::Error for WeightedError {}

impl WeightedIndex {
    /// Builds a sampler from any iterator of (borrowed) `f64` weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::InvalidWeight);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen_range(0.0..self.total);
        // First cumulative weight strictly above x.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).unwrap())
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn rejects_bad_weights() {
        assert_eq!(
            WeightedIndex::new(Vec::<f64>::new()),
            Err(WeightedError::NoItem)
        );
        assert_eq!(
            WeightedIndex::new([0.0, 0.0]).unwrap_err(),
            WeightedError::InvalidWeight
        );
        assert_eq!(
            WeightedIndex::new([1.0, -1.0]).unwrap_err(),
            WeightedError::InvalidWeight
        );
    }

    impl PartialEq for WeightedIndex {
        fn eq(&self, other: &Self) -> bool {
            self.cumulative == other.cumulative
        }
    }

    #[test]
    fn heavier_weights_sample_more_often() {
        let d = WeightedIndex::new([1.0, 3.0]).unwrap();
        let mut r = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[d.sample(&mut r)] += 1;
        }
        assert!(counts[1] > 2 * counts[0], "counts {counts:?}");
        assert_eq!(counts[0] + counts[1], 10_000);
    }

    #[test]
    fn zero_weight_entries_never_sampled() {
        let d = WeightedIndex::new([0.0, 1.0, 0.0]).unwrap();
        let mut r = StdRng::seed_from_u64(10);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut r), 1);
        }
    }
}
