// Vendored code: exempt from workspace lint policy.
#![allow(clippy::all)]

//! Vendored `rand` shim.
//!
//! Implements the slice of the rand 0.8 API this workspace uses on top of a
//! single deterministic generator: xoshiro256++ seeded through SplitMix64.
//! Distributions are intentionally simple (modulo integer ranges, scaled
//! floats); the workspace needs reproducible pseudo-randomness, not
//! statistical perfection.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a primitive type (`f32`/`f64` uniform in `[0,1)`,
    /// integers over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (the analog of rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: $t = Standard::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let u: $t = Standard::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let i = r.gen_range(-5isize..=5);
            assert!((-5..=5).contains(&i));
            let u = r.gen_range(0usize..7);
            assert!(u < 7);
            let f = r.gen_range(0.5f32..2.0);
            assert!((0.5..2.0).contains(&f));
        }
        // Both endpoints of an inclusive range are reachable.
        let mut hits = [false; 3];
        for _ in 0..1000 {
            hits[r.gen_range(0usize..=2)] = true;
        }
        assert!(hits.iter().all(|&h| h));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
