//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++, seeded via SplitMix64.
///
/// Not the upstream `StdRng` algorithm (ChaCha12), but the same contract the
/// workspace relies on: a fast, high-quality, fully deterministic stream per
/// seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(mut seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into 256 bits of state;
        // guarantees a non-zero state for xoshiro.
        let mut next = || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng::from_state(state)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step (Blackman & Vigna).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
