//! Runtime demo: the same VC-ASGD job the simulator models, executed on a
//! real threaded volunteer fleet — worker threads training for real, a
//! fault injector preempting a third of them mid-subtask, wall-clock
//! timeouts recovering the lost work, and a checkpoint/resume cycle in the
//! middle of the run.
//!
//! All three runs share one telemetry hub: structured events echo to
//! stderr at the `VC_LOG` level (try `VC_LOG=debug`), latency histograms
//! accumulate across runs, and the merged metrics snapshot lands in
//! `results/runtime_demo_metrics.json`.
//!
//! Run: `cargo run -p vc-examples --bin runtime_demo --release`
//!
//! Live ops surface: set `VC_OPS_ADDR=127.0.0.1:9090` to serve the
//! dashboard (`/`), `/metrics`, `/status`, `/events`, `/trace` and
//! `/healthz` across all three runs, with causal workunit tracing on.
//! `VC_OPS_LINGER_S=30` keeps the server (and the final state) up that
//! many seconds after the last run, for browsing or scripted scrapes.

use std::sync::Arc;
use vc_ops::{OpsHub, OpsServer};
use vc_runtime::{FaultPlan, Runtime, RuntimeConfig, RuntimeReport};
use vc_telemetry::{install_panic_dump, Telemetry};

fn print_report(tag: &str, r: &RuntimeReport) {
    println!(
        "{:>5} {:>7} {:>9} {:>9} {:>17}",
        "epoch", "alpha", "wall", "val acc", "min..max"
    );
    for e in &r.epochs {
        println!(
            "{:>5} {:>7.3} {:>8.2}s {:>9.3} {:>8.3}..{:.3}",
            e.epoch, e.alpha, e.end_wall_s, e.mean_val_acc, e.min_val_acc, e.max_val_acc
        );
    }
    println!(
        "{tag}: val {:.3}, test {:.3} in {:.2}s wall · {} assigned, {} timeouts, {} reassigned",
        r.final_val_acc,
        r.final_test_acc,
        r.wall_s,
        r.server_metrics.assigned,
        r.server_metrics.timeouts,
        r.server_metrics.reassignments,
    );
    println!(
        "faults: {} kills, {} respawns, {} delayed messages · {:.1} MB moved",
        r.kills,
        r.respawns,
        r.delayed_msgs,
        r.bytes_transferred as f64 / 1e6
    );
    let h = &r.telemetry.assim_latency_s;
    println!(
        "assimilation latency: p50 {:.4}s, p95 {:.4}s, p99 {:.4}s over {} results",
        h.quantile(0.50),
        h.quantile(0.95),
        h.quantile(0.99),
        h.count
    );
    println!();
}

fn main() {
    // One hub for the whole demo: events echo to stderr per `VC_LOG`, and
    // a panic anywhere dumps the flight recorder for post-mortem replay.
    let tel = Telemetry::from_env();
    install_panic_dump(
        &tel,
        std::env::temp_dir().join("vc_runtime_demo_crash.jsonl"),
    );

    // Optional live ops surface, shared across all three runs so the
    // dashboard sees one continuous story (the registry accumulates).
    let ops = std::env::var("VC_OPS_ADDR").ok().map(|addr| {
        let hub = Arc::new(OpsHub::new(tel.clone()));
        let srv = OpsServer::start(addr.as_str(), hub.clone()).expect("ops server binds");
        println!("ops server on http://{}/ (dashboard)", srv.local_addr());
        (hub, srv)
    });

    let mut cfg = RuntimeConfig::test_small(7);
    cfg.job.cn = 6; // six real worker threads
    cfg.job.pn = 2; // two parameter-server threads racing on the store
    cfg.job.epochs = 5;
    // With an ops surface up, trace the workunits too: /trace serves the
    // dispatch → … → assimilate waterfall for chrome://tracing.
    cfg.trace = ops.is_some();

    // Preempt a third of the fleet on its second assignment; replacements
    // come up after half a second. Worker messages are randomly delayed.
    cfg.faults = FaultPlan {
        kill_hosts: FaultPlan::fraction_of(cfg.job.cn, 0.34),
        kill_on_nth_assignment: 2,
        respawn_after_s: Some(0.5),
        max_msg_delay_s: 0.02,
        ..FaultPlan::none()
    };
    cfg.faults.seed = 7;

    println!(
        "fleet: {} workers ({:?} will be preempted), {} parameter servers, {} shards\n",
        cfg.job.cn, cfg.faults.kill_hosts, cfg.job.pn, cfg.job.shards
    );
    let mut rt = Runtime::new(cfg.clone())
        .expect("config is valid")
        .with_telemetry(tel.clone());
    if let Some((hub, _)) = &ops {
        rt = rt.with_ops_hub(hub.clone());
    }
    let clean = rt.run().expect("run completes");
    print_report("faulty fleet", &clean);

    // Same job again, now interrupted after 12 assimilations and resumed
    // from the checkpoint — the resumed run finishes the remaining epochs.
    let ck_path = std::env::temp_dir().join("vc_runtime_demo_ck.json");
    cfg.checkpoint_path = Some(ck_path.to_string_lossy().into_owned());
    cfg.halt_after_assims = Some(12);
    let mut rt = Runtime::new(cfg)
        .expect("config is valid")
        .with_telemetry(tel.clone());
    if let Some((hub, _)) = &ops {
        rt = rt.with_ops_hub(hub.clone());
    }
    let partial = rt.run().expect("run completes");
    println!(
        "interrupted after {} epochs ({} assimilations) — resuming from {}",
        partial.epochs.len(),
        12,
        ck_path.display()
    );
    let mut resumed = Runtime::resume(&ck_path).expect("checkpoint is readable");
    resumed.config_mut().halt_after_assims = None;
    let mut rt = resumed.with_telemetry(tel.clone());
    if let Some((hub, _)) = &ops {
        rt = rt.with_ops_hub(hub.clone());
    }
    let done = rt.run().expect("resume is valid");
    std::fs::remove_file(&ck_path).ok();
    print_report("resumed run", &done);

    // Dump the merged registry — all three runs' counters and histograms.
    let snapshot = tel.registry().snapshot();
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    std::fs::create_dir_all("results").expect("results dir");
    let out = "results/runtime_demo_metrics.json";
    std::fs::write(out, json).expect("metrics snapshot writes");
    println!(
        "metrics snapshot ({} histograms) written to {out}",
        snapshot.histograms.len()
    );

    // Keep the ops surface (final state, full flight recorder, traces) up
    // for browsing/scraping before the server joins its threads on drop.
    if let Some((_, srv)) = ops {
        let linger_s: f64 = std::env::var("VC_OPS_LINGER_S")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        if linger_s > 0.0 {
            println!(
                "ops server lingering {linger_s}s on http://{}/",
                srv.local_addr()
            );
            std::thread::sleep(std::time::Duration::from_secs_f64(linger_s));
        }
        drop(srv);
    }
}
