//! Quickstart: distributed VC-ASGD training on a simulated three-client
//! volunteer fleet, in under a minute of wall clock.
//!
//! This walks the full pipeline with a small configuration:
//! synthetic dataset → work-generator sharding → BOINC-like scheduling →
//! real client training → asynchronous Eq. (1) assimilation → per-epoch
//! validation statistics.
//!
//! Run: `cargo run -p vc-examples --bin quickstart --release`

use vc_asgd::job::run_job;
use vc_asgd::{AlphaSchedule, JobConfig};

fn main() {
    // Start from the paper's defaults and shrink the workload so the whole
    // run takes seconds: fewer samples, fewer shards, fewer epochs.
    let mut cfg = JobConfig::paper_default(7).with_pct(2, 3, 2);
    cfg.data.train_n = 1_500;
    cfg.data.val_n = 300;
    cfg.data.test_n = 300;
    cfg.data.noise = 1.2; // easier than the benchmark dataset
    cfg.data.label_noise = 0.02;
    cfg.shards = 10;
    cfg.epochs = 6;
    cfg.val_eval_n = 200;
    cfg.local_epochs = 3;
    cfg.alpha = AlphaSchedule::VarEOverE1;

    println!(
        "model: {} ({} parameters)",
        cfg.model.name,
        cfg.model.build(0).param_count()
    );
    println!(
        "job:   {} · {} shards · alpha schedule {}",
        cfg.pct_label(),
        cfg.shards,
        cfg.alpha.label()
    );
    println!();

    let report = run_job(cfg).expect("config is valid");

    println!(
        "{:>5} {:>7} {:>9} {:>9} {:>17}",
        "epoch", "alpha", "sim time", "val acc", "min..max"
    );
    for e in &report.epochs {
        println!(
            "{:>5} {:>7.3} {:>8.2}h {:>9.3} {:>8.3}..{:.3}",
            e.epoch, e.alpha, e.end_time_h, e.mean_val_acc, e.min_val_acc, e.max_val_acc
        );
    }
    println!();
    println!(
        "final: val {:.3}, test {:.3} after {:.2} simulated hours",
        report.final_val_acc, report.final_test_acc, report.total_time_h
    );
    println!(
        "fleet: {} subtask assignments, {} completions, {} timeouts, {:.1} MB moved",
        report.server_metrics.assigned,
        report.server_metrics.completed,
        report.server_metrics.timeouts,
        report.bytes_transferred as f64 / 1e6
    );
}
