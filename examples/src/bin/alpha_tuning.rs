//! α-schedule tuning: the §IV-C story as a workflow. Sweep constant and
//! varying α schedules on a fixed fleet and report time-to-target-accuracy,
//! the metric a practitioner tunes against.
//!
//! Run: `cargo run -p vc-examples --bin alpha_tuning --release`

use vc_asgd::job::run_job;
use vc_asgd::{AlphaSchedule, JobConfig};

fn main() {
    // A scaled-down but learnable job so the sweep finishes quickly.
    let base = || {
        let mut cfg = JobConfig::paper_default(13).with_pct(3, 3, 4);
        cfg.data.train_n = 1_600;
        cfg.data.val_n = 300;
        cfg.data.test_n = 300;
        cfg.data.noise = 1.3;
        cfg.data.label_noise = 0.05;
        cfg.shards = 16;
        cfg.epochs = 8;
        cfg.val_eval_n = 256;
        cfg.local_epochs = 2;
        cfg
    };

    let schedules = [
        AlphaSchedule::Const(0.5),
        AlphaSchedule::Const(0.7),
        AlphaSchedule::Const(0.95),
        AlphaSchedule::VarEOverE1,
        AlphaSchedule::Linear {
            from: 0.5,
            to: 0.95,
            over: 8,
        },
    ];
    let target = 0.5f32;

    println!(
        "{:<18} {:>10} {:>14} {:>12}",
        "schedule", "final acc", "t to 50% acc", "total hours"
    );
    for sched in schedules {
        let mut cfg = base();
        cfg.alpha = sched;
        let report = run_job(cfg).expect("valid config");
        let tta = report
            .time_to_accuracy(target)
            .map(|(e, h)| format!("{h:.2}h (ep {e})"))
            .unwrap_or_else(|| "not reached".into());
        println!(
            "{:<18} {:>10.3} {:>14} {:>12.2}",
            sched.label(),
            report.final_mean_acc(),
            tta,
            report.total_time_h
        );
    }
    println!("\nthe paper's Var schedule trades early aggressiveness (low alpha)");
    println!("for late stability (high alpha), like a learning-rate schedule.");
}
