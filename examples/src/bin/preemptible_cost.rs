//! Preemptible-instance economics (§IV-E) as a library consumer sees them:
//! sweep the interruption probability, compare the analytic binomial model
//! with the simulated fleet, and price the result.
//!
//! Run: `cargo run -p vc-examples --bin preemptible_cost --release`

use vc_asgd::job::run_job;
use vc_asgd::JobConfig;
use vc_cost::{FleetCost, TimeoutAnalysis};
use vc_simnet::{table1, PreemptionModel};

fn main() {
    let fleet = table1::uniform_fleet(5);
    let analysis = TimeoutAnalysis::paper_p5c5t2();

    // Timing-only P5C5T2 job; real training is irrelevant to cost.
    let base_hours = job_hours(PreemptionModel::None);
    println!("P5C5T2 baseline: {base_hours:.2} simulated hours without interruptions\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "p", "sim hours", "analytic +", "sim +", "$ preempt", "$ standard"
    );

    for &p in &[0.0, 0.02, 0.05, 0.10, 0.20] {
        let hours = if p == 0.0 {
            base_hours
        } else {
            job_hours(PreemptionModel::BernoulliPerSubtask { p })
        };
        let analytic_extra_min = analysis.expected_extra_s(p) / 60.0;
        let sim_extra_min = (hours - base_hours) * 60.0;
        let cost = FleetCost::of(&fleet, hours);
        println!(
            "{p:>6.2} {hours:>12.2} {analytic_extra_min:>11.0}m {sim_extra_min:>11.0}m {:>12.2} {:>10.2}",
            cost.preemptible_total(),
            FleetCost::of(&fleet, base_hours).standard_total()
        );
    }

    println!();
    println!("even at p = 0.20 the preemptible fleet costs a fraction of standard pricing —");
    println!("the paper's 70-90% saving holds after paying for the delay.");
}

fn job_hours(preemption: PreemptionModel) -> f64 {
    let mut cfg = JobConfig::paper_default(42).with_pct(5, 5, 2);
    cfg.epochs = 40;
    cfg.timing_only = true;
    cfg.preemption = preemption;
    run_job(cfg).expect("valid config").total_time_h
}
