//! Heterogeneous fleet: the §III-B story. A mixed Table-I fleet (different
//! clocks, RAM and WAN bandwidths) plus an aggressive preemption storm —
//! watch the middleware keep the epoch moving via timeouts, reassignment
//! and reliability-aware scheduling.
//!
//! Run: `cargo run -p vc-examples --bin heterogeneous_fleet --release`

use vc_asgd::job::run_job;
use vc_asgd::{FleetKind, JobConfig};
use vc_simnet::{table1, PreemptionModel};

fn main() {
    let mut cfg = JobConfig::paper_default(11).with_pct(3, 4, 2);
    cfg.fleet = FleetKind::Mixed;
    cfg.preemption = PreemptionModel::BernoulliPerSubtask { p: 0.15 };
    cfg.middleware.timeout_s = 240.0;
    cfg.replacement_delay_s = 180.0;
    // Keep the run quick: timing fidelity matters here, learning less so.
    cfg.data.train_n = 1_000;
    cfg.data.val_n = 200;
    cfg.data.test_n = 200;
    cfg.data.noise = 1.2;
    cfg.shards = 12;
    cfg.epochs = 5;
    cfg.val_eval_n = 200;

    println!("fleet:");
    for (i, spec) in FleetKind::Mixed.build(4).iter().enumerate() {
        println!(
            "  client {i}: {:<16} {} vCPU @ {:.1} GHz, {:.0} GB, {:.0} Gbps",
            spec.name, spec.vcpus, spec.clock_ghz, spec.ram_gb, spec.bandwidth_gbps
        );
    }
    println!(
        "preemption: 15% per subtask; timeout t_o = {:.0}s\n",
        cfg.middleware.timeout_s
    );

    let report = run_job(cfg).expect("config is valid");

    for e in &report.epochs {
        println!(
            "epoch {:>2}: {:>6.2}h  acc {:.3}  (cumulative timeouts {})",
            e.epoch, e.end_time_h, e.mean_val_acc, e.timeouts
        );
    }
    let m = report.server_metrics;
    println!();
    println!("middleware under churn:");
    println!(
        "  assigned {:>5}   completed {:>5}",
        m.assigned, m.completed
    );
    println!(
        "  timeouts {:>5}   reassigned {:>4}",
        m.timeouts, m.reassignments
    );
    println!(
        "  stale    {:>5}   cache hits {:>4}",
        m.stale_results, m.cache_hits
    );
    println!("  preemptions survived: {}", report.preemptions);
    assert_eq!(
        report.epochs.len(),
        5,
        "fault tolerance: every epoch completed despite the storm"
    );
    println!("\nall epochs completed despite the storm — the §III-B claim.");

    // Show the per-type speed difference the scheduler worked around.
    let m = vc_simnet::ComputeModel::default();
    let slow = m.subtask_s(&table1::client_8v_2_2(), 2);
    let fast = m.subtask_s(&table1::client_8v_2_8(), 2);
    println!(
        "subtask service time spread across the fleet: {:.0}s (2.8 GHz) .. {:.0}s (2.2 GHz)",
        fast, slow
    );
}
