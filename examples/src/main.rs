//! The `vc-examples` package hosts runnable example binaries under
//! `src/bin/`; this stub binary just lists them.

fn main() {
    println!("vc-dl examples (run with `cargo run -p vc-examples --bin <name> --release`):");
    println!("  quickstart          three-client VC-ASGD training in under a minute");
    println!("  heterogeneous_fleet Table-I fleet with stragglers, timeouts and reassignment");
    println!("  preemptible_cost    interruption-probability sweep: time inflation and dollars");
    println!("  alpha_tuning        alpha-schedule sweep with time-to-accuracy reporting");
    println!("  runtime_demo        real threaded fleet with preemptions and checkpoint/resume");
}
