//! DST regression for the sharded parameter service (`vc-ps`).
//!
//! Three claims, each checked across seeds:
//!
//! 1. **Exact reproduction at one shard.** With `ps_shards = 1` the
//!    service stores the same key and performs the same operation sequence
//!    as the historical single-value assimilator, so the accuracy
//!    trajectory must match the pre-sharding runs *to the bit* — the
//!    golden values below were recorded before `vc-ps` existed.
//! 2. **Shard-count invariance.** The Eq. (1) blend is elementwise and
//!    every simulated commit is atomic within one event, so 4 or 16
//!    shards must produce bitwise-identical accuracy trajectories to 1.
//! 3. **Clean band under chaos.** 32-seed sweeps at every shard count
//!    stay above the learnability floor under a 30% fleet kill and under
//!    byzantine uploads filtered by replication+quorum, and every history
//!    still passes the consistency checker.

use vc_runtime::{run_scenario, sweep, verify_seed, ByzantineMode, RuntimeConfig, Scenario};

/// The anchor scenario the golden bits were recorded on (pre-`vc-ps`).
fn tiny(seed: u64) -> Scenario {
    let mut sc = Scenario::new(seed).cn(3).epochs(2);
    sc.cfg.job.val_eval_n = 60;
    sc
}

/// The accuracy bits of each epoch's `mean_val_acc`, then the final
/// val/test accuracies, as `f32::to_bits()`.
fn trajectory_bits(sc: &Scenario) -> (Vec<u32>, u32, u32) {
    let out = run_scenario(sc).expect("scenario runs");
    assert!(!out.report.halted_early);
    out.verify_consistency().expect("consistency contract");
    (
        out.report
            .epochs
            .iter()
            .map(|e| e.mean_val_acc.to_bits())
            .collect(),
        out.report.final_val_acc.to_bits(),
        out.report.final_test_acc.to_bits(),
    )
}

/// Claim 1: one shard reproduces the pre-sharding trajectories bitwise.
/// These constants were captured from the seed commit (before `vc-ps`);
/// any drift here means the refactor changed the math, not just the
/// plumbing.
#[test]
fn one_shard_reproduces_golden_trajectories() {
    let golden: [(u64, [u32; 2], u32, u32); 4] = [
        (0, [1043682646, 1049414860], 1050253722, 1050253722),
        (1, [1042424354, 1049904195], 1050812962, 1051931443),
        (2, [1045500177, 1052141160], 1051651823, 1051372203),
        (3, [1040886442, 1049974102], 1050533342, 1050812962),
    ];
    for (seed, epochs, val, test) in golden {
        let (e, v, t) = trajectory_bits(&tiny(seed));
        assert_eq!(
            (e.as_slice(), v, t),
            (epochs.as_slice(), val, test),
            "seed {seed}: ps_shards=1 must match the pre-sharding trajectory bitwise"
        );
    }
}

/// Claim 2: the accuracy trajectory is invariant in the shard count.
#[test]
fn shard_count_never_changes_the_math() {
    for seed in [7, 8] {
        let base = trajectory_bits(&tiny(seed));
        for p in [4, 16] {
            let sharded = trajectory_bits(&tiny(seed).ps_shards(p));
            assert_eq!(
                base, sharded,
                "seed {seed}: {p} shards diverged from the unsharded trajectory"
            );
        }
    }
}

/// Replays of a sharded run are byte-identical, report and store history.
#[test]
fn sharded_replay_is_byte_identical() {
    let sc = tiny(5).ps_shards(4);
    let a = run_scenario(&sc).unwrap();
    let b = run_scenario(&sc).unwrap();
    assert_eq!(a.report_json(), b.report_json(), "sharded replay drifted");
    assert_eq!(a.history, b.history, "store op history drifted");
}

/// Claim 3a: 30% fleet kill, every shard count, 32 seeds each.
#[test]
fn dst_sweep_kill_storm_across_shard_counts() {
    for p in [1usize, 4, 16] {
        let make = move |seed| tiny(seed).cn(4).tn(2).kill_fraction(0.3, 2).ps_shards(p);
        for (seed, out) in sweep(0..32, make) {
            let r = &out.report;
            assert!(!r.halted_early, "shards {p} seed {seed}: halted early");
            assert_eq!(r.kills, 2, "shards {p} seed {seed}: wrong kill count");
            assert!(
                r.final_mean_acc() > 0.15,
                "shards {p} seed {seed}: accuracy {} out of the clean band",
                r.final_mean_acc()
            );
        }
    }
}

/// Claim 3b: byzantine uploads, filtered by replication + quorum, every
/// shard count. The poisoned results never reach the merge path, so the
/// fleet stays in the clean accuracy band.
#[test]
fn dst_sweep_byzantine_across_shard_counts() {
    for p in [1usize, 4, 16] {
        let make = move |seed| {
            tiny(seed)
                .cn(6)
                .replication(2)
                .quorum(2)
                .byzantine(vec![0, 1], ByzantineMode::Poison)
                .ps_shards(p)
        };
        for (seed, out) in sweep(0..32, make) {
            let r = &out.report;
            assert!(!r.halted_early, "shards {p} seed {seed}: halted early");
            assert!(
                r.final_mean_acc() > 0.15,
                "shards {p} seed {seed}: byzantine uploads leaked into the merge (acc {})",
                r.final_mean_acc()
            );
            verify_seed(seed, &out);
        }
    }
}

/// The wire-byte counters are live, and the sticky cache pays off: a
/// worker only fetches when the manifest moved, so same-epoch
/// re-assignments cost no wire traffic at all.
#[test]
fn sharded_runs_report_partial_fetch_traffic() {
    let out = run_scenario(&tiny(11).ps_shards(4)).unwrap();
    let r = &out.report;
    let ops = r.ps_ops;
    assert!(ops.fetches > 0, "workers must fetch through the service");
    assert!(ops.shards_sent > 0, "stale fetches ship shard blobs");
    assert!(
        ops.fetches < r.server_metrics.assigned,
        "sticky caches must absorb same-epoch re-assignments \
         ({} fetches vs {} assignments)",
        ops.fetches,
        r.server_metrics.assigned
    );
    assert!(ops.bytes_tx > ops.bytes_rx, "responses outweigh requests");
    assert!(
        r.bytes_transferred >= ops.bytes_tx + ops.bytes_rx,
        "report folds the wire bytes in"
    );
}

/// The real-thread runtime over TCP loopback with 4 shards converges like
/// the in-process transport: same codec, real sockets.
#[test]
fn tcp_loopback_fleet_learns_above_chance() {
    let mut cfg = RuntimeConfig::test_small(2);
    cfg.job.cn = 4;
    cfg.job.tn = 2;
    cfg.job.epochs = 5;
    cfg.job.ps_shards = 4;
    cfg.ps_tcp = true;
    let report = vc_runtime::run_runtime(cfg).unwrap();
    assert!(!report.halted_early, "TCP run must finish on its own");
    assert!(
        report.final_mean_acc() > 0.2,
        "TCP-loopback accuracy {}",
        report.final_mean_acc()
    );
    assert!(report.ps_ops.fetches > 0 && report.ps_ops.bytes_tx > 0);
}
