//! DST regression for the sharded parameter service (`vc-ps`).
//!
//! Three claims, each checked across seeds:
//!
//! 1. **Exact reproduction at one shard.** With `ps_shards = 1` the
//!    service stores the same key and performs the same operation sequence
//!    as the historical single-value assimilator, so the accuracy
//!    trajectory must match the pre-sharding runs *to the bit* — the
//!    golden values below were recorded before `vc-ps` existed.
//! 2. **Shard-count invariance.** The Eq. (1) blend is elementwise and
//!    every simulated commit is atomic within one event, so 4 or 16
//!    shards must produce bitwise-identical accuracy trajectories to 1.
//! 3. **Clean band under chaos.** 32-seed sweeps at every shard count
//!    stay above the learnability floor under a 30% fleet kill and under
//!    byzantine uploads filtered by replication+quorum, and every history
//!    still passes the consistency checker.

use vc_ps::Codec;
use vc_runtime::{run_scenario, sweep, verify_seed, ByzantineMode, RuntimeConfig, Scenario};

/// The anchor scenario the golden bits were recorded on (pre-`vc-ps`).
fn tiny(seed: u64) -> Scenario {
    let mut sc = Scenario::new(seed).cn(3).epochs(2);
    sc.cfg.job.val_eval_n = 60;
    sc
}

/// The accuracy bits of each epoch's `mean_val_acc`, then the final
/// val/test accuracies, as `f32::to_bits()`.
fn trajectory_bits(sc: &Scenario) -> (Vec<u32>, u32, u32) {
    let out = run_scenario(sc).expect("scenario runs");
    assert!(!out.report.halted_early);
    out.verify_consistency().expect("consistency contract");
    (
        out.report
            .epochs
            .iter()
            .map(|e| e.mean_val_acc.to_bits())
            .collect(),
        out.report.final_val_acc.to_bits(),
        out.report.final_test_acc.to_bits(),
    )
}

/// Claim 1: one shard reproduces the pre-sharding trajectories bitwise.
/// These constants were captured from the seed commit (before `vc-ps`);
/// any drift here means the refactor changed the math, not just the
/// plumbing.
#[test]
fn one_shard_reproduces_golden_trajectories() {
    let golden: [(u64, [u32; 2], u32, u32); 4] = [
        (0, [1043682646, 1049414860], 1050253722, 1050253722),
        (1, [1042424354, 1049904195], 1050812962, 1051931443),
        (2, [1045500177, 1052141160], 1051651823, 1051372203),
        (3, [1040886442, 1049974102], 1050533342, 1050812962),
    ];
    for (seed, epochs, val, test) in golden {
        let (e, v, t) = trajectory_bits(&tiny(seed));
        assert_eq!(
            (e.as_slice(), v, t),
            (epochs.as_slice(), val, test),
            "seed {seed}: ps_shards=1 must match the pre-sharding trajectory bitwise"
        );
    }
}

/// Claim 2: the accuracy trajectory is invariant in the shard count.
#[test]
fn shard_count_never_changes_the_math() {
    for seed in [7, 8] {
        let base = trajectory_bits(&tiny(seed));
        for p in [4, 16] {
            let sharded = trajectory_bits(&tiny(seed).ps_shards(p));
            assert_eq!(
                base, sharded,
                "seed {seed}: {p} shards diverged from the unsharded trajectory"
            );
        }
    }
}

/// Replays of a sharded run are byte-identical, report and store history.
#[test]
fn sharded_replay_is_byte_identical() {
    let sc = tiny(5).ps_shards(4);
    let a = run_scenario(&sc).unwrap();
    let b = run_scenario(&sc).unwrap();
    assert_eq!(a.report_json(), b.report_json(), "sharded replay drifted");
    assert_eq!(a.history, b.history, "store op history drifted");
}

/// Claim 3a: 30% fleet kill, every shard count, 32 seeds each.
#[test]
fn dst_sweep_kill_storm_across_shard_counts() {
    for p in [1usize, 4, 16] {
        let make = move |seed| tiny(seed).cn(4).tn(2).kill_fraction(0.3, 2).ps_shards(p);
        for (seed, out) in sweep(0..32, make) {
            let r = &out.report;
            assert!(!r.halted_early, "shards {p} seed {seed}: halted early");
            assert_eq!(r.kills, 2, "shards {p} seed {seed}: wrong kill count");
            assert!(
                r.final_mean_acc() > 0.15,
                "shards {p} seed {seed}: accuracy {} out of the clean band",
                r.final_mean_acc()
            );
        }
    }
}

/// Claim 3b: byzantine uploads, filtered by replication + quorum, every
/// shard count. The poisoned results never reach the merge path, so the
/// fleet stays in the clean accuracy band.
#[test]
fn dst_sweep_byzantine_across_shard_counts() {
    for p in [1usize, 4, 16] {
        let make = move |seed| {
            tiny(seed)
                .cn(6)
                .replication(2)
                .quorum(2)
                .byzantine(vec![0, 1], ByzantineMode::Poison)
                .ps_shards(p)
        };
        for (seed, out) in sweep(0..32, make) {
            let r = &out.report;
            assert!(!r.halted_early, "shards {p} seed {seed}: halted early");
            assert!(
                r.final_mean_acc() > 0.15,
                "shards {p} seed {seed}: byzantine uploads leaked into the merge (acc {})",
                r.final_mean_acc()
            );
            verify_seed(seed, &out);
        }
    }
}

/// Explicitly requesting `Codec::Raw` is the default path, to the byte:
/// the codec plumbing must be invisible until a lossy mode is asked for.
#[test]
fn explicit_raw_codec_is_the_default_bitwise() {
    for seed in [5, 9] {
        let sc = tiny(seed).ps_shards(4);
        let a = run_scenario(&sc).unwrap();
        let b = run_scenario(&sc.clone().codec(Codec::Raw)).unwrap();
        assert_eq!(
            a.report_json(),
            b.report_json(),
            "seed {seed}: explicit Raw diverged from the default report"
        );
        assert_eq!(a.history, b.history, "seed {seed}: store history diverged");
    }
}

/// Claim 3c: the lossy transfer codec (Int8 + delta + error feedback)
/// stays in the clean accuracy band under the same kill-storm chaos, at
/// every shard count, 32 seeds each. Quantized replicas pass quorum via
/// the tolerance comparator the codec installs.
#[test]
fn dst_sweep_kill_storm_under_lossy_codec() {
    let codec = Codec::Int8 {
        error_feedback: true,
    };
    for p in [1usize, 4, 16] {
        let make = move |seed| {
            tiny(seed)
                .cn(4)
                .tn(2)
                .kill_fraction(0.3, 2)
                .ps_shards(p)
                .codec(codec)
        };
        for (seed, out) in sweep(0..32, make) {
            let r = &out.report;
            assert!(!r.halted_early, "shards {p} seed {seed}: halted early");
            assert!(
                r.final_mean_acc() > 0.15,
                "shards {p} seed {seed}: int8 codec fell out of the clean band (acc {})",
                r.final_mean_acc()
            );
        }
    }
}

/// Claim 3d: byzantine uploads are still filtered under the lossy codec —
/// the tolerance comparator accepts quantization error, not poison.
#[test]
fn dst_sweep_byzantine_under_lossy_codec() {
    let codec = Codec::Int8 {
        error_feedback: true,
    };
    for p in [1usize, 4, 16] {
        let make = move |seed| {
            tiny(seed)
                .cn(6)
                .replication(2)
                .quorum(2)
                .byzantine(vec![0, 1], ByzantineMode::Poison)
                .ps_shards(p)
                .codec(codec)
        };
        for (seed, out) in sweep(0..32, make) {
            let r = &out.report;
            assert!(!r.halted_early, "shards {p} seed {seed}: halted early");
            assert!(
                r.final_mean_acc() > 0.15,
                "shards {p} seed {seed}: byzantine uploads leaked under int8 (acc {})",
                r.final_mean_acc()
            );
        }
    }
}

/// A lossy run actually saves wire bytes once warm fetches ride deltas,
/// and the replay stays deterministic (same seed → same report bytes).
#[test]
fn lossy_codec_saves_bytes_and_replays_identically() {
    let sc = tiny(13).ps_shards(4).epochs(3).codec(Codec::Int8 {
        error_feedback: true,
    });
    let a = run_scenario(&sc).unwrap();
    let b = run_scenario(&sc).unwrap();
    assert_eq!(a.report_json(), b.report_json(), "lossy replay drifted");
    let saved = a.ps_codec_ops.bytes_saved;
    assert!(
        saved > 0,
        "delta fetches must save bytes over raw blobs: {:?}",
        a.ps_codec_ops
    );
}

/// The ops surface reports the codec's work: under a lossy codec,
/// `/status` carries a compression ratio above 1 with cumulative bytes
/// saved, and `/metrics` exports the codec counter and kernel-time
/// histograms.
#[test]
fn lossy_codec_shows_up_on_the_ops_surface() {
    let sc = tiny(13)
        .ps_shards(4)
        .epochs(3)
        .codec(Codec::Int8 {
            error_feedback: true,
        })
        .ops(true);
    let out = run_scenario(&sc).unwrap();
    let hub = out.ops.as_ref().expect("scenario attached an ops hub");

    let status = hub.handle("/status");
    assert_eq!(status.status, 200);
    let body = String::from_utf8(status.body).unwrap();
    let s: vc_ops::StatusSnapshot = serde_json::from_str(&body).unwrap();
    assert!(
        s.ps.bytes_saved > 0,
        "/status must report bytes saved: {:?}",
        s.ps
    );
    assert!(
        s.ps.compression_ratio > 1.0,
        "/status compression ratio must exceed 1 under int8: {:?}",
        s.ps
    );

    let metrics = hub.handle("/metrics");
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    for series in ["ps_bytes_saved", "ps_encode_s", "ps_decode_s"] {
        assert!(
            text.contains(series),
            "/metrics missing {series} exposition"
        );
    }
}

/// The wire-byte counters are live, and the sticky cache pays off: a
/// worker only fetches when the manifest moved, so same-epoch
/// re-assignments cost no wire traffic at all.
#[test]
fn sharded_runs_report_partial_fetch_traffic() {
    let out = run_scenario(&tiny(11).ps_shards(4)).unwrap();
    let r = &out.report;
    let ops = r.ps_ops;
    assert!(ops.fetches > 0, "workers must fetch through the service");
    assert!(ops.shards_sent > 0, "stale fetches ship shard blobs");
    assert!(
        ops.fetches < r.server_metrics.assigned,
        "sticky caches must absorb same-epoch re-assignments \
         ({} fetches vs {} assignments)",
        ops.fetches,
        r.server_metrics.assigned
    );
    assert!(ops.bytes_tx > ops.bytes_rx, "responses outweigh requests");
    assert!(
        r.bytes_transferred >= ops.bytes_tx + ops.bytes_rx,
        "report folds the wire bytes in"
    );
}

/// The real-thread runtime over TCP loopback with 4 shards converges like
/// the in-process transport: same codec, real sockets.
#[test]
fn tcp_loopback_fleet_learns_above_chance() {
    let mut cfg = RuntimeConfig::test_small(2);
    cfg.job.cn = 4;
    cfg.job.tn = 2;
    cfg.job.epochs = 5;
    cfg.job.ps_shards = 4;
    cfg.ps_tcp = true;
    let report = vc_runtime::run_runtime(cfg).unwrap();
    assert!(!report.halted_early, "TCP run must finish on its own");
    assert!(
        report.final_mean_acc() > 0.2,
        "TCP-loopback accuracy {}",
        report.final_mean_acc()
    );
    assert!(report.ps_ops.fetches > 0 && report.ps_ops.bytes_tx > 0);
}
