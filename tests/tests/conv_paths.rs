//! DST golden check for the conv-path dispatch: switching `Conv2d`
//! between the direct 3×3 kernels and the im2col+GEMM lowering must not
//! perturb a pinned chaos training trajectory by a single bit.
//!
//! The scenario overrides the DST default mlp with `small_cnn` (the
//! paper's model family), so every local training step routes through the
//! dispatch in `vc_nn::conv`. The golden bits below were captured with
//! the im2col path forced — i.e. the trajectory of the codebase *before*
//! the direct path existed — and both path settings must keep matching
//! them forever.
//!
//! Single `#[test]` on purpose: the conv-path toggle is process-global,
//! so the two runs must not execute concurrently with each other (or with
//! any other toggle-flipping test in this binary).

mod common;

use common::fnv1a;
use vc_runtime::{run_scenario, Scenario};
use vc_tensor::conv_direct;

/// A kill-storm scenario over the small CNN: 4 volunteers, 2 trusted
/// nodes, 2 epochs, 30 % of the fleet killed once mid-run.
fn cnn_storm(seed: u64) -> Scenario {
    let mut sc = Scenario::new(seed)
        .cn(4)
        .tn(2)
        .epochs(2)
        .kill_fraction(0.3, 1);
    sc.cfg.job.model = vc_nn::spec::small_cnn(&sc.cfg.job.data.img, sc.cfg.job.data.classes);
    sc.cfg.job.val_eval_n = 60;
    sc
}

/// (per-epoch `mean_val_acc` bits, final val bits, final test bits,
/// FNV-1a of the report JSON) captured at seed 0 with the im2col path
/// forced.
const GOLDEN_EPOCHS: [u32; 2] = [1045639988, 1052490684];
const GOLDEN_VAL: u32 = 1052770304;
const GOLDEN_TEST: u32 = 1054727646;
const GOLDEN_REPORT: u64 = 0x0b707f38bdfae44a;

fn run_bits(direct: bool) -> (Vec<u32>, u32, u32, u64) {
    conv_direct::set_enabled(direct);
    let out = run_scenario(&cnn_storm(0)).expect("cnn storm scenario runs");
    conv_direct::clear_forced();
    (
        out.report
            .epochs
            .iter()
            .map(|e| e.mean_val_acc.to_bits())
            .collect(),
        out.report.final_val_acc.to_bits(),
        out.report.final_test_acc.to_bits(),
        fnv1a(out.report_json().as_bytes()),
    )
}

#[test]
fn conv_path_switch_leaves_pinned_trajectory_bitwise_unchanged() {
    let lowered = run_bits(false);
    let direct = run_bits(true);
    assert_eq!(
        direct, lowered,
        "direct vs im2col conv paths diverged on a chaos trajectory"
    );
    assert_eq!(lowered.0, GOLDEN_EPOCHS, "per-epoch accuracy bits moved");
    assert_eq!(lowered.1, GOLDEN_VAL, "final val accuracy bits moved");
    assert_eq!(lowered.2, GOLDEN_TEST, "final test accuracy bits moved");
    assert_eq!(lowered.3, GOLDEN_REPORT, "report JSON hash moved");
}
