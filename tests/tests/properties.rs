//! Property-based tests (proptest) over the workspace's core invariants.

use proptest::prelude::*;
use vc_asgd::alpha::{blend_eq1, eq2_closed_form};
use vc_data::{DataShard, Dataset, ShardSet};
use vc_kvstore::VersionedStore;
use vc_simnet::{EventQueue, SimTime};
use vc_tensor::{decode_f32s, encode_f32s, Tensor};

proptest! {
    /// Codec: every f32 vector round-trips bit-exactly.
    #[test]
    fn codec_roundtrip(values in prop::collection::vec(-1e30f32..1e30, 0..512)) {
        let blob = encode_f32s(&values);
        let back = decode_f32s(&blob).unwrap();
        prop_assert_eq!(back, values);
    }

    /// Codec: decoding any corrupted prefix fails rather than misreads.
    #[test]
    fn codec_truncation_always_errors(
        values in prop::collection::vec(-1e3f32..1e3, 1..64),
        cut in 1usize..16,
    ) {
        let blob = encode_f32s(&values);
        let cut = cut.min(blob.len() - 1);
        prop_assert!(decode_f32s(&blob[..blob.len() - cut]).is_err());
    }

    /// Eq. (2) is exactly repeated Eq. (1) — the paper's algebra holds for
    /// arbitrary client parameter values and α.
    #[test]
    fn eq1_iterates_to_eq2(
        w0 in prop::collection::vec(-10.0f32..10.0, 1..32),
        clients in prop::collection::vec(
            prop::collection::vec(-10.0f32..10.0, 1..32), 1..12),
        alpha in 0.01f32..0.999,
    ) {
        let n = w0.len();
        let clients: Vec<Vec<f32>> = clients
            .into_iter()
            .map(|mut c| { c.resize(n, 0.0); c })
            .collect();
        let mut recursive = w0.clone();
        for c in &clients {
            blend_eq1(&mut recursive, c, alpha);
        }
        let closed = eq2_closed_form(&w0, &clients, alpha);
        for (r, c) in recursive.iter().zip(&closed) {
            prop_assert!((r - c).abs() < 1e-3, "{} vs {}", r, c);
        }
    }

    /// VC-ASGD convexity: a blend of values inside [lo, hi] stays inside —
    /// the server copy can never escape the convex hull of what it has
    /// seen, for any α sequence.
    #[test]
    fn blend_stays_in_convex_hull(
        start in -5.0f32..5.0,
        updates in prop::collection::vec((-5.0f32..5.0, 0.0f32..1.0), 1..64),
    ) {
        let mut w = vec![start];
        let mut lo = start;
        let mut hi = start;
        for (c, alpha) in updates {
            blend_eq1(&mut w, &[c], alpha);
            lo = lo.min(c);
            hi = hi.max(c);
            prop_assert!(w[0] >= lo - 1e-4 && w[0] <= hi + 1e-4);
        }
    }

    /// Event queue: pops are globally time-ordered regardless of insertion
    /// order, and ties preserve insertion order.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0.0f64..1e6, 1..256)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut prev_t = f64::NEG_INFINITY;
        let mut prev_seq_at_t = 0usize;
        while let Some((t, seq)) = q.pop() {
            prop_assert!(t.as_secs() >= prev_t);
            if t.as_secs() == prev_t {
                prop_assert!(seq > prev_seq_at_t, "tie broke insertion order");
            }
            prev_t = t.as_secs();
            prev_seq_at_t = seq;
        }
    }

    /// Shard split: a partition (every sample exactly once, sizes within
    /// one), and encode/decode round-trips.
    #[test]
    fn shard_split_partitions(n in 10usize..200, k in 1usize..10) {
        let k = k.min(n);
        let images = Tensor::zeros(&[n, 1, 2, 2]);
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let ds = Dataset::new(images, labels, 3);
        let set = ShardSet::split(&ds, k);
        prop_assert_eq!(set.total_samples(), n);
        let sizes: Vec<usize> = set.iter().map(|s| s.data.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
        let blob = set.shard(0).encode();
        prop_assert_eq!(&DataShard::decode(&blob).unwrap(), set.shard(0));
    }

    /// KV store versions increase strictly monotonically per key under any
    /// interleaving of the three write paths.
    #[test]
    fn store_versions_monotone(ops in prop::collection::vec(0u8..3, 1..64)) {
        let store = VersionedStore::new();
        let mut last = 0u64;
        for op in ops {
            let v = match op {
                0 => store.put("k", bytes::Bytes::from_static(b"x")),
                1 => {
                    let (_, seen) = store.get("k");
                    store.put_versioned("k", seen, bytes::Bytes::from_static(b"y")).new_version
                }
                _ => store.transact("k", |c, _| (c.clone(), ())).0,
            };
            prop_assert!(v > last, "version went {} -> {}", last, v);
            last = v;
        }
    }

    /// Tensor algebra: (a + b) - b == a elementwise within tolerance, and
    /// scale distributes over add.
    #[test]
    fn tensor_add_sub_inverse(
        a in prop::collection::vec(-1e3f32..1e3, 1..64),
        b in prop::collection::vec(-1e3f32..1e3, 1..64),
        s in -10.0f32..10.0,
    ) {
        let n = a.len().min(b.len());
        let ta = Tensor::from_vec(a[..n].to_vec(), &[n]);
        let tb = Tensor::from_vec(b[..n].to_vec(), &[n]);
        let roundtrip = ta.add(&tb).sub(&tb);
        for (x, y) in roundtrip.data().iter().zip(ta.data()) {
            prop_assert!((x - y).abs() <= 1e-1 + y.abs() * 1e-5);
        }
        let lhs = ta.add(&tb).scale(s);
        let rhs = ta.scale(s).add(&tb.scale(s));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-2 + x.abs().max(y.abs()) * 1e-4);
        }
    }

    /// Matmul distributes over addition: A(B + C) == AB + AC.
    #[test]
    fn matmul_distributes(seed in 0u64..1000) {
        use vc_tensor::ops::matmul;
        use vc_tensor::NormalSampler;
        let mut s = NormalSampler::seed_from(seed);
        let a = Tensor::randn(&[4, 5], 0.0, 1.0, &mut s);
        let b = Tensor::randn(&[5, 3], 0.0, 1.0, &mut s);
        let c = Tensor::randn(&[5, 3], 0.0, 1.0, &mut s);
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        prop_assert!(vc_tensor::approx_eq(&lhs, &rhs, 1e-3));
    }
}
