//! Observability is perturbation-free, and its payloads are deterministic.
//!
//! Three claims:
//!
//! 1. **Golden-bit regression** — enabling causal workunit tracing *and*
//!    the in-memory ops hub leaves every pinned pre-rewrite chaos
//!    trajectory (`common::goldens`) bitwise unchanged: per-epoch accuracy
//!    bits, final accuracy bits, and the FNV-1a of the report JSON all
//!    match the untraced goldens. Observation must not steer the system.
//!    (The flight-recorder JSONL legitimately *gains* `trace_span` lines,
//!    so its hash is exempt — instead we assert the spans are there.)
//!
//! 2. **Deterministic ops payloads** — replaying a traced chaos seed
//!    produces byte-identical `/status`, `/events` and `/trace` bodies
//!    through the same `OpsHub::handle` router a live HTTP scrape hits.
//!
//! 3. **Chrome trace export** — a failing-grade DST chaos seed exports a
//!    `trace_event` JSON whose slices cover the dispatch → fetch → train →
//!    upload → validate → assimilate chain, loadable in `chrome://tracing`
//!    / Perfetto.

mod common;

use common::{fnv1a, goldens, make};
use vc_runtime::run_scenario;
use vc_telemetry::{Event, TraceStage, TRACE_SPAN};

/// All six causal stages, as they appear in the `stage` field of
/// `trace_span` events.
const STAGES: [&str; 6] = [
    "dispatch",
    "fetch",
    "train",
    "upload",
    "validate",
    "assimilate",
];

fn stage_of(ev: &Event) -> Option<String> {
    ev.fields.iter().find_map(|(k, v)| {
        (k == "stage").then(|| match v {
            vc_telemetry::FieldValue::Str(s) => s.clone(),
            other => panic!("stage field is a string, got {other:?}"),
        })
    })
}

/// Satellite: tracing + ops snapshots leave all eleven pre-rewrite chaos
/// trajectories bitwise unchanged.
#[test]
fn tracing_and_ops_leave_golden_trajectories_bitwise_unchanged() {
    for (name, seed, epoch_bits, val_bits, test_bits, report_hash, _trace_hash) in goldens() {
        let out = run_scenario(&make(name, seed).tracing(true).ops(true))
            .expect("golden scenario runs traced");
        let got_epochs: Vec<u32> = out
            .report
            .epochs
            .iter()
            .map(|e| e.mean_val_acc.to_bits())
            .collect();
        assert_eq!(
            got_epochs, epoch_bits,
            "{name} seed {seed}: tracing perturbed per-epoch accuracy bits"
        );
        assert_eq!(
            out.report.final_val_acc.to_bits(),
            val_bits,
            "{name} seed {seed}: tracing perturbed final val accuracy bits"
        );
        assert_eq!(
            out.report.final_test_acc.to_bits(),
            test_bits,
            "{name} seed {seed}: tracing perturbed final test accuracy bits"
        );
        assert_eq!(
            fnv1a(out.report_json().as_bytes()),
            report_hash,
            "{name} seed {seed}: tracing leaked into the report JSON"
        );
        // The observability itself must actually be on: spans recorded,
        // status published.
        let spans = out
            .telemetry
            .recorder()
            .events()
            .iter()
            .filter(|ev| ev.name == TRACE_SPAN)
            .count();
        assert!(spans > 0, "{name} seed {seed}: no trace spans recorded");
        let hub = out.ops.as_ref().expect("scenario attached an ops hub");
        let status = hub.status();
        assert!(status.done, "finalize publishes done=true");
        assert_eq!(
            status.epochs_done as usize,
            out.report.epochs.len(),
            "{name} seed {seed}: status disagrees with the report"
        );
        let assimilated: u64 = out.report.epochs.iter().map(|e| e.assimilated as u64).sum();
        assert!(
            status.assimilations >= assimilated,
            "{name} seed {seed}: status missed assimilations"
        );
    }
}

/// Untraced runs record zero trace spans — the gate actually gates.
#[test]
fn untraced_runs_record_no_spans() {
    let out = run_scenario(&make("storm", 0)).unwrap();
    assert!(
        out.telemetry
            .recorder()
            .events()
            .iter()
            .all(|ev| ev.name != TRACE_SPAN),
        "tracing is opt-in"
    );
    assert!(out.ops.is_none(), "no hub unless asked for");
}

/// Replaying a traced chaos seed serves byte-identical ops payloads
/// through the same router a live HTTP scrape would hit.
#[test]
fn ops_payloads_are_byte_identical_across_replays() {
    let sc = || make("delay_storm", 1).tracing(true).ops(true);
    let a = run_scenario(&sc()).unwrap();
    let b = run_scenario(&sc()).unwrap();
    let ha = a.ops.as_ref().unwrap();
    let hb = b.ops.as_ref().unwrap();
    for path in ["/status", "/events", "/trace", "/metrics", "/healthz"] {
        let ra = ha.handle(path);
        let rb = hb.handle(path);
        assert_eq!(ra.status, 200, "{path}");
        assert_eq!(
            ra.body, rb.body,
            "{path}: replayed payload is not byte-identical"
        );
    }
}

/// The Chrome `trace_event` export of a chaos seed covers the full causal
/// chain — the artifact a failing DST seed drops for Perfetto.
#[test]
fn chrome_trace_export_covers_the_causal_chain() {
    let out = run_scenario(&make("byz_poison", 1).tracing(true).ops(true)).unwrap();
    let events = out.telemetry.recorder().events();

    // Every stage appears among the recorded spans…
    let mut seen: Vec<String> = events
        .iter()
        .filter(|ev| ev.name == TRACE_SPAN)
        .filter_map(stage_of)
        .collect();
    seen.sort();
    seen.dedup();
    for stage in STAGES {
        assert!(
            seen.iter().any(|s| s == stage),
            "stage {stage} missing from the trace (saw {seen:?})"
        );
    }
    // …and per-stage latency histograms were fed.
    let reg = out.telemetry.registry().snapshot();
    for stage in TraceStage::ALL {
        let name = stage.histogram_name();
        let hist = reg
            .histograms
            .iter()
            .find(|h| h.name == name)
            .unwrap_or_else(|| panic!("histogram {name} missing"));
        assert!(hist.histogram.count > 0, "histogram {name} never observed");
    }

    // The export is well-formed trace_event JSON: complete ("X") slices
    // with microsecond timestamps, one thread lane per workunit.
    let tj = out.ops.as_ref().unwrap().handle("/trace");
    assert_eq!(tj.status, 200);
    let json = String::from_utf8(tj.body).unwrap();
    assert!(json.starts_with("{\"displayTimeUnit\""), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "no duration slices");
    assert!(
        json.contains("\"name\":\"assimilate\""),
        "no assimilate slice"
    );
    assert!(json.contains("\"name\":\"dispatch\""), "no dispatch slice");
    assert!(
        json.ends_with("]}\n") || json.ends_with("]}"),
        "{}",
        &json[json.len().saturating_sub(40)..]
    );
}
