//! Fleet-scale scheduler validation.
//!
//! Two claims, two sections:
//!
//! 1. **Golden-bit regression** — the O(1)-per-event scheduler rewrite
//!    (timer heap, dense host records, indexed work queue, counter-backed
//!    aggregates) is *bitwise* behavior-preserving. The constants (shared
//!    with `ops_trace.rs` via `common/`) were captured on the pre-rewrite
//!    scheduler for the exact small-fleet
//!    chaos scenarios pinned in `runtime_chaos.rs` and
//!    `scheduler_hardening.rs`: per-epoch accuracy bits, final accuracy
//!    bits, and FNV-1a hashes of the full report JSON and the
//!    flight-recorder JSONL trace. Any divergence — one event reordered,
//!    one EWMA fed twice, one metric off by one — flips a hash.
//!
//! 2. **Scale sweeps** — synthesized 10k-host volunteer fleets under
//!    kill-storms and byzantine minorities finish inside a bounded
//!    virtual-time budget and land in the clean accuracy band, across 32
//!    seeds. Before the rewrite a single such run drowned in O(fleet)
//!    deadline scans per event.

mod common;

use common::{fnv1a, goldens, make};
use vc_runtime::{run_scenario, sweep, ByzantineMode, Scenario};

#[test]
fn rewrite_replays_pre_rewrite_trajectories_bitwise() {
    for (name, seed, epoch_bits, val_bits, test_bits, report_hash, trace_hash) in goldens() {
        let out = run_scenario(&make(name, seed)).expect("golden scenario runs");
        let got_epochs: Vec<u32> = out
            .report
            .epochs
            .iter()
            .map(|e| e.mean_val_acc.to_bits())
            .collect();
        assert_eq!(
            got_epochs, epoch_bits,
            "{name} seed {seed}: per-epoch accuracy bits drifted"
        );
        assert_eq!(
            out.report.final_val_acc.to_bits(),
            val_bits,
            "{name} seed {seed}: final val accuracy bits drifted"
        );
        assert_eq!(
            out.report.final_test_acc.to_bits(),
            test_bits,
            "{name} seed {seed}: final test accuracy bits drifted"
        );
        assert_eq!(
            fnv1a(out.report_json().as_bytes()),
            report_hash,
            "{name} seed {seed}: report JSON no longer byte-identical"
        );
        assert_eq!(
            fnv1a(out.telemetry.recorder().dump_jsonl().as_bytes()),
            trace_hash,
            "{name} seed {seed}: flight-recorder trace no longer byte-identical"
        );
    }
}

// ------------------------------------------------------------ scale sweeps

/// A synthesized 10k-host volunteer fleet under a 30 % kill-storm with a
/// 10 % byzantine minority, quorum 2. Coarse poll cadence — at this scale
/// idle polling is the event budget.
fn fleet_10k(seed: u64) -> Scenario {
    let cn = 10_000;
    let mut sc = Scenario::new(seed)
        .cn(cn)
        .tn(1)
        .epochs(3)
        .fleet_generated(seed ^ 0xf1ee7)
        .poll_interval(2.0)
        .replication(2)
        .quorum(2)
        .kill_fraction(0.3, 2)
        .byzantine((0..(cn as u32 / 10)).collect(), ByzantineMode::Poison);
    sc.cfg.job.shards = 32;
    sc.cfg.job.data.train_n = 1280;
    sc.cfg.job.val_eval_n = 60;
    // The test-scale α (0.6) lets each thin 40-sample update overwrite
    // most of the server state — fine at 8 chunky shards, far too twitchy
    // under storm-grade reordering. A conservative blend keeps the merged
    // model a running average.
    sc.cfg.job.alpha = vc_asgd::AlphaSchedule::Const(0.3);
    sc.tick_s = 1.0;
    sc
}

/// The virtual-time budget: across the 32 sweep seeds a clean 3-epoch run
/// at this scale closes by virtual t≈28 s; double that is the budget. An
/// O(fleet)-per-event regression shows up long before this as a real-time
/// hang, but a scheduling *quality* regression (lost work, starved queue,
/// misfired deadlines) shows up here as a blown budget.
const VIRTUAL_BUDGET_S: f64 = 60.0;

fn check_scale_run(seed: u64, out: &vc_runtime::SimOutcome) {
    assert!(
        !out.report.halted_early,
        "seed {seed}: 10k-host run did not finish"
    );
    assert!(
        out.report.wall_s < VIRTUAL_BUDGET_S,
        "seed {seed}: virtual time {} blew the {VIRTUAL_BUDGET_S}s budget",
        out.report.wall_s
    );
    // Calibrated over the 32 sweep seeds: final-epoch means span
    // 0.23–0.53; 0.2 cleanly separates a learning run from a collapsed or
    // poisoned one (chance is 0.1) without flaking on merge variance.
    let acc = out.report.final_mean_acc();
    assert!(
        acc > 0.2,
        "seed {seed}: accuracy {acc} outside the clean band"
    );
    assert!(
        out.report.server_metrics.timeouts > 0,
        "seed {seed}: a 30% kill-storm must blow deadlines"
    );
}

/// One 10k-host chaos run per tier-1 invocation — fast enough for the
/// default test pass, and enough to catch a scale regression immediately.
#[test]
fn fleet_scale_10k_single_seed() {
    let out = run_scenario(&fleet_10k(0)).expect("10k-host scenario runs");
    out.verify_consistency().expect("consistency contract");
    check_scale_run(0, &out);
}

/// The full 32-seed sweep (CI `sched` job; minutes, not unit-test time).
#[test]
#[ignore = "32-seed 10k-host sweep: run explicitly (CI sched job)"]
fn fleet_scale_10k_chaos_sweep_32_seeds() {
    for (seed, out) in sweep(0..32, fleet_10k) {
        check_scale_run(seed, &out);
    }
}
