//! Property tests for the checkpoint format: round trips are bit-exact,
//! and corrupting *any* byte of the file is detected at load.
//!
//! The digest (FNV-1a) is computed over the raw serialized bytes with the
//! digest field zeroed, so a same-length substitution anywhere in the file
//! changes the hash deterministically — these properties exercise that
//! guarantee with arbitrary parameter vectors and arbitrary corruption
//! positions.

use proptest::prelude::*;
use vc_runtime::checkpoint::{Checkpoint, CHECKPOINT_VERSION};
use vc_runtime::RuntimeConfig;

fn build(seed: u64, snapshot: Vec<f32>, params: Vec<f32>, wall_s: f64) -> Checkpoint {
    let mut ck = Checkpoint {
        version: CHECKPOINT_VERSION,
        cfg: RuntimeConfig::test_small(seed),
        epoch: 1 + (seed as usize % 3),
        snapshot,
        params,
        done: vec![(0, 0.25), (3, 0.5)],
        stats: Vec::new(),
        assimilations: seed * 7,
        bytes_transferred: seed * 1024,
        wall_s,
        digest: 0,
    };
    ck.seal();
    ck
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vc_ck_prop_{tag}_{}.json", std::process::id()))
}

proptest! {
    /// Serialize → deserialize reproduces the checkpoint exactly — every
    /// f32 bit pattern, counter and the digest itself.
    #[test]
    fn roundtrip_is_bit_exact(
        seed in 1u64..1000,
        snapshot in prop::collection::vec(-1e30f32..1e30, 1..64),
        wall_s in 0.0f64..1e6,
    ) {
        // params must match snapshot's length (load enforces geometry).
        let params: Vec<f32> = snapshot.iter().map(|v| v * 0.5 + 1e-3).collect();
        let ck = build(seed, snapshot, params, wall_s);
        let path = tmp_path("roundtrip");
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path);
        std::fs::remove_file(&path).ok();
        let back = back.unwrap();
        prop_assert_eq!(ck, back);
    }

    /// Substituting any single byte of the saved file — parameters, config,
    /// counters, or the digest itself — makes load fail.
    #[test]
    fn corrupting_any_byte_is_detected(
        seed in 1u64..1000,
        snapshot in prop::collection::vec(-1e3f32..1e3, 1..32),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..255,
    ) {
        let params = snapshot.clone();
        let ck = build(seed, snapshot, params, 4.25);
        let path = tmp_path("corrupt");
        ck.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip; // guaranteed different: flip is non-zero
        std::fs::write(&path, &bytes).unwrap();
        let res = Checkpoint::load(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(
            res.is_err(),
            "byte {} xor {:#04x} loaded fine",
            pos,
            flip
        );
    }

    /// Truncating the file anywhere is detected.
    #[test]
    fn truncation_is_detected(
        seed in 1u64..1000,
        cut_frac in 0.01f64..0.99,
    ) {
        let ck = build(seed, vec![0.5, -1.5], vec![0.25, -0.75], 1.0);
        let path = tmp_path("trunc");
        ck.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let keep = 1 + ((bytes.len() - 2) as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let res = Checkpoint::load(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(res.is_err(), "kept {keep} of {} bytes", bytes.len());
    }
}
