//! The paper's quantitative claims, encoded as tests against the
//! reproduction. Each test cites the section it pins down. These use the
//! timing-only fast path where learning is irrelevant, so they are cheap
//! enough for CI.

use vc_asgd::job::run_job;
use vc_asgd::{AlphaSchedule, JobConfig};
use vc_cost::{DbOverhead, FleetCost, TimeoutAnalysis};
use vc_kvstore::{Consistency, LatencyModel};
use vc_simnet::{table1, PreemptionModel};

fn timing_cfg(pn: usize, cn: usize, tn: usize) -> JobConfig {
    let mut cfg = JobConfig::paper_default(42).with_pct(pn, cn, tn);
    cfg.epochs = 40;
    cfg.timing_only = true;
    cfg
}

#[test]
fn sec4a_p5c5t2_runs_about_eight_hours() {
    // §IV-E: "the total training time is slightly more than 8 hr" for
    // P5C5T2 over 40 epochs.
    let h = run_job(timing_cfg(5, 5, 2)).unwrap().total_time_h;
    assert!((7.5..10.5).contains(&h), "P5C5T2 took {h} h");
}

#[test]
fn fig3_p1c3_dips_at_t4_and_rises_at_t8() {
    // §IV-B / Fig. 3: "With P1C3, training time decreases from T2 to T4,
    // but increases from T4 to T8" — the single parameter server cannot
    // keep up with three clients at T8.
    let t2 = run_job(timing_cfg(1, 3, 2)).unwrap().total_time_h;
    let t4 = run_job(timing_cfg(1, 3, 4)).unwrap().total_time_h;
    let t8 = run_job(timing_cfg(1, 3, 8)).unwrap().total_time_h;
    assert!(t4 < t2, "T4 {t4} should beat T2 {t2}");
    assert!(
        t8 > t4,
        "T8 {t8} should be slower than T4 {t4} (server bound)"
    );
}

#[test]
fn fig3_more_parameter_servers_fix_the_t8_bottleneck() {
    // §IV-B: "In P3C3T8, we increase Pn from 1 to 3, and the training time
    // indeed decreases" (by ~3 h on the paper's testbed).
    let p1 = run_job(timing_cfg(1, 3, 8)).unwrap().total_time_h;
    let p3 = run_job(timing_cfg(3, 3, 8)).unwrap().total_time_h;
    assert!(
        p3 < p1 - 1.0,
        "P3C3T8 {p3} should be hours faster than P1C3T8 {p1}"
    );
}

#[test]
fn sec4d_latency_model_matches_measurements() {
    // §IV-D: 0.87 s vs 1.29 s per update (1.5×).
    let blob = (21.2 * 1024.0 * 1024.0) as usize;
    let e = LatencyModel::for_mode(Consistency::Eventual).update_s(blob);
    let s = LatencyModel::for_mode(Consistency::Strong).update_s(blob);
    assert!((e - 0.87).abs() < 1e-6);
    assert!((s - 1.29).abs() < 1e-6);
    assert!((s / e - 1.48).abs() < 0.05);
}

#[test]
fn sec4d_strong_consistency_stretches_training() {
    // §IV-D: over ~2000 updates the MySQL path adds ~14 minutes.
    let mut ev = timing_cfg(3, 3, 4);
    ev.consistency = Consistency::Eventual;
    let mut st = ev.clone();
    st.consistency = Consistency::Strong;
    let ev_h = run_job(ev).unwrap().total_time_h;
    let st_h = run_job(st).unwrap().total_time_h;
    assert!(
        st_h > ev_h,
        "strong {st_h} must be slower than eventual {ev_h}"
    );
    // The gap is bounded by update-count × latency-gap (the updates only
    // partially sit on the critical path).
    let max_gap_h = 2000.0 * (1.29 - 0.87) / 3600.0;
    assert!(st_h - ev_h <= max_gap_h + 0.1, "gap {} h", st_h - ev_h);
}

#[test]
fn sec4e_expected_delay_formula() {
    // §IV-E: E[extra] = n·p·t_o = 50 min at p = 0.05, 200 min at p = 0.20.
    let a = TimeoutAnalysis::paper_p5c5t2();
    assert!((a.expected_extra_s(0.05) / 60.0 - 50.0).abs() < 1e-6);
    assert!((a.expected_extra_s(0.20) / 60.0 - 200.0).abs() < 1e-6);
}

#[test]
fn sec4e_des_preemption_cost_is_same_order_as_model() {
    // The full fleet simulation should inflate training time by the same
    // order of magnitude the binomial model predicts at p = 0.10. The
    // model assumes a fixed timeout `t_o`; the adaptive scheduler instead
    // grants `deadline_grace × EWMA(turnaround)`, which stretches each
    // loss-discovery wait by roughly the grace factor (see
    // EXPERIMENTS.md), so the band is wider than a fixed-timeout run
    // would need.
    let base = run_job(timing_cfg(5, 5, 2)).unwrap().total_time_h;
    let mut stormy = timing_cfg(5, 5, 2);
    stormy.preemption = PreemptionModel::BernoulliPerSubtask { p: 0.10 };
    let hit = run_job(stormy).unwrap().total_time_h;
    let extra_min = (hit - base) * 60.0;
    let predicted_min = TimeoutAnalysis::paper_p5c5t2().expected_extra_s(0.10) / 60.0;
    assert!(extra_min > 0.0, "storm must cost time");
    assert!(
        extra_min < predicted_min * 8.0,
        "simulated {extra_min:.0} min vs predicted {predicted_min:.0} min"
    );
}

#[test]
fn sec4e_preemptible_cost_savings() {
    // §IV-E: $1.67/h vs $0.50/h; $13.4 vs $4 over 8 h; 70% saving.
    let cost = FleetCost::of(&table1::uniform_fleet(5), 8.0);
    assert!((cost.saving() - 0.70).abs() < 0.01);
    assert!((cost.standard_total() - 13.4).abs() < 0.1);
    assert!((cost.preemptible_total() - 4.0).abs() < 0.05);
}

#[test]
fn sec4d_imagenet_extrapolation() {
    // §IV-D: ~1.6 M updates ⇒ ~187 h of extra time on strong consistency.
    let d = DbOverhead::paper_measured();
    let h = d.extra_s(DbOverhead::imagenet_updates(40)) / 3600.0;
    assert!((h - 187.0).abs() < 2.0, "{h} h");
}

#[test]
fn sec3c_alpha_999_barely_learns() {
    // §IV-C: α = 0.999 (the EASGD β = 0.001 analog) trains far slower —
    // after a few epochs the server has barely moved from initialization.
    let mut cfg = JobConfig::test_small(21);
    cfg.epochs = 4;
    cfg.alpha = AlphaSchedule::Const(0.999);
    let frozen = run_job(cfg).unwrap();
    let mut cfg2 = JobConfig::test_small(21);
    cfg2.epochs = 4;
    cfg2.alpha = AlphaSchedule::Const(0.6);
    let learning = run_job(cfg2).unwrap();
    assert!(
        learning.final_mean_acc() > frozen.final_mean_acc() + 0.05,
        "alpha 0.6 {} vs alpha 0.999 {}",
        learning.final_mean_acc(),
        frozen.final_mean_acc()
    );
}
