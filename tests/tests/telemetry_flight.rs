//! Flight-recorder integration tests: a failing DST seed must leave behind
//! a replayable JSONL artifact whose timestamps ride the virtual clock.

use std::panic::AssertUnwindSafe;
use vc_runtime::{run_scenario, verify_seed, Scenario};

/// Satellite acceptance: when a seed fails its consistency verification,
/// `verify_seed` dumps the run's flight recorder to a per-seed JSONL file
/// and names it in the panic message. The dump parses line-by-line, its
/// timestamps are monotone virtual-clock readings, and a replay of the
/// same seed reproduces it byte-for-byte.
#[test]
fn failing_dst_seed_dumps_replayable_flight_recorder_jsonl() {
    let seed = 41u64;
    let sc = Scenario::new(seed)
        .cn(4)
        .epochs(2)
        .kill_fraction(0.3, 2)
        .respawn_after(0.8);
    let mut out = run_scenario(&sc).unwrap();
    out.verify_consistency().unwrap();
    // Tamper with the metric so verification fails the way a real
    // lost-update accounting bug would surface.
    out.report.store_ops.lost_updates += 1;

    let path = std::env::temp_dir().join(format!("vc-dst-seed-{seed}.jsonl"));
    std::fs::remove_file(&path).ok();
    let panic = std::panic::catch_unwind(AssertUnwindSafe(|| verify_seed(seed, &out)))
        .expect_err("tampered outcome must fail verification");
    let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("flight recorder dumped to"), "{msg}");
    assert!(msg.contains(&format!("vc-dst-seed-{seed}.jsonl")), "{msg}");

    let dump = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!dump.is_empty(), "the trace must not be empty");
    let mut last = f64::NEG_INFINITY;
    let mut kills = 0u64;
    for line in dump.lines() {
        let ev: vc_telemetry::Event = serde_json::from_str(line).expect("replayable JSONL");
        assert!(
            ev.t_s >= last,
            "virtual-clock timestamps must be monotone ({} after {last})",
            ev.t_s
        );
        last = ev.t_s;
        if ev.name == "worker_kill" {
            kills += 1;
        }
    }
    assert!(last > 0.0, "virtual time must have advanced");
    assert_eq!(kills, out.report.kills, "the trace records every kill");

    // The same failing seed replays to a byte-identical trace — the dump
    // is a deterministic artifact, not a one-off.
    let again = run_scenario(&sc).unwrap();
    assert_eq!(
        again.telemetry.recorder().dump_jsonl(),
        dump,
        "replay must reproduce the dumped trace byte-for-byte"
    );
}
