//! Property tests over the simulation models: monotonicity and scaling laws
//! the figures depend on. If any of these breaks, a calibration change has
//! altered the *qualitative* physics of the fleet.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_simnet::{table1, ComputeModel, NetworkModel, PreemptionModel};

proptest! {
    /// More resident subtasks never make an individual subtask faster.
    #[test]
    fn subtask_time_monotone_in_concurrency(r in 1usize..24) {
        let m = ComputeModel::default();
        for client in table1::client_types() {
            let t1 = m.subtask_s(&client, r);
            let t2 = m.subtask_s(&client, r + 1);
            prop_assert!(t2 >= t1, "{}: T{} {} vs T{} {}", client.name, r, t1, r + 1, t2);
        }
    }

    /// Assimilation time is monotone in the in-flight backlog.
    #[test]
    fn assim_time_monotone_in_backlog(pn in 1usize..8, q in 0usize..64) {
        let m = ComputeModel::default();
        let s = table1::server();
        prop_assert!(m.assim_s(&s, pn, q + 1) >= m.assim_s(&s, pn, q));
    }

    /// Server throughput never decreases when removing backlog.
    #[test]
    fn more_ps_never_hurts_light_load(pn in 1usize..7) {
        let m = ComputeModel::default();
        let s = table1::server();
        // Below the core budget, adding a worker adds throughput.
        let demand = (pn as f64 + 1.0) * m.cores_per_ps;
        prop_assume!(demand <= s.vcpus as f64);
        prop_assert!(m.server_throughput(&s, pn + 1) > m.server_throughput(&s, pn));
    }

    /// Expected transfer time is strictly increasing in payload size and
    /// decreasing in bandwidth.
    #[test]
    fn transfer_scaling(bytes in 1usize..100_000_000) {
        let m = NetworkModel { rtt_sigma: 0.0, ..Default::default() };
        let fast = table1::client_8v_2_2(); // 5 Gbps
        let slow = table1::client_8v_2_8(); // 2 Gbps
        prop_assert!(m.expected_transfer_s(&fast, bytes + 1024) > m.expected_transfer_s(&fast, bytes));
        prop_assert!(m.expected_transfer_s(&slow, bytes) > m.expected_transfer_s(&fast, bytes));
    }

    /// Bernoulli preemption frequency is monotone in p (within sampling
    /// tolerance) and kill points always land inside the execution window.
    #[test]
    fn preemption_rate_monotone(p_lo in 0.05f64..0.4) {
        let p_hi = p_lo + 0.3;
        let lo = PreemptionModel::BernoulliPerSubtask { p: p_lo };
        let hi = PreemptionModel::BernoulliPerSubtask { p: p_hi.min(1.0) };
        let mut rng = StdRng::seed_from_u64(7);
        let n = 3000;
        let mut hits_lo = 0;
        let mut hits_hi = 0;
        for _ in 0..n {
            if let Some(at) = lo.draw_preemption(10.0, &mut rng) {
                prop_assert!((0.0..10.0).contains(&at));
                hits_lo += 1;
            }
            if let Some(at) = hi.draw_preemption(10.0, &mut rng) {
                prop_assert!((0.0..10.0).contains(&at));
                hits_hi += 1;
            }
        }
        prop_assert!(hits_hi > hits_lo, "{hits_hi} vs {hits_lo}");
    }

    /// The binomial expectation is linear in each argument.
    #[test]
    fn binomial_expectation_linear(
        n in 1.0f64..10_000.0,
        p in 0.0f64..1.0,
        to in 1.0f64..10_000.0,
    ) {
        let base = PreemptionModel::expected_extra_s(n, p, to);
        prop_assert!((PreemptionModel::expected_extra_s(2.0 * n, p, to) - 2.0 * base).abs() < 1e-6 * base.max(1.0));
        prop_assert!((PreemptionModel::expected_extra_s(n, p, 2.0 * to) - 2.0 * base).abs() < 1e-6 * base.max(1.0));
    }

    /// He-normal initialization scales inversely with fan-in: bigger layers
    /// start with proportionally smaller weights (needed for deep stacks).
    #[test]
    fn he_init_variance_scales(fan_in in 10usize..2000) {
        use vc_tensor::{NormalSampler, Tensor};
        let mut s = NormalSampler::seed_from(fan_in as u64);
        let t = Tensor::he_normal(&[4096], fan_in, &mut s);
        let var = t.data().iter().map(|x| x * x).sum::<f32>() / 4096.0;
        let expect = 2.0 / fan_in as f32;
        prop_assert!((var - expect).abs() / expect < 0.3, "var {} expect {}", var, expect);
    }

    /// Alpha schedules always produce values in [0, 1] over any horizon.
    #[test]
    fn alpha_schedules_bounded(e in 1usize..10_000) {
        use vc_asgd::AlphaSchedule;
        for s in [
            AlphaSchedule::Const(0.0),
            AlphaSchedule::Const(1.0),
            AlphaSchedule::VarEOverE1,
            AlphaSchedule::Linear { from: 0.3, to: 0.99, over: 17 },
        ] {
            let a = s.alpha(e);
            prop_assert!((0.0..=1.0).contains(&a), "{:?} at {}: {}", s, e, a);
        }
    }
}
