//! Chaos test of the threaded runtime: preempt 30% of the worker fleet
//! mid-epoch and assert the job still trains to the learnability threshold,
//! with the lost work recovered through wall-clock timeouts and
//! reassignment — the paper's core fault-tolerance claim (§IV-E), on real
//! threads instead of simulated ones.

use vc_runtime::{run_runtime, FaultPlan, RuntimeConfig};

/// 30% of a 7-worker fleet dies silently on its second assignment and
/// never comes back. The scheduler must notice via deadlines and re-issue
/// their subtasks to the survivors.
#[test]
fn fleet_survives_losing_a_third_of_its_workers() {
    let mut cfg = RuntimeConfig::test_small(21);
    cfg.job.cn = 7;
    cfg.job.tn = 2;
    cfg.job.epochs = 4;
    cfg.faults = FaultPlan {
        kill_hosts: FaultPlan::fraction_of(cfg.job.cn, 0.3),
        kill_on_nth_assignment: 2,
        respawn_after_s: None,
        max_msg_delay_s: 0.0,
        seed: 21,
    };
    assert_eq!(cfg.faults.kill_hosts.len(), 3);

    let report = run_runtime(cfg.clone()).unwrap();

    assert!(!report.halted_early, "job must finish despite the losses");
    assert_eq!(report.epochs.len(), cfg.job.epochs);
    for e in &report.epochs {
        assert_eq!(e.assimilated, cfg.job.shards, "every shard assimilated");
    }
    assert_eq!(report.kills, 3, "every doomed worker died");
    assert_eq!(report.respawns, 0);
    assert!(
        report.server_metrics.timeouts > 0,
        "dead workers' assignments must expire"
    );
    assert!(
        report.server_metrics.reassignments > 0,
        "expired assignments must be re-issued"
    );
    assert!(
        report.final_mean_acc() > 0.2,
        "learnability threshold despite chaos: {}",
        report.final_mean_acc()
    );
}

/// Same storm, but replacements come up after a delay and worker messages
/// travel through the delay line (random delay, possible reordering). The
/// job must still finish and learn.
#[test]
fn fleet_survives_preemption_with_respawn_and_message_chaos() {
    let mut cfg = RuntimeConfig::test_small(22);
    cfg.job.cn = 6;
    cfg.job.tn = 2;
    cfg.job.epochs = 3;
    cfg.faults = FaultPlan {
        kill_hosts: FaultPlan::fraction_of(cfg.job.cn, 0.34),
        kill_on_nth_assignment: 1,
        respawn_after_s: Some(0.3),
        max_msg_delay_s: 0.01,
        seed: 22,
    };

    let doomed = cfg.faults.kill_hosts.len() as u64;
    let report = run_runtime(cfg.clone()).unwrap();

    assert!(!report.halted_early);
    assert_eq!(report.epochs.len(), cfg.job.epochs);
    assert_eq!(report.kills, doomed);
    assert_eq!(report.respawns, doomed, "replacement instances came up");
    assert!(
        report.delayed_msgs > 0,
        "traffic went through the delay line"
    );
    assert!(
        report.server_metrics.reassignments > 0,
        "the dropped first assignments must be re-issued"
    );
    assert!(
        report.final_mean_acc() > 0.2,
        "learnability threshold despite chaos: {}",
        report.final_mean_acc()
    );
}

/// The runtime and the simulator assimilate the same deterministic client
/// results, so their learning outcomes agree — the runtime is a real-time
/// replay of the simulated job, not a different algorithm.
#[test]
fn runtime_and_simulator_agree_on_learning_outcome() {
    let mut cfg = RuntimeConfig::test_small(23);
    cfg.job.cn = 4;
    cfg.job.epochs = 4;

    let rt = run_runtime(cfg.clone()).unwrap();
    let sim = vc_asgd::job::run_job(cfg.job).unwrap();

    assert_eq!(rt.epochs.len(), sim.epochs.len());
    assert!(
        (rt.final_mean_acc() - sim.final_mean_acc()).abs() < 0.15,
        "runtime {} vs simulator {}",
        rt.final_mean_acc(),
        sim.final_mean_acc()
    );
    assert!(rt.final_mean_acc() > 0.15 && sim.final_mean_acc() > 0.15);
}
