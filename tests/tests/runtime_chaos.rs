//! Chaos tests of the volunteer-fleet runtime, run two ways:
//!
//! - **Deterministic simulation (DST)**: the same coordinator/worker state
//!   machines under a virtual clock and seeded scheduler
//!   ([`vc_runtime::sim`]). Each scenario sweeps 32 seeds; every race,
//!   timeout and reordering replays bit-for-bit from the seed printed in
//!   any failure message.
//! - **Real threads**: one wall-clock chaos run and a runtime/simulator
//!   agreement check keep the OS-thread substrate honest.
//!
//! The paper's core fault-tolerance claim (§IV-E) — losing ~30% of the
//! fleet mid-epoch costs recovery time, never the job — is asserted on
//! every seed.

use vc_kvstore::Consistency;
use vc_runtime::{run_runtime, run_scenario, sweep, FaultPlan, RuntimeConfig, Scenario};

/// 30% of a 7-worker fleet dies on its second assignment, no replacements.
fn storm(seed: u64) -> Scenario {
    Scenario::new(seed)
        .cn(7)
        .tn(2)
        .epochs(3)
        .kill_fraction(0.3, 2)
}

/// Strong-consistency variant: the parameter store must serialize every
/// assimilation even while the fleet churns and respawns.
fn strong_storm(seed: u64) -> Scenario {
    Scenario::new(seed)
        .cn(5)
        .epochs(2)
        .consistency(Consistency::Strong)
        .kill_fraction(0.3, 2)
        .respawn_after(1.0)
}

/// Message-chaos variant: first assignments dropped, replacements after a
/// delay, every worker→server message randomly delayed (and reordered).
fn delay_storm(seed: u64) -> Scenario {
    Scenario::new(seed)
        .cn(6)
        .epochs(2)
        .kill_fraction(0.34, 1)
        .respawn_after(0.5)
        .delays(0.1)
}

/// DST sweep: 32 seeds of the 30% fleet-kill storm. Every seed must finish
/// every epoch, kill exactly the doomed workers, recover through virtual
/// timeouts, and still learn. (`sweep` additionally verifies the recorded
/// store history's lost-update recount against `StoreMetrics` per seed.)
#[test]
fn dst_fleet_survives_losing_a_third_of_its_workers() {
    for (seed, out) in sweep(0..32, storm) {
        let r = &out.report;
        assert!(!r.halted_early, "DST seed {seed}: halted early");
        assert_eq!(r.epochs.len(), 3, "DST seed {seed}: epochs missing");
        for e in &r.epochs {
            assert_eq!(
                e.assimilated, 8,
                "DST seed {seed} epoch {}: shard lost",
                e.epoch
            );
        }
        assert_eq!(r.kills, 3, "DST seed {seed}: not every doomed worker died");
        assert_eq!(r.respawns, 0, "DST seed {seed}");
        assert!(
            r.server_metrics.timeouts > 0,
            "DST seed {seed}: dead workers' assignments never expired"
        );
        assert!(
            r.server_metrics.reassignments > 0,
            "DST seed {seed}: expired assignments never re-issued"
        );
        assert!(
            r.final_mean_acc() > 0.15,
            "DST seed {seed}: accuracy {} below learnability",
            r.final_mean_acc()
        );
    }
}

/// DST sweep: 32 seeds under strong consistency with kills and respawns.
/// `sweep` asserts the linearizability condition per seed — the recorded
/// history must admit a sequential witness with zero lost updates; here we
/// re-state the metric-level claim and completion.
#[test]
fn dst_strong_histories_admit_a_sequential_witness_on_every_seed() {
    for (seed, out) in sweep(0..32, strong_storm) {
        let r = &out.report;
        assert!(!r.halted_early, "DST seed {seed}: halted early");
        assert_eq!(
            r.store_ops.lost_updates, 0,
            "DST seed {seed}: strong mode lost updates"
        );
        assert_eq!(r.kills, 2, "DST seed {seed}");
        assert_eq!(r.respawns, 2, "DST seed {seed}");
    }
}

/// DST sweep: 32 seeds of message chaos. Delayed, reordered traffic and
/// respawning workers must never wedge the job.
#[test]
fn dst_fleet_survives_message_chaos_with_respawns() {
    for (seed, out) in sweep(0..32, delay_storm) {
        let r = &out.report;
        assert!(!r.halted_early, "DST seed {seed}: halted early");
        assert_eq!(r.epochs.len(), 2, "DST seed {seed}");
        assert_eq!(r.kills, 3, "DST seed {seed}");
        assert_eq!(r.respawns, 3, "DST seed {seed}");
        assert!(
            r.delayed_msgs > 0,
            "DST seed {seed}: no traffic went through the delay line"
        );
    }
}

/// The acceptance criterion for the harness itself: the same `(Scenario,
/// seed)` replays to byte-identical reports and store histories, and a
/// different seed genuinely explores a different schedule.
#[test]
fn dst_chaos_replay_is_byte_identical() {
    let a = run_scenario(&storm(17)).unwrap();
    let b = run_scenario(&storm(17)).unwrap();
    assert_eq!(
        a.report_json(),
        b.report_json(),
        "same seed must replay bit-for-bit"
    );
    assert_eq!(a.history, b.history, "down to the store's operation log");
    // The flight recorder rides the virtual clock, so the full event trace
    // replays byte-for-byte too.
    assert_eq!(
        a.telemetry.recorder().dump_jsonl(),
        b.telemetry.recorder().dump_jsonl(),
        "same seed must dump an identical flight-recorder trace"
    );
    let c = run_scenario(&storm(18)).unwrap();
    assert_ne!(
        a.report_json(),
        c.report_json(),
        "different seeds must explore different runs"
    );
}

/// Acceptance criterion: the flight-recorder JSONL of a 30% fleet-kill
/// chaos run must agree *exactly* with the report's counters — every kill,
/// respawn and timeout the runtime counted appears as exactly one recorded
/// event, and nothing was dropped from the ring.
#[test]
fn dst_flight_recorder_counts_match_report_counters() {
    let sc = delay_storm(29);
    let out = run_scenario(&sc).unwrap();
    let r = &out.report;
    assert!(
        r.kills > 0 && r.respawns > 0,
        "scenario must exercise faults"
    );
    assert_eq!(out.telemetry.recorder().dropped(), 0, "ring must not wrap");

    let path = std::env::temp_dir().join("vc_chaos_flight_recorder.jsonl");
    std::fs::remove_file(&path).ok();
    out.telemetry.recorder().dump_to_file(&path).unwrap();
    let dump = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let mut counts = std::collections::HashMap::new();
    for line in dump.lines() {
        let ev: vc_telemetry::Event = serde_json::from_str(line).expect("every line parses");
        *counts.entry(ev.name.clone()).or_insert(0u64) += 1;
    }
    let count = |name: &str| counts.get(name).copied().unwrap_or(0);
    assert_eq!(count("worker_kill"), r.kills);
    assert_eq!(count("worker_respawn"), r.respawns);
    assert_eq!(count("wu_timeout"), r.server_metrics.timeouts);
    assert_eq!(count("wu_assigned"), r.server_metrics.assigned);
    assert_eq!(count("wu_completed"), r.server_metrics.completed);
    assert_eq!(
        count("wu_reassigned"),
        r.server_metrics.reassignments,
        "every reassignment (timeout or invalid) leaves one event"
    );
    assert_eq!(count("epoch_finished") as usize, r.epochs.len());
}

/// Nightly-scale sweep, ignored by default. CI's manual dispatch runs it
/// with `--ignored`; `DST_SEEDS` overrides the width (default 256).
#[test]
#[ignore = "nightly: 256-seed sweep, run with --ignored (DST_SEEDS overrides width)"]
fn dst_nightly_wide_sweep() {
    let n: u64 = std::env::var("DST_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    for (seed, out) in sweep(0..n, storm) {
        assert!(!out.report.halted_early, "DST seed {seed}: halted early");
        assert_eq!(out.report.kills, 3, "DST seed {seed}");
    }
    for (seed, out) in sweep(0..n, strong_storm) {
        assert!(!out.report.halted_early, "DST seed {seed}: halted early");
        assert_eq!(
            out.report.store_ops.lost_updates, 0,
            "DST seed {seed}: lost updates"
        );
    }
}

/// Real threads: the same storm as the DST sweeps, on OS threads and
/// wall-clock timeouts, keeps the threaded substrate honest end to end.
#[test]
fn threaded_fleet_survives_preemption_with_respawn_and_message_chaos() {
    let mut cfg = RuntimeConfig::test_small(22);
    cfg.job.cn = 6;
    cfg.job.tn = 2;
    cfg.job.epochs = 3;
    cfg.faults = FaultPlan {
        kill_hosts: FaultPlan::fraction_of(cfg.job.cn, 0.34),
        kill_on_nth_assignment: 1,
        respawn_after_s: Some(0.3),
        max_msg_delay_s: 0.01,
        ..FaultPlan::none()
    };
    cfg.faults.seed = 22;

    let fr_path = std::env::temp_dir().join("vc_threaded_chaos_flight.jsonl");
    std::fs::remove_file(&fr_path).ok();
    cfg.flight_recorder_path = Some(fr_path.to_string_lossy().into_owned());

    let doomed = cfg.faults.kill_hosts.len() as u64;
    let report = run_runtime(cfg.clone()).unwrap();

    // The coordinator dumps the flight recorder on finalize; its event
    // counts agree with the report's counters even on real threads.
    let dump = std::fs::read_to_string(&fr_path).expect("finalize dumps the flight recorder");
    std::fs::remove_file(&fr_path).ok();
    let count = |name: &str| {
        dump.lines()
            .map(|l| serde_json::from_str::<vc_telemetry::Event>(l).expect("line parses"))
            .filter(|ev| ev.name == name)
            .count() as u64
    };
    assert_eq!(count("worker_kill"), report.kills);
    assert_eq!(count("worker_respawn"), report.respawns);
    assert_eq!(count("wu_timeout"), report.server_metrics.timeouts);

    assert!(!report.halted_early);
    assert_eq!(report.epochs.len(), cfg.job.epochs);
    assert_eq!(report.kills, doomed);
    assert_eq!(report.respawns, doomed, "replacement instances came up");
    assert!(
        report.delayed_msgs > 0,
        "traffic went through the delay line"
    );
    assert!(
        report.server_metrics.reassignments > 0,
        "the dropped first assignments must be re-issued"
    );
    assert!(
        report.final_mean_acc() > 0.2,
        "learnability threshold despite chaos: {}",
        report.final_mean_acc()
    );
}

/// The threaded runtime, the deterministic simulation and the discrete-event
/// simulator all assimilate the same deterministic client results, so their
/// learning outcomes agree — three substrates, one algorithm.
#[test]
fn runtime_simulation_and_simulator_agree_on_learning_outcome() {
    let mut cfg = RuntimeConfig::test_small(23);
    cfg.job.cn = 4;
    cfg.job.epochs = 4;

    let rt = run_runtime(cfg.clone()).unwrap();
    let sim = vc_asgd::job::run_job(cfg.job).unwrap();
    let dst = run_scenario(&Scenario::new(23).cn(4).epochs(4)).unwrap();

    assert_eq!(rt.epochs.len(), sim.epochs.len());
    assert_eq!(rt.epochs.len(), dst.report.epochs.len());
    assert!(
        (rt.final_mean_acc() - sim.final_mean_acc()).abs() < 0.15,
        "runtime {} vs simulator {}",
        rt.final_mean_acc(),
        sim.final_mean_acc()
    );
    assert!(
        (rt.final_mean_acc() - dst.report.final_mean_acc()).abs() < 0.15,
        "runtime {} vs DST {}",
        rt.final_mean_acc(),
        dst.report.final_mean_acc()
    );
    assert!(rt.final_mean_acc() > 0.15 && sim.final_mean_acc() > 0.15);
    assert!(dst.report.final_mean_acc() > 0.15);
}
