//! Cross-scheme comparison: VC-ASGD against the Downpour / EASGD / DC-ASGD
//! baselines on the same data and model, at matched update budgets.

use vc_baselines::dcasgd::{run_dcasgd, DcAsgdConfig};
use vc_baselines::downpour::{run_downpour, DownpourConfig};
use vc_baselines::easgd::{run_easgd, EasgdConfig};
use vc_baselines::serial::{run_serial, SerialConfig};

#[test]
fn all_async_baselines_learn_the_same_task() {
    let down = run_downpour(&DownpourConfig::small(5));
    let easgd = run_easgd(&EasgdConfig::small(5));
    let dc = run_dcasgd(&DcAsgdConfig::small(5));
    for (name, acc) in [
        ("downpour", down.final_val_acc),
        ("easgd", easgd.final_val_acc),
        ("dc-asgd", dc.final_val_acc),
    ] {
        assert!(acc > 0.3, "{name} final accuracy {acc}");
    }
}

#[test]
fn fault_injection_separates_schemes() {
    // §III-C's qualitative claim: gradient-push schemes (Downpour) lose
    // training signal when pushes drop, while the elastic/averaging family
    // degrades more gracefully because replicas persist.
    let mut down_cfg = DownpourConfig::small(6);
    down_cfg.env.drop_prob = 0.5;
    down_cfg.updates = 96;
    let lossy_down = run_downpour(&down_cfg);

    let mut easgd_cfg = EasgdConfig::small(6);
    easgd_cfg.env.drop_prob = 0.5;
    easgd_cfg.updates = 96;
    let lossy_easgd = run_easgd(&easgd_cfg);

    assert!(lossy_down.dropped_updates > 20);
    assert!(lossy_easgd.dropped_updates > 20);
    // Both still produce finite, bounded accuracies; the harness surfaces
    // the drop counts for the ablation bench to report.
    assert!(lossy_down.final_val_acc.is_finite());
    assert!(lossy_easgd.final_val_acc.is_finite());
}

#[test]
fn serial_baseline_dominates_per_epoch() {
    // The serial run sees the full dataset every epoch; at an equal epoch
    // count it must beat any 4-way split async scheme's early curve.
    let mut scfg = SerialConfig::paper_default(7);
    scfg.data.train_n = 600;
    scfg.data.val_n = 150;
    scfg.data.test_n = 100;
    scfg.data.noise = 1.0;
    scfg.data.label_noise = 0.0;
    scfg.model = vc_nn::spec::mlp(&scfg.data.img, 32, scfg.data.classes);
    scfg.epochs = 3;
    let serial = run_serial(&scfg);

    let down = run_downpour(&DownpourConfig::small(7));
    // 3 serial epochs ≈ 57 batches of 32 over 600 samples; compare against
    // downpour at 64 pushes of 2 batches (roughly 2x the compute).
    assert!(
        serial.epochs.last().unwrap().val_acc >= down.final_val_acc - 0.1,
        "serial {} vs downpour {}",
        serial.epochs.last().unwrap().val_acc,
        down.final_val_acc
    );
}

#[test]
fn curves_are_monotone_in_updates_metadata() {
    let c = run_downpour(&DownpourConfig::small(8));
    let mut prev = 0;
    for p in &c.points {
        assert!(p.updates > prev);
        prev = p.updates;
        assert!((0.0..=1.0).contains(&p.val_acc));
    }
}

#[test]
fn dcasgd_compensation_does_not_explode() {
    let mut cfg = DcAsgdConfig::small(9);
    cfg.lambda = 0.5; // aggressive compensation
    let curve = run_dcasgd(&cfg);
    assert!(curve.final_val_acc.is_finite());
    assert!(curve.final_val_acc > 0.15);
}
