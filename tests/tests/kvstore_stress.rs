//! Stress tests of the versioned parameter store through the VC-ASGD
//! assimilation paths — deterministic and threaded.
//!
//! Under eventual consistency the read-blend-write cycle is unguarded, so
//! overlapping writers clobber each other (`lost_updates > 0`) — the effect
//! §IV-D quantifies. The *guaranteed-collision* claim lives in the
//! deterministic test: the seeded [`StepScheduler`] interleaves begin/commit
//! windows by construction, so the lost updates are reproducible and the
//! recorded history proves the count. The threaded tests keep the real-lock
//! substrate honest: whatever interleaving the OS happens to produce, the
//! history's independent recount must match the store's counter exactly.

use std::sync::Arc;
use vc_asgd::{AlphaSchedule, VcAsgdAssimilator};
use vc_kvstore::{check_sequential, count_lost_updates, Consistency, HistoryEvent, VersionedStore};
use vc_runtime::StepScheduler;

const WRITERS: usize = 8;
const UPDATES: usize = 100;
const PARAMS: usize = 64;

fn hammer(mode: Consistency) -> (u64, Vec<f32>, Vec<HistoryEvent>) {
    let store = VersionedStore::shared_recording();
    let assim = Arc::new(VcAsgdAssimilator::new(
        store.clone(),
        mode,
        AlphaSchedule::Const(0.5),
    ));
    assim.seed_params(&vec![0.0; PARAMS]);

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let assim = assim.clone();
            std::thread::spawn(move || {
                let client = vec![(w + 1) as f32; PARAMS];
                for _ in 0..UPDATES {
                    match mode {
                        Consistency::Eventual => {
                            let (snap, version) = assim.begin_eventual();
                            // Widen the read-modify-write window the way a
                            // network hop to the store would.
                            std::thread::yield_now();
                            assim.commit_eventual(snap, version, &client, 1);
                        }
                        Consistency::Strong => {
                            assim.assimilate_strong(&client, 1);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let (params, _) = assim.read_params();
    (assim.lost_updates(), params, store.take_history())
}

/// Deterministic collisions: drive overlapping begin/commit windows through
/// the seeded [`StepScheduler`]. Begins are spaced 0.01 virtual seconds
/// apart while each commit lands 0.02 after its begin, so consecutive
/// writers *must* overlap — lost updates are certain, identical on every
/// run of the same seed, and the recorded history proves the exact count.
#[test]
fn deterministic_interleaving_loses_updates_reproducibly() {
    enum Ev {
        Begin(usize),
        Commit(Vec<f32>, u64, usize),
    }
    const SEED: u64 = 42;

    let run = || {
        let store = VersionedStore::shared_recording();
        let assim = VcAsgdAssimilator::new(
            store.clone(),
            Consistency::Eventual,
            AlphaSchedule::Const(0.5),
        );
        assim.seed_params(&[0.0; 8]);
        let mut sched: StepScheduler<Ev> = StepScheduler::new(SEED, 0.002);
        for w in 0..6usize {
            for round in 0..10usize {
                sched.schedule_in(0.01 * (w + 6 * round) as f64, Ev::Begin(w));
            }
        }
        while let Some((_, ev)) = sched.next() {
            match ev {
                Ev::Begin(w) => {
                    let (snap, version) = assim.begin_eventual();
                    sched.schedule_in(0.02, Ev::Commit(snap, version, w));
                }
                Ev::Commit(snap, version, w) => {
                    let client = vec![(w + 1) as f32; 8];
                    assim.commit_eventual(snap, version, &client, 1);
                }
            }
        }
        (assim.lost_updates(), store.take_history())
    };

    let (lost, history) = run();
    assert!(
        lost > 0,
        "DST seed {SEED}: overlapping windows must collide by construction"
    );
    assert_eq!(
        count_lost_updates(&history),
        lost,
        "DST seed {SEED}: history recount must equal the metric exactly"
    );
    assert!(
        check_sequential(&history).is_err(),
        "DST seed {SEED}: a clobbering history cannot admit a sequential witness"
    );

    // The whole interleaving is a pure function of the seed.
    let (lost2, history2) = run();
    assert_eq!(
        lost, lost2,
        "DST seed {SEED}: replay changed the loss count"
    );
    assert_eq!(
        history, history2,
        "DST seed {SEED}: replay changed the history"
    );
}

/// Threaded eventual mode: whatever interleaving the OS produced this run,
/// the history's independent recount must equal the store's counter, and
/// every surviving write is a valid blend. (Whether collisions *happen* is
/// the deterministic test's job — this one must not depend on scheduling
/// luck.)
#[test]
fn eventual_consistency_accounts_for_every_lost_update() {
    let (lost, params, history) = hammer(Consistency::Eventual);
    assert_eq!(
        count_lost_updates(&history),
        lost,
        "metric and history evidence disagree"
    );
    // Clobbered or not, every surviving write is a valid blend: parameters
    // stay finite and inside the convex hull of the client values.
    assert!(params
        .iter()
        .all(|p| p.is_finite() && *p >= 0.0 && *p <= WRITERS as f32));
}

/// Threaded strong mode: transactions serialize, so the history must admit
/// a sequential witness and nothing is ever lost.
#[test]
fn strong_consistency_loses_nothing_under_contention() {
    let (lost, params, history) = hammer(Consistency::Strong);
    assert_eq!(lost, 0, "transactional updates must never clobber");
    assert_eq!(count_lost_updates(&history), 0);
    check_sequential(&history).expect("strong history must admit a sequential witness");
    assert!(params.iter().all(|p| p.is_finite()));
}

#[test]
fn store_write_counts_match_the_workload() {
    let store = VersionedStore::shared();
    let assim = VcAsgdAssimilator::new(
        store.clone(),
        Consistency::Strong,
        AlphaSchedule::Const(0.5),
    );
    assim.seed_params(&[0.0; 8]);
    let before = store.metrics().snapshot();
    assim.assimilate_strong(&[1.0; 8], 1);
    assim.assimilate_strong(&[2.0; 8], 1);
    let after = store.metrics().snapshot();
    assert_eq!(
        after.transactions - before.transactions,
        2,
        "two transactions"
    );
    assert_eq!(after.lost_updates, 0);
}
