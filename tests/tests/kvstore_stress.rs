//! Multi-threaded stress test of the versioned parameter store: real OS
//! threads hammering one key through the VC-ASGD assimilation paths.
//!
//! Under eventual consistency the read-blend-write cycle is unguarded, so
//! concurrent writers must clobber each other (`lost_updates > 0`) — the
//! effect §IV-D quantifies. Under strong consistency the same workload
//! loses nothing.

use std::sync::Arc;
use vc_asgd::{AlphaSchedule, VcAsgdAssimilator};
use vc_kvstore::{Consistency, VersionedStore};

const WRITERS: usize = 8;
const UPDATES: usize = 100;
const PARAMS: usize = 64;

fn hammer(mode: Consistency) -> (u64, Vec<f32>) {
    let store = VersionedStore::shared();
    let assim = Arc::new(VcAsgdAssimilator::new(
        store.clone(),
        mode,
        AlphaSchedule::Const(0.5),
    ));
    assim.seed_params(&vec![0.0; PARAMS]);

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let assim = assim.clone();
            std::thread::spawn(move || {
                let client = vec![(w + 1) as f32; PARAMS];
                for _ in 0..UPDATES {
                    match mode {
                        Consistency::Eventual => {
                            let (snap, version) = assim.begin_eventual();
                            // Widen the read-modify-write window the way a
                            // network hop to the store would.
                            std::thread::yield_now();
                            assim.commit_eventual(snap, version, &client, 1);
                        }
                        Consistency::Strong => {
                            assim.assimilate_strong(&client, 1);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let (params, _) = assim.read_params();
    (assim.lost_updates(), params)
}

#[test]
fn eventual_consistency_loses_updates_under_contention() {
    let (lost, params) = hammer(Consistency::Eventual);
    assert!(
        lost > 0,
        "8 threads x 100 unguarded read-blend-write cycles must collide"
    );
    // Clobbered or not, every surviving write is a valid blend: parameters
    // stay finite and inside the convex hull of the client values.
    assert!(params
        .iter()
        .all(|p| p.is_finite() && *p >= 0.0 && *p <= WRITERS as f32));
}

#[test]
fn strong_consistency_loses_nothing_under_contention() {
    let (lost, params) = hammer(Consistency::Strong);
    assert_eq!(lost, 0, "transactional updates must never clobber");
    assert!(params.iter().all(|p| p.is_finite()));
}

#[test]
fn store_write_counts_match_the_workload() {
    let store = VersionedStore::shared();
    let assim = VcAsgdAssimilator::new(
        store.clone(),
        Consistency::Strong,
        AlphaSchedule::Const(0.5),
    );
    assim.seed_params(&[0.0; 8]);
    let before = store.metrics().snapshot();
    assim.assimilate_strong(&[1.0; 8], 1);
    assim.assimilate_strong(&[2.0; 8], 1);
    let after = store.metrics().snapshot();
    assert_eq!(after.2 - before.2, 2, "two transactions");
    assert_eq!(after.3, 0);
}
