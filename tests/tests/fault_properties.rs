//! Property tests for [`vc_runtime::FaultPlan`]: the fault plan's
//! arithmetic must be safe for *arbitrary* fleet sizes and fractions, not
//! just the handful the chaos tests pick.

use proptest::prelude::*;
use vc_runtime::FaultPlan;

proptest! {
    /// `fraction_of` is bounded by the fleet: it selects `ceil(frac · cn)`
    /// distinct in-range hosts, never more than `cn`.
    #[test]
    fn fraction_of_is_bounded_and_in_range(cn in 1usize..200, frac in 0.0f64..1.0) {
        let hosts = FaultPlan::fraction_of(cn, frac);
        let expect = ((cn as f64 * frac).ceil() as usize).min(cn);
        prop_assert_eq!(hosts.len(), expect);
        for (i, &h) in hosts.iter().enumerate() {
            prop_assert_eq!(h as usize, i, "prefix selection, so ids are distinct");
            prop_assert!((h as usize) < cn);
        }
    }

    /// `fraction_of` is monotone in the fraction: asking for a larger share
    /// of the fleet never selects fewer hosts, and the smaller selection is
    /// always a prefix of the larger.
    #[test]
    fn fraction_of_is_monotone_in_frac(
        cn in 1usize..200,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let small = FaultPlan::fraction_of(cn, lo);
        let big = FaultPlan::fraction_of(cn, hi);
        prop_assert!(small.len() <= big.len());
        prop_assert_eq!(&big[..small.len()], &small[..]);
    }

    /// Any plan that passes `validate(cn)` can never kill a host outside
    /// the fleet: `should_kill(host, …)` is false for every host ≥ cn, for
    /// every life and assignment number.
    #[test]
    fn validated_plans_never_kill_outside_the_fleet(
        cn in 2usize..64,
        frac in 0.0f64..1.0,
        nth in 1u64..10,
        life in 0u32..4,
        probe in 0u32..256,
        assignment in 1u64..20,
    ) {
        let mut plan = FaultPlan::none();
        plan.kill_hosts = FaultPlan::fraction_of(cn, frac);
        plan.kill_on_nth_assignment = nth;
        prop_assume!(plan.validate(cn).is_ok()); // whole-fleet kills are rejected
        if probe as usize >= cn {
            prop_assert!(
                !plan.should_kill(probe, life, assignment),
                "validated plan killed host {} of a {}-host fleet",
                probe,
                cn
            );
        }
    }

    /// `should_kill` fires exactly at `(life 0, nth assignment)` for doomed
    /// hosts and nowhere else — one death per doomed host, ever.
    #[test]
    fn kill_fires_exactly_once_per_doomed_host(
        cn in 2usize..32,
        frac in 0.01f64..0.99,
        nth in 1u64..8,
        host in 0u32..32,
        life in 0u32..3,
        assignment in 1u64..12,
    ) {
        let mut plan = FaultPlan::none();
        plan.kill_hosts = FaultPlan::fraction_of(cn, frac);
        plan.kill_on_nth_assignment = nth;
        prop_assume!(plan.validate(cn).is_ok());
        let doomed = plan.kill_hosts.contains(&host);
        let fires = plan.should_kill(host, life, assignment);
        prop_assert_eq!(
            fires,
            doomed && life == 0 && assignment == nth,
            "host {} life {} assignment {} (nth {})",
            host,
            life,
            assignment,
            nth
        );
    }
}
