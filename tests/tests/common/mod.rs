//! Shared fixtures for the golden-bit suites: the pinned chaos scenarios,
//! the pre-rewrite trajectory fingerprints captured on them, and the
//! workspace's standing FNV-1a trace-fingerprint helper.
//!
//! Used by `sched_scale.rs` (the scheduler-rewrite regression) and
//! `ops_trace.rs` (the observability-is-perturbation-free regression):
//! both must replay the *same* trajectories, so the scenarios and the
//! golden bits live in exactly one place.

#![allow(dead_code)] // each test binary uses the subset it needs

use vc_runtime::{ByzantineMode, Scenario};

/// FNV-1a 64-bit, the workspace's standing trace-fingerprint choice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// --- the pinned scenarios (identical to runtime_chaos/scheduler_hardening) --

pub fn storm(seed: u64) -> Scenario {
    Scenario::new(seed)
        .cn(7)
        .tn(2)
        .epochs(3)
        .kill_fraction(0.3, 2)
}

pub fn strong_storm(seed: u64) -> Scenario {
    Scenario::new(seed)
        .cn(5)
        .epochs(2)
        .consistency(vc_kvstore::Consistency::Strong)
        .kill_fraction(0.3, 2)
        .respawn_after(1.0)
}

pub fn delay_storm(seed: u64) -> Scenario {
    Scenario::new(seed)
        .cn(6)
        .epochs(2)
        .kill_fraction(0.34, 1)
        .respawn_after(0.5)
        .delays(0.1)
}

pub fn byz_poison(seed: u64) -> Scenario {
    let mut sc = Scenario::new(seed)
        .cn(6)
        .epochs(2)
        .replication(2)
        .quorum(2)
        .byzantine(vec![0, 1], ByzantineMode::Poison);
    sc.cfg.job.val_eval_n = 60;
    sc
}

/// One golden record: scenario name, seed, per-epoch `mean_val_acc` bits,
/// final val/test accuracy bits, FNV-1a of the report JSON, FNV-1a of the
/// flight-recorder JSONL.
pub type Golden = (&'static str, u64, Vec<u32>, u32, u32, u64, u64);

/// Captured on the pre-rewrite (full-scan) scheduler at the pinned seeds.
pub fn goldens() -> Vec<Golden> {
    vec![
        (
            "storm",
            0,
            vec![1044591412, 1049449813, 1052980020],
            1053609165,
            1052490684,
            0x3d072889d1799a9f,
            0x8c3fcddd4eaec676,
        ),
        (
            "storm",
            1,
            vec![1044171982, 1049729433, 1054482978],
            1055007266,
            1055566507,
            0x5c5b297e94e2f5ed,
            0x75d2db82a0547151,
        ),
        (
            "storm",
            2,
            vec![1044032171, 1050638199, 1054203358],
            1054168405,
            1053049924,
            0x07b084db369c8fef,
            0x1f92623cfd992885,
        ),
        (
            "storm",
            3,
            vec![1040047582, 1049379908, 1055496600],
            1056684988,
            1056405367,
            0xa7c0b1b4f1ac7a85,
            0x8fcb7ba0e4445c3a,
        ),
        (
            "storm",
            17,
            vec![1042074828, 1050812962, 1053714023],
            1054727646,
            1054727646,
            0x575b0d7e41d68441,
            0xa9b7e65b7010a613,
        ),
        (
            "strong_storm",
            0,
            vec![1044451602, 1050148864],
            1050812962,
            1050253722,
            0x39b156f6c7f9529d,
            0x37aa510cacdc4fd9,
        ),
        (
            "strong_storm",
            1,
            vec![1045150653, 1050393531],
            1051372203,
            1052770304,
            0x2babf2f6df33a0a0,
            0x8b39d01bc2626273,
        ),
        (
            "delay_storm",
            0,
            vec![1044381697, 1049589623],
            1049974101,
            1049974101,
            0x323c06b3bdab0972,
            0x55d4cf0ecc2bcb50,
        ),
        (
            "delay_storm",
            1,
            vec![1044171982, 1049729433],
            1050253722,
            1051931443,
            0x14c3c38e7f80a799,
            0x86167fa0f4459d96,
        ),
        (
            "byz_poison",
            0,
            vec![1043962266, 1049135240],
            1051372203,
            1050253722,
            0x31718488ed06f5d7,
            0x80ca28d1c019c15f,
        ),
        (
            "byz_poison",
            1,
            vec![1042843786, 1050533341],
            1051372203,
            1052211063,
            0x0c689b8069b6184a,
            0x284331b3f994dfb0,
        ),
    ]
}

pub fn make(name: &str, seed: u64) -> Scenario {
    match name {
        "storm" => storm(seed),
        "strong_storm" => strong_storm(seed),
        "delay_storm" => delay_storm(seed),
        "byz_poison" => byz_poison(seed),
        other => panic!("unknown golden scenario {other}"),
    }
}
