//! Scrape-under-load: the live HTTP ops surface is hammered while a
//! threaded chaos fleet trains, and must never panic, block the training
//! path, or serve garbage.
//!
//! The run is the `runtime_chaos.rs` storm (preemption + respawn + delay
//! line) with tracing on; scraper threads cycle `/metrics`, `/status`,
//! `/events`, `/trace`, `/healthz` and the dashboard the whole time over
//! real loopback TCP. Every response must be a well-formed 200 with the
//! right shape, per-scrape latency stays bounded, and the run itself
//! finishes and learns exactly as it does unobserved.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vc_ops::{OpsHub, OpsServer, StatusSnapshot};
use vc_runtime::{FaultPlan, Runtime, RuntimeConfig};
use vc_telemetry::Telemetry;

/// One raw HTTP/1.1 GET over loopback; returns (status code, body).
fn scrape(addr: std::net::SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text_head = String::from_utf8_lossy(&buf[..buf.len().min(64)]).into_owned();
    let status: u16 = text_head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("unparsable status line: {text_head:?}"));
    let body_at = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .unwrap_or(buf.len());
    (status, buf[body_at..].to_vec())
}

#[test]
fn scraping_under_chaos_load_never_blocks_the_fleet() {
    let mut cfg = RuntimeConfig::test_small(22);
    cfg.job.cn = 6;
    cfg.job.tn = 2;
    cfg.job.epochs = 3;
    cfg.faults = FaultPlan {
        kill_hosts: FaultPlan::fraction_of(cfg.job.cn, 0.34),
        kill_on_nth_assignment: 1,
        respawn_after_s: Some(0.3),
        max_msg_delay_s: 0.01,
        ..FaultPlan::none()
    };
    cfg.faults.seed = 22;
    cfg.trace = true;

    let tel = Telemetry::silent();
    let hub = Arc::new(OpsHub::new(tel.clone()));
    let server = OpsServer::start("127.0.0.1:0", hub.clone()).expect("bind ops server");
    let addr = server.local_addr();

    let runtime = Runtime::new(cfg.clone())
        .unwrap()
        .with_telemetry(tel)
        .with_ops_hub(hub.clone());
    let run = std::thread::spawn(move || runtime.run());

    // Hammer every endpoint from two scraper threads until the run ends.
    let done = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicU64::new(0));
    let mut scrapers = Vec::new();
    for t in 0..2 {
        let done = done.clone();
        let scrapes = scrapes.clone();
        scrapers.push(std::thread::spawn(move || {
            let paths = ["/metrics", "/status", "/events", "/trace", "/healthz", "/"];
            let mut worst = Duration::ZERO;
            let mut i = t; // desynchronize the two scrapers
            while !done.load(Ordering::Relaxed) {
                let path = paths[i % paths.len()];
                i += 1;
                let t0 = Instant::now();
                let (status, body) = scrape(addr, path);
                worst = worst.max(t0.elapsed());
                assert_eq!(status, 200, "{path} under load");
                // /metrics and /events may be legitimately empty in the
                // first instants, before the run registers anything.
                if !matches!(path, "/metrics" | "/events") {
                    assert!(!body.is_empty(), "{path}: empty body under load");
                }
                if path == "/status" {
                    let snap: StatusSnapshot =
                        serde_json::from_str(std::str::from_utf8(&body).unwrap())
                            .expect("/status parses mid-run");
                    // Default snapshot until the first publish; live after.
                    assert!(
                        snap.epochs_total == 0 || snap.epochs_total == 3,
                        "garbled snapshot: {snap:?}"
                    );
                }
                scrapes.fetch_add(1, Ordering::Relaxed);
            }
            worst
        }));
    }

    let report = run.join().expect("run thread").expect("run finishes");
    done.store(true, Ordering::Relaxed);
    let worst = scrapers
        .into_iter()
        .map(|h| h.join().expect("scraper panicked under load"))
        .fold(Duration::ZERO, Duration::max);

    // The observed run behaves like the unobserved chaos test: finishes,
    // learns, recovers all preempted hosts.
    assert!(!report.halted_early);
    assert_eq!(report.epochs.len(), 3);
    assert!(report.final_mean_acc() > 0.2, "{}", report.final_mean_acc());
    assert!(report.kills > 0 && report.respawns == report.kills);

    let n = scrapes.load(Ordering::Relaxed);
    assert!(n >= 10, "only {n} scrapes landed during the run");
    // Bounded scrape latency: generous for CI noise, but far below any
    // "scrape waits for the training path" failure mode.
    assert!(
        worst < Duration::from_secs(5),
        "worst scrape took {worst:?}"
    );

    // After the run the hub (which outlives the runtime) serves the final
    // state: done=true, with the traced run's spans in /events.
    let (status, body) = scrape(addr, "/status");
    assert_eq!(status, 200);
    let snap: StatusSnapshot = serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
    assert!(snap.done, "finalize published done=true");
    assert_eq!(snap.epochs_done, 3);
    let (status, body) = scrape(addr, "/events");
    assert_eq!(status, 200);
    let events = String::from_utf8(body).unwrap();
    assert!(
        events.lines().any(|l| l.contains("\"trace_span\"")),
        "traced run exposes spans over /events"
    );
    drop(server); // joins the accept + worker threads
}

/// `RuntimeConfig::ops_addr` alone (no external hub) boots the managed
/// server for the duration of the run.
#[test]
fn ops_addr_config_boots_a_managed_server() {
    let mut cfg = RuntimeConfig::test_small(7);
    cfg.job.cn = 4;
    cfg.job.epochs = 2;
    cfg.ops_addr = Some("127.0.0.1:0".into());

    let tel = Telemetry::silent();
    let runtime = Runtime::new(cfg).unwrap().with_telemetry(tel.clone());
    let run = std::thread::spawn(move || runtime.run());

    // The bound (ephemeral) address is announced through telemetry.
    let addr = 'addr: {
        for _ in 0..200 {
            let ev = tel
                .recorder()
                .events()
                .into_iter()
                .find(|ev| ev.name == "ops_server_started");
            if let Some(ev) = ev {
                let addr = ev
                    .fields
                    .iter()
                    .find(|(k, _)| k == "addr")
                    .map(|(_, v)| v.to_string())
                    .expect("addr field");
                break 'addr addr.parse::<std::net::SocketAddr>().expect("socket addr");
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("ops_server_started event never appeared");
    };

    let (status, body) = scrape(addr, "/healthz");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));
    let (status, _) = scrape(addr, "/metrics");
    assert_eq!(status, 200);

    let report = run.join().unwrap().unwrap();
    assert!(!report.halted_early);
    // The managed server died with the run: the port no longer accepts.
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "managed ops server must stop when the run ends"
    );
}
