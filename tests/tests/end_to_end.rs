//! End-to-end integration: the full pipeline (data → middleware → fleet →
//! VC-ASGD → report) across crates.

use vc_asgd::job::run_job;
use vc_asgd::{AlphaSchedule, FleetKind, JobConfig};
use vc_kvstore::Consistency;
use vc_simnet::PreemptionModel;

fn quick_cfg(seed: u64) -> JobConfig {
    let mut cfg = JobConfig::test_small(seed);
    cfg.epochs = 4;
    cfg
}

#[test]
fn pipeline_trains_and_reports_consistently() {
    let cfg = quick_cfg(1);
    let r = run_job(cfg.clone()).unwrap();
    assert_eq!(r.label, "P2C2T2");
    assert_eq!(r.epochs.len(), 4);
    // Every epoch assimilated exactly `shards` results.
    assert!(r.epochs.iter().all(|e| e.assimilated == cfg.shards));
    // The server accepted exactly epochs × shards results.
    assert_eq!(r.server_metrics.completed, (cfg.epochs * cfg.shards) as u64);
    // Accuracy fields are coherent probabilities.
    for e in &r.epochs {
        assert!(e.min_val_acc <= e.mean_val_acc && e.mean_val_acc <= e.max_val_acc);
        assert!((0.0..=1.0).contains(&e.mean_val_acc));
    }
    // Store writes: 1 seed + one per assimilation.
    assert_eq!(r.store_ops.writes, 1 + r.server_metrics.completed);
}

#[test]
fn mixed_fleet_heterogeneity_changes_timing_not_correctness() {
    let mut uniform = quick_cfg(2);
    uniform.cn = 4;
    let mut mixed = uniform.clone();
    mixed.fleet = FleetKind::Mixed;
    let ru = run_job(uniform).unwrap();
    let rm = run_job(mixed).unwrap();
    assert_eq!(ru.epochs.len(), rm.epochs.len());
    // Faster mixed clients (2.5/2.8 GHz vs all-2.2) change the clock.
    assert_ne!(ru.total_time_h, rm.total_time_h);
}

#[test]
fn alpha_var_schedule_is_recorded_per_epoch() {
    let mut cfg = quick_cfg(3);
    cfg.alpha = AlphaSchedule::VarEOverE1;
    let r = run_job(cfg).unwrap();
    let alphas: Vec<f32> = r.epochs.iter().map(|e| e.alpha).collect();
    assert!((alphas[0] - 0.5).abs() < 1e-6);
    assert!(alphas.windows(2).all(|w| w[1] > w[0]), "{alphas:?}");
}

#[test]
fn strong_consistency_serializes_under_contention() {
    let mut cfg = quick_cfg(4);
    cfg.pn = 4;
    cfg.consistency = Consistency::Strong;
    let r = run_job(cfg).unwrap();
    assert_eq!(
        r.store_ops.lost_updates, 0,
        "strong mode must not lose updates"
    );
    // Strong path counts transactions, not raw puts.
    assert!(r.store_ops.transactions >= r.server_metrics.completed);
}

#[test]
fn survives_sustained_preemption_storm() {
    // 40% per-subtask interruption: brutal, but the job must finish and
    // still learn (the §III-E fault-tolerance claim, stress-tested).
    let mut cfg = quick_cfg(5);
    cfg.epochs = 3;
    cfg.preemption = PreemptionModel::BernoulliPerSubtask { p: 0.4 };
    cfg.replacement_delay_s = 60.0;
    let r = run_job(cfg).unwrap();
    assert_eq!(r.epochs.len(), 3);
    assert!(r.preemptions > 0);
    assert!(r.server_metrics.timeouts > 0);
    assert!(r.server_metrics.reassignments > 0);
}

#[test]
fn exponential_lifetime_preemption_also_recovers() {
    let mut cfg = quick_cfg(6);
    cfg.epochs = 2;
    // Mean lifetime shorter than the job: several kills guaranteed.
    cfg.preemption = PreemptionModel::ExponentialLifetime { mean_hours: 0.05 };
    let r = run_job(cfg).unwrap();
    assert_eq!(r.epochs.len(), 2);
    assert!(r.preemptions > 0);
}

#[test]
fn timing_only_matches_real_run_clock() {
    // The fast path must reproduce the same simulated clock as the real
    // run (same seeds, same event sequence) — it only skips the learning.
    let real = run_job(quick_cfg(7)).unwrap();
    let mut fast_cfg = quick_cfg(7);
    fast_cfg.timing_only = true;
    let fast = run_job(fast_cfg).unwrap();
    assert_eq!(real.epochs.len(), fast.epochs.len());
    for (a, b) in real.epochs.iter().zip(&fast.epochs) {
        assert!(
            (a.end_time_h - b.end_time_h).abs() < 1e-9,
            "epoch {} clock diverged: {} vs {}",
            a.epoch,
            a.end_time_h,
            b.end_time_h
        );
    }
    assert_eq!(real.bytes_transferred, fast.bytes_transferred);
}

#[test]
fn vertical_scaling_reduces_wall_clock_up_to_capacity() {
    // More simultaneous subtasks per client (T1 -> T4) shortens the epoch
    // while the server keeps up — §IV-B's vertical-scaling observation.
    let time_for = |tn: usize| {
        let mut cfg = quick_cfg(8);
        cfg.tn = tn;
        cfg.timing_only = true;
        run_job(cfg).unwrap().total_time_h
    };
    let t1 = time_for(1);
    let t4 = time_for(4);
    assert!(t4 < t1, "T4 {t4} should beat T1 {t1}");
}

#[test]
fn reports_serialize_to_json() {
    let r = run_job(quick_cfg(9)).unwrap();
    let json = serde_json::to_string(&r).unwrap();
    let back: vc_asgd::JobReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r);
    // And the CSV renderer produces one line per epoch plus a header.
    assert_eq!(r.to_csv().lines().count(), r.epochs.len() + 1);
}

#[test]
fn replicated_workunits_run_redundantly_and_converge() {
    // BOINC's redundancy feature (§II-C): each subtask executes on two
    // hosts; the first valid result wins, the loser is cancelled.
    let mut cfg = quick_cfg(10);
    cfg.cn = 3;
    cfg.middleware.replication = 2;
    cfg.epochs = 2;
    let r = run_job(cfg.clone()).unwrap();
    assert_eq!(r.epochs.len(), 2);
    assert!(r.epochs.iter().all(|e| e.assimilated == cfg.shards));
    // Redundancy really happened: more assignments than completions, and
    // some replicas were cancelled or reported stale.
    assert!(r.server_metrics.assigned > r.server_metrics.completed);
    assert!(
        r.server_metrics.cancelled_replicas + r.server_metrics.stale_results > 0,
        "{:?}",
        r.server_metrics
    );
}

#[test]
fn replication_hedges_against_preemption() {
    // With instances dying, redundant execution reduces the timeout stalls
    // on the critical path (at the price of extra assignments).
    let storm = PreemptionModel::BernoulliPerSubtask { p: 0.35 };
    let mut single = quick_cfg(11);
    single.cn = 4;
    single.epochs = 3;
    single.timing_only = true;
    single.preemption = storm;
    let mut redundant = single.clone();
    redundant.middleware.replication = 2;
    let r1 = run_job(single).unwrap();
    let r2 = run_job(redundant).unwrap();
    // Not asserting a strict win (stochastic); assert both finish and the
    // redundant run paid for it with more assignments.
    assert!(r2.server_metrics.assigned > r1.server_metrics.assigned);
    assert_eq!(r1.epochs.len(), 3);
    assert_eq!(r2.epochs.len(), 3);
}

#[test]
fn warm_start_charges_time_and_improves_the_seed() {
    let mut cold = quick_cfg(12);
    cold.epochs = 2;
    let mut warm = cold.clone();
    warm.warm_start_epochs = 2;
    let rc = run_job(cold).unwrap();
    let rw = run_job(warm).unwrap();
    // The warm run's clock starts later (serial phase charged).
    assert!(rw.epochs[0].end_time_h > rc.epochs[0].end_time_h);
    // And epoch-1 accuracy benefits from the warm seed.
    assert!(
        rw.epochs[0].mean_val_acc > rc.epochs[0].mean_val_acc,
        "warm {} vs cold {}",
        rw.epochs[0].mean_val_acc,
        rc.epochs[0].mean_val_acc
    );
}

#[test]
fn ps_autoscaling_grows_under_backlog_and_shrinks_when_idle() {
    // Start with one parameter server against a burst-heavy fleet: the
    // backlog forces the pool to grow (§III-D's dynamic scaling idea).
    let mut cfg = quick_cfg(13);
    cfg.pn = 1;
    cfg.pn_autoscale = true;
    cfg.pn_max = 6;
    cfg.cn = 4;
    cfg.tn = 4;
    cfg.epochs = 6;
    cfg.timing_only = true;
    // Make assimilation genuinely slow so the queue backs up.
    cfg.compute.assim_cpu_s = 120.0;
    let r = run_job(cfg).unwrap();
    let pns: Vec<usize> = r.epochs.iter().map(|e| e.pn).collect();
    assert!(
        pns.iter().any(|&p| p > 1),
        "autoscaler never grew the pool: {pns:?}"
    );
    // Autoscaling must shorten the run vs the fixed-P1 config.
    let mut fixed = quick_cfg(13);
    fixed.pn = 1;
    fixed.cn = 4;
    fixed.tn = 4;
    fixed.epochs = 6;
    fixed.timing_only = true;
    fixed.compute.assim_cpu_s = 120.0;
    let rf = run_job(fixed).unwrap();
    assert!(
        r.total_time_h < rf.total_time_h,
        "autoscaled {} vs fixed {}",
        r.total_time_h,
        rf.total_time_h
    );
}
