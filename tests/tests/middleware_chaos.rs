//! Failure-injection tests against the middleware state machine: the
//! §III-B fault-tolerance guarantees under adversarial schedules, driven
//! through the DST harness's [`VirtualClock`] — time is an explicit event
//! queue, every step is seeded, and any failing seed replays bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_middleware::{
    BoincServer, Clock, FiniteBlobValidator, HostId, MiddlewareConfig, ReportStatus,
    ValidationVerdict, Validator, VirtualClock,
};
use vc_simnet::{table1, SimTime};

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

fn fleet(n: usize, slots: usize) -> Vec<(vc_simnet::InstanceSpec, usize)> {
    (0..n).map(|_| (table1::client_8v_2_2(), slots)).collect()
}

/// Randomized schedule across 32 seeds: hosts flap, results arrive or
/// vanish, virtual time jumps — every workunit must still complete exactly
/// once. Time advances through a [`VirtualClock`] wakeup queue, so the
/// whole schedule is a pure function of the seed named in any failure.
#[test]
fn every_workunit_completes_exactly_once_under_chaos() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let clock = VirtualClock::new();
        let mut server = BoincServer::new(
            MiddlewareConfig {
                timeout_s: 100.0,
                // A snappy backoff: flaky hosts sit out briefly instead of
                // stretching the schedule toward the step cap.
                backoff_base_s: 1.0,
                backoff_max_s: 50.0,
                ..Default::default()
            },
            fleet(3, 2),
        );
        let wus = 20usize;
        server.add_epoch(1, wus, 1, clock.now());

        let mut in_flight: Vec<(vc_middleware::WuId, HostId)> = Vec::new();
        let mut completions = 0usize;
        let mut steps = 0u64;
        clock.schedule_in(rng.gen_range(1.0..40.0), steps);
        while !server.all_done() {
            let (now_t, _) = clock
                .advance()
                .unwrap_or_else(|| panic!("DST seed {seed}: clock ran dry mid-chaos"));
            steps += 1;
            assert!(
                steps < 50_000,
                "DST seed {seed}: schedule failed to converge"
            );
            server.scan_timeouts(now_t);
            // Random host flaps.
            if rng.gen_bool(0.05) {
                let h = HostId(rng.gen_range(0..3));
                server.preempt_host(h);
                in_flight.retain(|&(_, host)| host != h);
            }
            if rng.gen_bool(0.1) {
                let h = HostId(rng.gen_range(0..3));
                server.revive_host(h, now_t);
            }
            // Hosts poll.
            for hid in 0..3 {
                while let Some(a) = server.request_work(HostId(hid), now_t) {
                    in_flight.push((a.wu.id, HostId(hid)));
                }
            }
            // Some in-flight work finishes; some is silently lost.
            let mut still = Vec::new();
            for (wu, host) in in_flight.drain(..) {
                let roll: f64 = rng.gen();
                if roll < 0.3 {
                    if server.report_success(wu, host, now_t) == ReportStatus::Accepted {
                        completions += 1;
                    }
                } else if roll < 0.4 {
                    // lost forever; the transitioner must recover it
                } else {
                    still.push((wu, host));
                }
            }
            in_flight = still;
            // Arm the next step of the schedule.
            clock.schedule_in(rng.gen_range(1.0..40.0), steps);
        }
        assert_eq!(
            completions, wus,
            "DST seed {seed}: duplicate or missing completions"
        );
        let m = server.metrics();
        assert_eq!(m.completed as usize, wus, "DST seed {seed}");
        assert!(
            clock.elapsed_s() > 0.0,
            "DST seed {seed}: virtual time never advanced"
        );
    }
}

#[test]
fn validator_rejects_poisoned_uploads_and_job_recovers() {
    let validator = FiniteBlobValidator::with_len(4);
    let mut server = BoincServer::new(MiddlewareConfig::default(), fleet(2, 1));
    server.add_workunit(1, 0, 1, t(0.0));

    let a = server.request_work(HostId(0), t(0.0)).unwrap();

    // Host 0 uploads NaN-poisoned parameters.
    let mut blob = Vec::new();
    blob.extend_from_slice(&0x5643_5031u32.to_le_bytes());
    blob.extend_from_slice(&4u64.to_le_bytes());
    for v in [1.0f32, f32::NAN, 0.0, 2.0] {
        blob.extend_from_slice(&v.to_le_bytes());
    }
    let verdict = validator.validate(&blob);
    assert!(matches!(verdict, ValidationVerdict::Invalid { .. }));
    server.report_invalid(a.wu.id, HostId(0), t(10.0));

    // The workunit is re-issued; a healthy client completes it.
    let b = server.request_work(HostId(1), t(10.0)).unwrap();
    assert_eq!(b.wu.id, a.wu.id);
    let mut good = Vec::new();
    good.extend_from_slice(&0x5643_5031u32.to_le_bytes());
    good.extend_from_slice(&4u64.to_le_bytes());
    for v in [1.0f32, -1.0, 0.0, 2.0] {
        good.extend_from_slice(&v.to_le_bytes());
    }
    assert!(validator.validate(&good).is_valid());
    assert_eq!(
        server.report_success(b.wu.id, HostId(1), t(20.0)),
        ReportStatus::Accepted
    );
    assert!(server.all_done());
    assert_eq!(server.metrics().invalid_results, 1);
    // The offending host lost reliability; the healthy one gained standing.
    assert!(server.hosts()[0].reliability < server.hosts()[1].reliability);
    // The penalty is booked as an *invalid*, never a timeout — the two
    // stay disjoint in both host stats and run metrics.
    assert_eq!(server.hosts()[0].invalids, 1);
    assert_eq!(server.hosts()[0].timeouts, 0);
    assert_eq!(server.metrics().timeouts, 0);
}

#[test]
fn total_host_loss_then_recovery() {
    // Every host dies mid-epoch; after replacements come up, the epoch
    // still completes.
    let mut server = BoincServer::new(
        MiddlewareConfig {
            timeout_s: 60.0,
            ..Default::default()
        },
        fleet(2, 2),
    );
    server.add_epoch(1, 4, 1, t(0.0));
    let mut assigned = Vec::new();
    for h in 0..2 {
        while let Some(a) = server.request_work(HostId(h), t(0.0)) {
            assigned.push(a);
        }
    }
    assert_eq!(assigned.len(), 4);
    server.preempt_host(HostId(0));
    server.preempt_host(HostId(1));
    // Nothing completes; deadlines pass.
    assert_eq!(server.scan_timeouts(t(61.0)).len(), 4);
    // Replacements arrive (revive also lifts the timeout backoff, so the
    // fresh instances can fetch immediately).
    server.revive_host(HostId(0), t(61.0));
    server.revive_host(HostId(1), t(61.0));
    let mut done = 0;
    for h in 0..2 {
        while let Some(a) = server.request_work(HostId(h), t(61.0)) {
            server.report_success(a.wu.id, HostId(h), t(100.0));
            done += 1;
        }
    }
    assert_eq!(done, 4);
    assert!(server.all_done());
}

#[test]
fn repeated_timeouts_count_attempts() {
    let mut server = BoincServer::new(
        MiddlewareConfig {
            timeout_s: 10.0,
            min_timeout_s: 10.0,
            // Isolate attempt accounting from fetch backoff.
            backoff_base_s: 0.0,
            ..Default::default()
        },
        fleet(1, 1),
    );
    let wu = server.add_workunit(1, 0, 1, t(0.0));
    let mut now = 0.0;
    for round in 1..=5u32 {
        let a = server.request_work(HostId(0), t(now)).unwrap();
        assert_eq!(a.attempt, round);
        // Each blown attempt grows the next adaptive deadline; follow the
        // one the scheduler actually granted.
        now = (a.deadline - SimTime::ZERO) + 1.0;
        assert_eq!(server.scan_timeouts(t(now)).len(), 1);
    }
    assert_eq!(server.attempts(wu), 5);
    assert_eq!(server.metrics().timeouts, 5);
    // Reliability collapsed to the probe slot but work continues.
    assert_eq!(server.hosts()[0].effective_slots(), 1);
    let a = server.request_work(HostId(0), t(now)).unwrap();
    server.report_success(a.wu.id, HostId(0), t(now + 1.0));
    assert!(server.all_done());
}

/// Regression for the preempt → revive → timeout interleaving: a
/// replacement instance registering before the dead incarnation's
/// deadlines pass must start with a clean slot ledger (no over-commit, no
/// underflow when the orphans expire) and must not eat the timeout
/// penalties for work it never held.
#[test]
fn revive_does_not_charge_the_replacement_for_stale_assignments() {
    let mut server = BoincServer::new(
        MiddlewareConfig {
            timeout_s: 60.0,
            ..Default::default()
        },
        fleet(2, 2),
    );
    server.add_epoch(1, 4, 1, t(0.0));
    let a = server.request_work(HostId(0), t(0.0)).unwrap();
    let b = server.request_work(HostId(0), t(0.0)).unwrap();
    server.preempt_host(HostId(0));
    // The replacement registers well before the stale deadlines pass.
    server.revive_host(HostId(0), t(5.0));
    // Fresh incarnation, fresh ledger: a full complement of new work and
    // not a subtask more.
    let c = server.request_work(HostId(0), t(5.0)).unwrap();
    let d = server.request_work(HostId(0), t(5.0)).unwrap();
    assert!(server.request_work(HostId(0), t(5.0)).is_none());
    assert!(c.wu.id != a.wu.id && d.wu.id != b.wu.id);
    // The stale deadlines fire: the lost work is still recovered through
    // the timeout path (§III-E)...
    let expired = server.scan_timeouts(t(61.0));
    assert!(expired.contains(&a.wu.id) && expired.contains(&b.wu.id));
    assert_eq!(server.metrics().timeouts, 2);
    // ...but the new incarnation is not blamed, and its own live work is
    // untouched by the orphan expiry.
    assert_eq!(server.hosts()[0].timeouts, 0);
    assert_eq!(server.hosts()[0].reliability, 1.0);
    assert!(!server.hosts()[0].in_backoff(t(61.0)));
    assert_eq!(server.hosts()[0].in_flight, 2);
    // The replacement finishes everything, including the recovered work.
    server.report_success(c.wu.id, HostId(0), t(62.0));
    server.report_success(d.wu.id, HostId(0), t(62.0));
    for _ in 0..2 {
        let e = server.request_work(HostId(0), t(62.0)).unwrap();
        server.report_success(e.wu.id, HostId(0), t(63.0));
    }
    assert!(server.all_done());
}
