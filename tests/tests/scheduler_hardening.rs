//! Byzantine-host DST sweeps for the hardened scheduler.
//!
//! Hostile volunteers are the reason BOINC runs redundant computing
//! (§II-C): a corrupted result that passes format validation can only be
//! caught by comparing independently computed replicas. These sweeps pin
//! the guarantee from both sides:
//!
//! - with `replication = 2, quorum = 2`, poisoned-but-finite uploads never
//!   win a quorum — zero byzantine results assimilated, and the model
//!   lands in the clean run's accuracy band;
//! - with `quorum = 1` (the control), the same fleet provably admits them;
//! - non-finite corruption is caught by the format validator alone, even
//!   at quorum 1.
//!
//! Every run is a pure function of its seed; failures name the seed for a
//! one-command local replay.

use vc_runtime::{run_scenario, sweep, ByzantineMode, Scenario};

/// A 6-host fleet where hosts 0 and 1 train honestly, then corrupt every
/// upload.
fn byz(seed: u64, replication: u32, quorum: u32, mode: ByzantineMode) -> Scenario {
    let mut sc = Scenario::new(seed)
        .cn(6)
        .epochs(2)
        .replication(replication)
        .quorum(quorum)
        .byzantine(vec![0, 1], mode);
    sc.cfg.job.val_eval_n = 60;
    sc
}

#[test]
fn quorum_two_keeps_poisoned_updates_out() {
    let outs = sweep(0..32, |s| byz(s, 2, 2, ByzantineMode::Poison));
    for (seed, out) in &outs {
        let r = &out.report;
        assert!(!r.halted_early, "seed {seed}: the fleet must finish");
        assert_eq!(r.epochs.len(), 2, "seed {seed}");
        assert!(
            r.server_metrics.quorum_disagreements > 0,
            "seed {seed}: byzantine votes must surface as quorum disagreements"
        );
        for h in [0usize, 1] {
            assert_eq!(
                r.hosts[h].completed, 0,
                "seed {seed}: a poisoned result from host {h} won a quorum"
            );
            assert!(
                r.hosts[h].invalids > 0,
                "seed {seed}: byzantine host {h} was never outvoted"
            );
        }
        assert!(
            r.final_mean_acc() > 0.15,
            "seed {seed}: model failed to learn (acc {})",
            r.final_mean_acc()
        );
    }
}

#[test]
fn byzantine_quorum_runs_stay_in_the_clean_accuracy_band() {
    for seed in 0..8 {
        let byz_out = run_scenario(&byz(seed, 2, 2, ByzantineMode::Poison)).unwrap();
        let mut clean = Scenario::new(seed).cn(6).epochs(2).replication(2).quorum(2);
        clean.cfg.job.val_eval_n = 60;
        let clean_out = run_scenario(&clean).unwrap();
        let (a, b) = (
            byz_out.report.final_mean_acc(),
            clean_out.report.final_mean_acc(),
        );
        assert!(
            (a - b).abs() < 0.2,
            "seed {seed}: byzantine-run acc {a} strays from clean acc {b}"
        );
    }
}

#[test]
fn quorum_one_control_admits_poisoned_updates() {
    // The same byzantine fleet with first-result-wins scheduling: finite
    // poison passes the format validator and goes straight into the model.
    // This is the behaviour the quorum exists to prevent.
    let outs = sweep(0..8, |s| byz(s, 1, 1, ByzantineMode::Poison));
    let poisoned: u64 = outs
        .iter()
        .map(|(_, o)| o.report.hosts[0].completed + o.report.hosts[1].completed)
        .sum();
    assert!(
        poisoned > 0,
        "quorum 1 should provably admit poisoned results; the byzantine sweep proves nothing if it does not"
    );
}

#[test]
fn format_validator_alone_stops_nonfinite_blobs() {
    let outs = sweep(0..8, |s| byz(s, 1, 1, ByzantineMode::NonFinite));
    for (seed, out) in &outs {
        let r = &out.report;
        assert!(!r.halted_early, "seed {seed}: honest hosts must finish");
        assert!(
            r.server_metrics.invalid_results > 0,
            "seed {seed}: NaN uploads must be rejected"
        );
        assert_eq!(
            r.hosts[0].completed + r.hosts[1].completed,
            0,
            "seed {seed}: a non-finite blob was accepted"
        );
        assert!(
            r.final_mean_acc() > 0.15,
            "seed {seed}: model failed to learn (acc {})",
            r.final_mean_acc()
        );
    }
}
