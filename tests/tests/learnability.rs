//! Calibration check: the synthetic CIFAR-like task is learnable by the
//! reference CNN to an accuracy plateau below 1.0.
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_data::SyntheticSpec;
use vc_nn::metrics::evaluate;
use vc_nn::spec::small_cnn;
use vc_optim::{train_minibatch, OptimizerSpec};

#[test]
fn small_cnn_learns_cifar_like() {
    let mut spec = SyntheticSpec::cifar_like(7);
    spec.train_n = 2000;
    let (train, val, _) = spec.generate();
    let mspec = small_cnn(&spec.img, spec.classes);
    let mut model = mspec.build(1);
    let mut opt = OptimizerSpec::paper_adam().build(model.param_count());
    let mut rng = StdRng::seed_from_u64(2);
    for e in 0..8 {
        let st = train_minibatch(
            &mut model,
            &mut opt,
            &train.images,
            &train.labels,
            32,
            1,
            5.0,
            &mut rng,
        );
        let (_, acc) = evaluate(&mut model, &val.images, &val.labels, 128);
        eprintln!("epoch {e}: loss {:.3} val acc {:.3}", st.mean_loss, acc);
    }
    let (_, acc) = evaluate(&mut model, &val.images, &val.labels, 128);
    assert!(acc > 0.55 && acc < 0.98, "val accuracy {acc}");
}
