//! `vc-integration` is a test-only crate: the cross-crate integration and
//! property tests live in `tests/tests/*.rs`. See DESIGN.md §7 for the
//! testing strategy.
