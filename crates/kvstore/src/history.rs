//! Operation histories and consistency checkers.
//!
//! A [`crate::VersionedStore`] built in recording mode logs every completed
//! operation — while still holding the per-key lock, so the log order *is*
//! the store's serialization order. The checkers here turn such a history
//! into a verdict:
//!
//! - [`check_sequential`] verifies the history admits a **sequential
//!   witness**: replayed in log order, every operation observed exactly the
//!   state the previous operation left behind. Strong-consistency runs must
//!   pass this — it is the linearizability condition for a single
//!   read-modify-write register whose operations are atomic at their
//!   log point.
//! - [`count_lost_updates`] independently recounts, from versions alone,
//!   how many concurrent updates eventual-mode writes clobbered. The result
//!   must match [`crate::StoreMetrics`]'s `lost_updates` counter *exactly* —
//!   the counter is an accounting claim, the history is the evidence.
//!
//! Histories are cheap (a few enum words per store call), so the
//! deterministic-simulation harness records them for every scenario and
//! asserts the matching checker on every seed it sweeps.

use serde::{Deserialize, Serialize};

/// One completed store operation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// A [`crate::VersionedStore::get`]: returned `version`.
    Get {
        /// Version the read observed.
        version: u64,
    },
    /// An unconditional [`crate::VersionedStore::put`] (seeding).
    Put {
        /// Version assigned to the written value.
        new_version: u64,
    },
    /// An eventual-mode [`crate::VersionedStore::put_versioned`].
    PutVersioned {
        /// The version the writer had read before computing its value.
        read_version: u64,
        /// Version assigned to the written value.
        new_version: u64,
        /// Intervening versions the store reported clobbered.
        clobbered: u64,
    },
    /// A strong-mode [`crate::VersionedStore::transact`].
    Transact {
        /// The version the transaction's closure was shown.
        read_version: u64,
        /// Version assigned to the written value.
        new_version: u64,
    },
}

/// One history entry: a key, a store-wide sequence number (assigned under
/// the key lock, so per-key sequence order equals serialization order), and
/// the operation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryEvent {
    /// Store-wide sequence number (log order).
    pub seq: u64,
    /// The key operated on.
    pub key: String,
    /// What happened.
    pub op: Op,
}

/// Verifies the history admits a sequential witness in log order: every
/// operation on a key observed exactly the version the previous write to
/// that key installed, versions are contiguous from 1, and nothing was
/// clobbered. This must hold for every strong-consistency run — a failure
/// means an update was applied against a stale snapshot, i.e. at least one
/// assimilation was lost.
pub fn check_sequential(events: &[HistoryEvent]) -> Result<(), String> {
    // Current version per key, replayed in log order.
    let mut current: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for e in events {
        let cur = current.entry(e.key.as_str()).or_insert(0);
        match &e.op {
            Op::Get { version } => {
                if *version != *cur {
                    return Err(format!(
                        "seq {}: get of {:?} observed version {} but the witness state is {}",
                        e.seq, e.key, version, cur
                    ));
                }
            }
            Op::Put { new_version } => {
                if *new_version != *cur + 1 {
                    return Err(format!(
                        "seq {}: put on {:?} installed version {} over witness state {}",
                        e.seq, e.key, new_version, cur
                    ));
                }
                *cur = *new_version;
            }
            Op::PutVersioned {
                read_version,
                new_version,
                clobbered,
            } => {
                if *clobbered > 0 {
                    return Err(format!(
                        "seq {}: write on {:?} clobbered {} concurrent update(s)",
                        e.seq, e.key, clobbered
                    ));
                }
                if *read_version != *cur {
                    return Err(format!(
                        "seq {}: write on {:?} was computed from version {} but the \
                         witness state is {}",
                        e.seq, e.key, read_version, cur
                    ));
                }
                if *new_version != *cur + 1 {
                    return Err(format!(
                        "seq {}: write on {:?} installed non-contiguous version {} after {}",
                        e.seq, e.key, new_version, cur
                    ));
                }
                *cur = *new_version;
            }
            Op::Transact {
                read_version,
                new_version,
            } => {
                if *read_version != *cur || *new_version != *cur + 1 {
                    return Err(format!(
                        "seq {}: transaction on {:?} read {} / wrote {} against witness state {}",
                        e.seq, e.key, read_version, new_version, cur
                    ));
                }
                *cur = *new_version;
            }
        }
    }
    Ok(())
}

/// Independently recounts lost updates from the recorded versions: a write
/// computed from `read_version` that lands when the key is already at
/// version `v > read_version` overwrote `v - read_version` updates it never
/// saw. Deliberately ignores the `clobbered` field the store reported — the
/// caller cross-checks this recount against [`crate::StoreMetrics`].
pub fn count_lost_updates(events: &[HistoryEvent]) -> u64 {
    let mut current: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    let mut lost = 0u64;
    for e in events {
        let cur = current.entry(e.key.as_str()).or_insert(0);
        match &e.op {
            Op::Get { .. } => {}
            Op::Put { new_version } => *cur = *new_version,
            Op::PutVersioned {
                read_version,
                new_version,
                ..
            } => {
                lost += cur.saturating_sub(*read_version);
                *cur = *new_version;
            }
            Op::Transact { new_version, .. } => *cur = *new_version,
        }
    }
    lost
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, op: Op) -> HistoryEvent {
        HistoryEvent {
            seq,
            key: "k".into(),
            op,
        }
    }

    #[test]
    fn clean_sequential_history_passes() {
        let h = vec![
            ev(0, Op::Put { new_version: 1 }),
            ev(1, Op::Get { version: 1 }),
            ev(
                2,
                Op::Transact {
                    read_version: 1,
                    new_version: 2,
                },
            ),
            ev(
                3,
                Op::PutVersioned {
                    read_version: 2,
                    new_version: 3,
                    clobbered: 0,
                },
            ),
        ];
        check_sequential(&h).unwrap();
        assert_eq!(count_lost_updates(&h), 0);
    }

    #[test]
    fn stale_write_fails_the_witness_and_is_counted() {
        // Two writers both read version 1; the second to land clobbers.
        let h = vec![
            ev(0, Op::Put { new_version: 1 }),
            ev(
                1,
                Op::PutVersioned {
                    read_version: 1,
                    new_version: 2,
                    clobbered: 0,
                },
            ),
            ev(
                2,
                Op::PutVersioned {
                    read_version: 1,
                    new_version: 3,
                    clobbered: 1,
                },
            ),
        ];
        let err = check_sequential(&h).unwrap_err();
        assert!(err.contains("clobbered"), "got: {err}");
        assert_eq!(count_lost_updates(&h), 1);
    }

    #[test]
    fn recount_is_independent_of_the_recorded_clobber_field() {
        // A store that under-reported (clobbered: 0 despite the stale read)
        // is caught because the recount works from versions alone.
        let h = vec![
            ev(0, Op::Put { new_version: 1 }),
            ev(
                1,
                Op::PutVersioned {
                    read_version: 1,
                    new_version: 2,
                    clobbered: 0,
                },
            ),
            ev(
                2,
                Op::PutVersioned {
                    read_version: 1,
                    new_version: 3,
                    clobbered: 0, // a lying store
                },
            ),
        ];
        assert_eq!(count_lost_updates(&h), 1);
    }

    #[test]
    fn stale_read_fails_the_witness() {
        let h = vec![
            ev(0, Op::Put { new_version: 1 }),
            ev(1, Op::Put { new_version: 2 }),
            ev(2, Op::Get { version: 1 }),
        ];
        let err = check_sequential(&h).unwrap_err();
        assert!(err.contains("observed version 1"), "got: {err}");
    }

    #[test]
    fn keys_are_checked_independently() {
        let h = vec![
            HistoryEvent {
                seq: 0,
                key: "a".into(),
                op: Op::Put { new_version: 1 },
            },
            HistoryEvent {
                seq: 1,
                key: "b".into(),
                op: Op::Put { new_version: 1 },
            },
            HistoryEvent {
                seq: 2,
                key: "a".into(),
                op: Op::Transact {
                    read_version: 1,
                    new_version: 2,
                },
            },
        ];
        check_sequential(&h).unwrap();
    }
}
