//! Shard layout: how one flat parameter vector maps onto `P` store keys.
//!
//! The paper's coordinator keeps "all the parameters of a model as a single
//! value" — one key, one version counter, one lock. A [`ShardLayout`]
//! splits the same flat vector into `P` contiguous, near-equal ranges so
//! each shard can live under its own key with its own version counter and
//! its own per-key lock in [`crate::VersionedStore`]. Because the VC-ASGD
//! blend (Eq. (1)) is elementwise, merging shard-by-shard over disjoint
//! ranges is bitwise-identical to merging the whole vector at once — the
//! layout changes contention and transfer granularity, never the math.

/// A contiguous partition of `param_count` values into `shards` ranges.
///
/// Ranges differ in length by at most one: the first `param_count % shards`
/// shards get the extra element. A layout over zero parameters still has
/// `shards` (empty) ranges so version manifests keep a stable shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardLayout {
    param_count: usize,
    shards: usize,
}

impl ShardLayout {
    /// Builds a layout. `shards` is clamped to at least 1; requesting more
    /// shards than parameters leaves the surplus shards empty rather than
    /// failing, so config validation can stay coarse.
    pub fn new(param_count: usize, shards: usize) -> Self {
        ShardLayout {
            param_count,
            shards: shards.max(1),
        }
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The half-open index range shard `i` owns.
    ///
    /// # Panics
    /// When `i >= self.shards()`.
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        assert!(i < self.shards, "shard {i} out of {}", self.shards);
        let base = self.param_count / self.shards;
        let extra = self.param_count % self.shards;
        // Shards [0, extra) are one longer.
        let start = i * base + i.min(extra);
        let len = base + usize::from(i < extra);
        start..start + len
    }

    /// Length of shard `i`.
    pub fn len(&self, i: usize) -> usize {
        self.range(i).len()
    }

    /// True when the layout covers zero parameters.
    pub fn is_empty(&self) -> bool {
        self.param_count == 0
    }

    /// The shard owning flat index `idx` (`None` past the end).
    pub fn shard_of(&self, idx: usize) -> Option<usize> {
        if idx >= self.param_count {
            return None;
        }
        let base = self.param_count / self.shards;
        let extra = self.param_count % self.shards;
        let wide = extra * (base + 1); // indices covered by the longer shards
        Some(if idx < wide {
            idx / (base + 1)
        } else {
            extra + (idx - wide) / base.max(1)
        })
    }

    /// Iterates `(shard_id, range)` over all shards.
    pub fn iter(&self) -> impl Iterator<Item = (usize, std::ops::Range<usize>)> + '_ {
        (0..self.shards).map(|i| (i, self.range(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_the_vector_exactly() {
        for n in [0usize, 1, 7, 64, 1000, 4_973] {
            for p in [1usize, 2, 3, 4, 16, 64] {
                let l = ShardLayout::new(n, p);
                let mut next = 0;
                for (i, r) in l.iter() {
                    assert_eq!(r.start, next, "n={n} p={p} shard {i}");
                    next = r.end;
                    assert_eq!(l.len(i), r.len());
                }
                assert_eq!(next, n, "ranges must cover exactly n={n} at p={p}");
            }
        }
    }

    #[test]
    fn ranges_are_near_equal() {
        let l = ShardLayout::new(10, 4);
        let lens: Vec<usize> = (0..4).map(|i| l.len(i)).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    #[test]
    fn single_shard_owns_everything() {
        let l = ShardLayout::new(123, 1);
        assert_eq!(l.range(0), 0..123);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let l = ShardLayout::new(5, 0);
        assert_eq!(l.shards(), 1);
        assert_eq!(l.range(0), 0..5);
    }

    #[test]
    fn more_shards_than_params_leaves_empties() {
        let l = ShardLayout::new(2, 4);
        assert_eq!(l.range(0), 0..1);
        assert_eq!(l.range(1), 1..2);
        assert_eq!(l.range(2), 2..2);
        assert_eq!(l.range(3), 2..2);
    }

    #[test]
    fn shard_of_inverts_range() {
        for (n, p) in [(10usize, 4usize), (64, 16), (5, 2), (4_973, 16)] {
            let l = ShardLayout::new(n, p);
            for (i, r) in l.iter() {
                for idx in r {
                    assert_eq!(l.shard_of(idx), Some(i), "n={n} p={p} idx={idx}");
                }
            }
            assert_eq!(l.shard_of(n), None);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_shard_panics() {
        ShardLayout::new(10, 2).range(2);
    }
}
