//! The versioned blob store.

use crate::history::{HistoryEvent, Op};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Consistency mode for parameter updates, selecting which access pattern
/// the parameter servers use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Consistency {
    /// Serialized read-modify-write transactions (the MySQL analog).
    Strong,
    /// Independent read then last-write-wins put (the Redis analog).
    Eventual,
}

impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Consistency::Strong => write!(f, "strong"),
            Consistency::Eventual => write!(f, "eventual"),
        }
    }
}

/// Operation counters, cheap enough to keep always-on.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    /// Completed reads.
    pub reads: AtomicU64,
    /// Completed writes (both paths).
    pub writes: AtomicU64,
    /// Serialized transactions executed.
    pub transactions: AtomicU64,
    /// Writes that overwrote versions the writer never saw — each one means
    /// at least one concurrent update was lost (eventual mode only).
    pub lost_updates: AtomicU64,
}

impl StoreMetrics {
    /// Snapshot of `(reads, writes, transactions, lost_updates)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
            self.transactions.load(Ordering::Relaxed),
            self.lost_updates.load(Ordering::Relaxed),
        )
    }
}

/// Outcome of an eventual-mode write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The version assigned to the written value.
    pub new_version: u64,
    /// Number of intervening versions this write clobbered (0 when the
    /// writer saw the latest value).
    pub clobbered: u64,
}

struct Entry {
    value: Bytes,
    version: u64,
}

#[derive(Default)]
struct HistoryLog {
    seq: u64,
    events: Vec<HistoryEvent>,
}

/// A thread-safe, versioned, in-memory blob store.
///
/// One instance stands for the shared database backing all parameter
/// servers. Keys are model identifiers; values are encoded parameter blobs
/// (the paper stores "all the parameters of a model as a single value").
///
/// A store built with [`VersionedStore::recording`] additionally logs every
/// completed operation as a [`HistoryEvent`] — while still holding the
/// per-key lock, so per-key log order equals serialization order. The
/// checkers in [`crate::history`] consume these logs.
pub struct VersionedStore {
    map: RwLock<HashMap<String, Arc<Mutex<Entry>>>>,
    metrics: StoreMetrics,
    history: Option<Mutex<HistoryLog>>,
}

impl VersionedStore {
    /// An empty store.
    pub fn new() -> Self {
        VersionedStore {
            map: RwLock::new(HashMap::new()),
            metrics: StoreMetrics::default(),
            history: None,
        }
    }

    /// An empty store that records an operation history for the
    /// [`crate::history`] checkers.
    pub fn recording() -> Self {
        VersionedStore {
            history: Some(Mutex::new(HistoryLog::default())),
            ..Self::new()
        }
    }

    /// An empty store behind an [`Arc`], ready to hand to many threads —
    /// the shape every multi-writer user (parameter-server pools, the
    /// `vc-runtime` assimilator threads) wants. The store is fully
    /// `Sync`: all interior state is lock-protected per key.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// [`VersionedStore::recording`] behind an [`Arc`].
    pub fn shared_recording() -> Arc<Self> {
        Arc::new(Self::recording())
    }

    /// True when this store logs an operation history.
    pub fn is_recording(&self) -> bool {
        self.history.is_some()
    }

    /// Drains and returns the recorded history (empty for non-recording
    /// stores). Log order is the store's serialization order per key.
    pub fn take_history(&self) -> Vec<HistoryEvent> {
        match &self.history {
            Some(h) => std::mem::take(&mut h.lock().events),
            None => Vec::new(),
        }
    }

    /// Appends one event to the history log (no-op when not recording).
    /// Callers invoke this while still holding the key's entry lock, which
    /// makes the log a serialization witness.
    fn record(&self, key: &str, op: Op) {
        if let Some(h) = &self.history {
            let mut g = h.lock();
            let seq = g.seq;
            g.seq += 1;
            g.events.push(HistoryEvent {
                seq,
                key: key.to_string(),
                op,
            });
        }
    }

    fn entry(&self, key: &str) -> Arc<Mutex<Entry>> {
        if let Some(e) = self.map.read().get(key) {
            return e.clone();
        }
        let mut w = self.map.write();
        w.entry(key.to_string())
            .or_insert_with(|| {
                Arc::new(Mutex::new(Entry {
                    value: Bytes::new(),
                    version: 0,
                }))
            })
            .clone()
    }

    /// Reads the current value and its version. Version 0 with an empty
    /// value means "never written".
    pub fn get(&self, key: &str) -> (Bytes, u64) {
        self.metrics.reads.fetch_add(1, Ordering::Relaxed);
        let e = self.entry(key);
        let g = e.lock();
        self.record(key, Op::Get { version: g.version });
        (g.value.clone(), g.version)
    }

    /// Unconditional write; returns the new version. Used for initial
    /// seeding of the parameter blob.
    pub fn put(&self, key: &str, value: Bytes) -> u64 {
        self.metrics.writes.fetch_add(1, Ordering::Relaxed);
        let e = self.entry(key);
        let mut g = e.lock();
        g.version += 1;
        g.value = value;
        self.record(
            key,
            Op::Put {
                new_version: g.version,
            },
        );
        g.version
    }

    /// Eventual-consistency write: last-write-wins, recording how many
    /// versions written after `read_version` are being overwritten. This is
    /// the Redis path — the store never blocks the writer, it just loses
    /// the concurrent updates.
    pub fn put_versioned(&self, key: &str, read_version: u64, value: Bytes) -> WriteOutcome {
        self.metrics.writes.fetch_add(1, Ordering::Relaxed);
        let e = self.entry(key);
        let mut g = e.lock();
        let clobbered = g.version.saturating_sub(read_version);
        if clobbered > 0 {
            self.metrics
                .lost_updates
                .fetch_add(clobbered, Ordering::Relaxed);
        }
        g.version += 1;
        g.value = value;
        self.record(
            key,
            Op::PutVersioned {
                read_version,
                new_version: g.version,
                clobbered,
            },
        );
        WriteOutcome {
            new_version: g.version,
            clobbered,
        }
    }

    /// Strong-consistency transaction: runs `f` on the current value under
    /// the key lock and installs its result atomically. No concurrent
    /// transaction on the same key can interleave — the MySQL path.
    pub fn transact<T>(&self, key: &str, f: impl FnOnce(&Bytes, u64) -> (Bytes, T)) -> (u64, T) {
        self.metrics.transactions.fetch_add(1, Ordering::Relaxed);
        self.metrics.writes.fetch_add(1, Ordering::Relaxed);
        let e = self.entry(key);
        let mut g = e.lock();
        let read_version = g.version;
        let (new_value, out) = f(&g.value, g.version);
        g.version += 1;
        g.value = new_value;
        self.record(
            key,
            Op::Transact {
                read_version,
                new_version: g.version,
            },
        );
        (g.version, out)
    }

    /// Current version of a key (0 when absent).
    pub fn version(&self, key: &str) -> u64 {
        if let Some(e) = self.map.read().get(key) {
            e.lock().version
        } else {
            0
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when no key has been touched.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Metric counters.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }
}

impl Default for VersionedStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_of_missing_key_is_empty_v0() {
        let s = VersionedStore::new();
        let (v, ver) = s.get("w");
        assert!(v.is_empty());
        assert_eq!(ver, 0);
    }

    #[test]
    fn put_bumps_version() {
        let s = VersionedStore::new();
        assert_eq!(s.put("w", Bytes::from_static(b"a")), 1);
        assert_eq!(s.put("w", Bytes::from_static(b"b")), 2);
        let (v, ver) = s.get("w");
        assert_eq!(&v[..], b"b");
        assert_eq!(ver, 2);
    }

    #[test]
    fn versioned_write_detects_clobber() {
        let s = VersionedStore::new();
        s.put("w", Bytes::from_static(b"base")); // v1
        let (_, v_seen) = s.get("w");
        // A concurrent writer lands first.
        s.put("w", Bytes::from_static(b"other")); // v2
        let out = s.put_versioned("w", v_seen, Bytes::from_static(b"mine"));
        assert_eq!(out.clobbered, 1);
        assert_eq!(out.new_version, 3);
        let (v, _) = s.get("w");
        assert_eq!(&v[..], b"mine"); // last write wins
        assert_eq!(s.metrics().snapshot().3, 1);
    }

    #[test]
    fn versioned_write_clean_when_current() {
        let s = VersionedStore::new();
        s.put("w", Bytes::from_static(b"base"));
        let (_, v) = s.get("w");
        let out = s.put_versioned("w", v, Bytes::from_static(b"next"));
        assert_eq!(out.clobbered, 0);
        assert_eq!(s.metrics().snapshot().3, 0);
    }

    #[test]
    fn transact_reads_latest_and_installs() {
        let s = VersionedStore::new();
        s.put("w", Bytes::from(vec![5u8]));
        let (ver, old_len) = s.transact("w", |cur, _v| {
            let mut next = cur.to_vec();
            next.push(6);
            (Bytes::from(next), cur.len())
        });
        assert_eq!(ver, 2);
        assert_eq!(old_len, 1);
        assert_eq!(&s.get("w").0[..], &[5, 6]);
    }

    #[test]
    fn strong_transactions_never_lose_updates() {
        // 8 threads × 100 increments on a counter blob must total 800.
        let s = Arc::new(VersionedStore::new());
        s.put("ctr", Bytes::from(0u64.to_le_bytes().to_vec()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    s.transact("ctr", |cur, _| {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(cur);
                        let n = u64::from_le_bytes(b) + 1;
                        (Bytes::from(n.to_le_bytes().to_vec()), ())
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&s.get("ctr").0);
        assert_eq!(u64::from_le_bytes(b), 800);
        assert_eq!(s.metrics().snapshot().3, 0, "no lost updates");
    }

    #[test]
    fn eventual_rmw_loses_updates_under_contention() {
        // The same workload through the read-then-put path must lose
        // updates: the defining behaviour difference of §IV-D.
        let s = Arc::new(VersionedStore::new());
        s.put("ctr", Bytes::from(0u64.to_le_bytes().to_vec()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let (cur, ver) = s.get("ctr");
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&cur);
                    let n = u64::from_le_bytes(b) + 1;
                    // Widen the read→write window so interleaving is certain
                    // even on a single core.
                    std::thread::yield_now();
                    s.put_versioned("ctr", ver, Bytes::from(n.to_le_bytes().to_vec()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&s.get("ctr").0);
        let final_n = u64::from_le_bytes(b);
        let lost = s.metrics().snapshot().3;
        assert!(final_n <= 1600);
        // Every increment missing from the counter sat inside at least one
        // writer's read→write gap, so the clobber metric bounds the deficit.
        assert!(
            1600 - final_n <= lost,
            "deficit {} exceeds clobber metric {lost}",
            1600 - final_n
        );
        assert!(lost > 0, "contention produced no lost updates");
    }

    #[test]
    fn recorded_strong_history_admits_a_sequential_witness() {
        let s = Arc::new(VersionedStore::recording());
        s.put("w", Bytes::from(0u64.to_le_bytes().to_vec()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    s.transact("w", |cur, _| {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(cur);
                        (
                            Bytes::from((u64::from_le_bytes(b) + 1).to_le_bytes().to_vec()),
                            (),
                        )
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let history = s.take_history();
        assert_eq!(history.len(), 201, "put + 200 transactions");
        crate::history::check_sequential(&history).unwrap();
        assert_eq!(crate::history::count_lost_updates(&history), 0);
    }

    #[test]
    fn recorded_eventual_history_recounts_the_lost_update_metric() {
        let s = VersionedStore::recording();
        s.put("w", Bytes::from_static(b"base")); // v1
        let (_, v) = s.get("w");
        s.put("w", Bytes::from_static(b"other")); // v2: concurrent writer
        s.put_versioned("w", v, Bytes::from_static(b"mine")); // clobbers 1
        let history = s.take_history();
        assert_eq!(
            crate::history::count_lost_updates(&history),
            s.metrics().snapshot().3,
            "history recount must equal the metric"
        );
        assert!(crate::history::check_sequential(&history).is_err());
    }

    #[test]
    fn non_recording_store_has_no_history() {
        let s = VersionedStore::new();
        assert!(!s.is_recording());
        s.put("w", Bytes::from_static(b"x"));
        assert!(s.take_history().is_empty());
    }

    #[test]
    fn keys_are_independent() {
        let s = VersionedStore::new();
        s.put("a", Bytes::from_static(b"1"));
        s.put("b", Bytes::from_static(b"2"));
        assert_eq!(s.version("a"), 1);
        assert_eq!(s.version("b"), 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn metrics_count_operations() {
        let s = VersionedStore::new();
        s.put("k", Bytes::new());
        s.get("k");
        s.get("k");
        s.transact("k", |c, _| (c.clone(), ()));
        let (r, w, t, _) = s.metrics().snapshot();
        assert_eq!(r, 2);
        assert_eq!(w, 2); // put + transact
        assert_eq!(t, 1);
    }
}
