//! The versioned blob store.

use crate::history::{HistoryEvent, Op};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vc_telemetry::{Histogram, Level, Telemetry};

/// Histogram name: `get` latency in seconds.
pub const STORE_READ_S: &str = "store_read_s";
/// Histogram name: `put` / `put_versioned` latency in seconds.
pub const STORE_WRITE_S: &str = "store_write_s";
/// Histogram name: `transact` latency in seconds.
pub const STORE_TRANSACT_S: &str = "store_transact_s";
/// Histogram name: write staleness in versions
/// (`server_version − read_version`, observed on every `put_versioned`).
pub const STORE_STALENESS_VERSIONS: &str = "store_staleness_versions";

/// Consistency mode for parameter updates, selecting which access pattern
/// the parameter servers use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Consistency {
    /// Serialized read-modify-write transactions (the MySQL analog).
    Strong,
    /// Independent read then last-write-wins put (the Redis analog).
    Eventual,
}

impl std::fmt::Display for Consistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Consistency::Strong => write!(f, "strong"),
            Consistency::Eventual => write!(f, "eventual"),
        }
    }
}

/// Operation counters, cheap enough to keep always-on.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    /// Completed reads.
    pub reads: AtomicU64,
    /// Completed writes (both paths).
    pub writes: AtomicU64,
    /// Serialized transactions executed.
    pub transactions: AtomicU64,
    /// Writes that overwrote versions the writer never saw — each one means
    /// at least one concurrent update was lost (eventual mode only).
    pub lost_updates: AtomicU64,
}

impl StoreMetrics {
    /// Point-in-time copy of the counters as a named struct.
    pub fn snapshot(&self) -> StoreOps {
        StoreOps {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            transactions: self.transactions.load(Ordering::Relaxed),
            lost_updates: self.lost_updates.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of [`StoreMetrics`]. Previously an anonymous
/// `(u64, u64, u64, u64)` whose positional order call sites silently
/// relied on; the fields now carry their names through reports and JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StoreOps {
    /// Completed reads.
    pub reads: u64,
    /// Completed writes (both paths; transactions count as writes too).
    pub writes: u64,
    /// Serialized transactions executed.
    pub transactions: u64,
    /// Updates overwritten unseen (eventual mode only).
    pub lost_updates: u64,
}

/// Outcome of an eventual-mode write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The version assigned to the written value.
    pub new_version: u64,
    /// Number of intervening versions this write clobbered (0 when the
    /// writer saw the latest value).
    pub clobbered: u64,
}

struct Entry {
    value: Bytes,
    version: u64,
}

#[derive(Default)]
struct HistoryLog {
    seq: u64,
    events: Vec<HistoryEvent>,
}

/// Cached telemetry handles: one registry lookup at construction, two
/// atomic adds per instrumented operation afterwards. Latencies are
/// measured through the telemetry `TimeSource`, so under the DST virtual
/// clock every span is zero-length and recorder output stays
/// deterministic.
struct Instruments {
    tel: Telemetry,
    read_s: Arc<Histogram>,
    write_s: Arc<Histogram>,
    transact_s: Arc<Histogram>,
    staleness: Arc<Histogram>,
}

impl Instruments {
    fn new(tel: &Telemetry) -> Self {
        let reg = tel.registry();
        Instruments {
            tel: tel.clone(),
            read_s: reg.histogram(STORE_READ_S),
            write_s: reg.histogram(STORE_WRITE_S),
            transact_s: reg.histogram(STORE_TRANSACT_S),
            staleness: reg.histogram_with(STORE_STALENESS_VERSIONS, Histogram::version_bounds),
        }
    }
}

/// A thread-safe, versioned, in-memory blob store.
///
/// One instance stands for the shared database backing all parameter
/// servers. Keys are model identifiers; values are encoded parameter blobs
/// (the paper stores "all the parameters of a model as a single value").
///
/// A store built with [`VersionedStore::recording`] additionally logs every
/// completed operation as a [`HistoryEvent`] — while still holding the
/// per-key lock, so per-key log order equals serialization order. The
/// checkers in [`crate::history`] consume these logs.
pub struct VersionedStore {
    map: RwLock<HashMap<String, Arc<Mutex<Entry>>>>,
    metrics: StoreMetrics,
    history: Option<Mutex<HistoryLog>>,
    instruments: Option<Instruments>,
}

impl VersionedStore {
    /// An empty store.
    pub fn new() -> Self {
        VersionedStore {
            map: RwLock::new(HashMap::new()),
            metrics: StoreMetrics::default(),
            history: None,
            instruments: None,
        }
    }

    /// Attaches a telemetry handle: operation latencies flow into the
    /// `store_*_s` histograms, write staleness into
    /// [`STORE_STALENESS_VERSIONS`], and every clobbering write emits a
    /// `lost_update` event.
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.instruments = Some(Instruments::new(tel));
        self
    }

    /// An empty store that records an operation history for the
    /// [`crate::history`] checkers.
    pub fn recording() -> Self {
        VersionedStore {
            history: Some(Mutex::new(HistoryLog::default())),
            ..Self::new()
        }
    }

    /// An empty store behind an [`Arc`], ready to hand to many threads —
    /// the shape every multi-writer user (parameter-server pools, the
    /// `vc-runtime` assimilator threads) wants. The store is fully
    /// `Sync`: all interior state is lock-protected per key.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// [`VersionedStore::recording`] behind an [`Arc`].
    pub fn shared_recording() -> Arc<Self> {
        Arc::new(Self::recording())
    }

    /// True when this store logs an operation history.
    pub fn is_recording(&self) -> bool {
        self.history.is_some()
    }

    /// Drains and returns the recorded history (empty for non-recording
    /// stores). Log order is the store's serialization order per key.
    pub fn take_history(&self) -> Vec<HistoryEvent> {
        match &self.history {
            Some(h) => std::mem::take(&mut h.lock().events),
            None => Vec::new(),
        }
    }

    /// Appends one event to the history log (no-op when not recording).
    /// Callers invoke this while still holding the key's entry lock, which
    /// makes the log a serialization witness.
    fn record(&self, key: &str, op: Op) {
        if let Some(h) = &self.history {
            let mut g = h.lock();
            let seq = g.seq;
            g.seq += 1;
            g.events.push(HistoryEvent {
                seq,
                key: key.to_string(),
                op,
            });
        }
    }

    fn entry(&self, key: &str) -> Arc<Mutex<Entry>> {
        if let Some(e) = self.map.read().get(key) {
            return e.clone();
        }
        let mut w = self.map.write();
        w.entry(key.to_string())
            .or_insert_with(|| {
                Arc::new(Mutex::new(Entry {
                    value: Bytes::new(),
                    version: 0,
                }))
            })
            .clone()
    }

    /// Reads the current value and its version. Version 0 with an empty
    /// value means "never written".
    ///
    /// The returned [`Bytes`] shares the stored allocation — the hot fetch
    /// path hands out a reference-counted view, never a copy of the blob,
    /// no matter how large the parameter vector is. (Writers install fresh
    /// buffers, so a held read view is never mutated underneath.)
    pub fn get(&self, key: &str) -> (Bytes, u64) {
        let t0 = self.instruments.as_ref().map(|i| i.tel.now_s());
        self.metrics.reads.fetch_add(1, Ordering::Relaxed);
        let e = self.entry(key);
        let g = e.lock();
        self.record(key, Op::Get { version: g.version });
        let out = (g.value.clone(), g.version);
        drop(g);
        if let (Some(ins), Some(t0)) = (&self.instruments, t0) {
            ins.read_s.observe(ins.tel.now_s() - t0);
        }
        out
    }

    /// Unconditional write; returns the new version. Used for initial
    /// seeding of the parameter blob.
    pub fn put(&self, key: &str, value: Bytes) -> u64 {
        let t0 = self.instruments.as_ref().map(|i| i.tel.now_s());
        self.metrics.writes.fetch_add(1, Ordering::Relaxed);
        let e = self.entry(key);
        let mut g = e.lock();
        g.version += 1;
        g.value = value;
        self.record(
            key,
            Op::Put {
                new_version: g.version,
            },
        );
        let ver = g.version;
        drop(g);
        if let (Some(ins), Some(t0)) = (&self.instruments, t0) {
            ins.write_s.observe(ins.tel.now_s() - t0);
        }
        ver
    }

    /// Eventual-consistency write: last-write-wins, recording how many
    /// versions written after `read_version` are being overwritten. This is
    /// the Redis path — the store never blocks the writer, it just loses
    /// the concurrent updates.
    pub fn put_versioned(&self, key: &str, read_version: u64, value: Bytes) -> WriteOutcome {
        let t0 = self.instruments.as_ref().map(|i| i.tel.now_s());
        self.metrics.writes.fetch_add(1, Ordering::Relaxed);
        let e = self.entry(key);
        let mut g = e.lock();
        let clobbered = g.version.saturating_sub(read_version);
        if clobbered > 0 {
            self.metrics
                .lost_updates
                .fetch_add(clobbered, Ordering::Relaxed);
        }
        g.version += 1;
        g.value = value;
        self.record(
            key,
            Op::PutVersioned {
                read_version,
                new_version: g.version,
                clobbered,
            },
        );
        let out = WriteOutcome {
            new_version: g.version,
            clobbered,
        };
        drop(g);
        if let (Some(ins), Some(t0)) = (&self.instruments, t0) {
            ins.write_s.observe(ins.tel.now_s() - t0);
            ins.staleness.observe(clobbered as f64);
            if clobbered > 0 {
                ins.tel.event(
                    Level::Debug,
                    "lost_update",
                    vec![
                        ("key", key.into()),
                        ("clobbered", clobbered.into()),
                        ("new_version", out.new_version.into()),
                    ],
                );
            }
        }
        out
    }

    /// Strong-consistency transaction: runs `f` on the current value under
    /// the key lock and installs its result atomically. No concurrent
    /// transaction on the same key can interleave — the MySQL path.
    pub fn transact<T>(&self, key: &str, f: impl FnOnce(&Bytes, u64) -> (Bytes, T)) -> (u64, T) {
        let t0 = self.instruments.as_ref().map(|i| i.tel.now_s());
        self.metrics.transactions.fetch_add(1, Ordering::Relaxed);
        self.metrics.writes.fetch_add(1, Ordering::Relaxed);
        let e = self.entry(key);
        let mut g = e.lock();
        let read_version = g.version;
        let (new_value, out) = f(&g.value, g.version);
        g.version += 1;
        g.value = new_value;
        self.record(
            key,
            Op::Transact {
                read_version,
                new_version: g.version,
            },
        );
        let ver = g.version;
        drop(g);
        if let (Some(ins), Some(t0)) = (&self.instruments, t0) {
            ins.transact_s.observe(ins.tel.now_s() - t0);
        }
        (ver, out)
    }

    /// Current version of a key (0 when absent).
    pub fn version(&self, key: &str) -> u64 {
        if let Some(e) = self.map.read().get(key) {
            e.lock().version
        } else {
            0
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when no key has been touched.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Metric counters.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }
}

impl Default for VersionedStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_of_missing_key_is_empty_v0() {
        let s = VersionedStore::new();
        let (v, ver) = s.get("w");
        assert!(v.is_empty());
        assert_eq!(ver, 0);
    }

    #[test]
    fn put_bumps_version() {
        let s = VersionedStore::new();
        assert_eq!(s.put("w", Bytes::from_static(b"a")), 1);
        assert_eq!(s.put("w", Bytes::from_static(b"b")), 2);
        let (v, ver) = s.get("w");
        assert_eq!(&v[..], b"b");
        assert_eq!(ver, 2);
    }

    #[test]
    fn versioned_write_detects_clobber() {
        let s = VersionedStore::new();
        s.put("w", Bytes::from_static(b"base")); // v1
        let (_, v_seen) = s.get("w");
        // A concurrent writer lands first.
        s.put("w", Bytes::from_static(b"other")); // v2
        let out = s.put_versioned("w", v_seen, Bytes::from_static(b"mine"));
        assert_eq!(out.clobbered, 1);
        assert_eq!(out.new_version, 3);
        let (v, _) = s.get("w");
        assert_eq!(&v[..], b"mine"); // last write wins
        assert_eq!(s.metrics().snapshot().lost_updates, 1);
    }

    #[test]
    fn versioned_write_clean_when_current() {
        let s = VersionedStore::new();
        s.put("w", Bytes::from_static(b"base"));
        let (_, v) = s.get("w");
        let out = s.put_versioned("w", v, Bytes::from_static(b"next"));
        assert_eq!(out.clobbered, 0);
        assert_eq!(s.metrics().snapshot().lost_updates, 0);
    }

    #[test]
    fn transact_reads_latest_and_installs() {
        let s = VersionedStore::new();
        s.put("w", Bytes::from(vec![5u8]));
        let (ver, old_len) = s.transact("w", |cur, _v| {
            let mut next = cur.to_vec();
            next.push(6);
            (Bytes::from(next), cur.len())
        });
        assert_eq!(ver, 2);
        assert_eq!(old_len, 1);
        assert_eq!(&s.get("w").0[..], &[5, 6]);
    }

    #[test]
    fn strong_transactions_never_lose_updates() {
        // 8 threads × 100 increments on a counter blob must total 800.
        let s = Arc::new(VersionedStore::new());
        s.put("ctr", Bytes::from(0u64.to_le_bytes().to_vec()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    s.transact("ctr", |cur, _| {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(cur);
                        let n = u64::from_le_bytes(b) + 1;
                        (Bytes::from(n.to_le_bytes().to_vec()), ())
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&s.get("ctr").0);
        assert_eq!(u64::from_le_bytes(b), 800);
        assert_eq!(s.metrics().snapshot().lost_updates, 0, "no lost updates");
    }

    #[test]
    fn eventual_rmw_loses_updates_under_contention() {
        // The same workload through the read-then-put path must lose
        // updates: the defining behaviour difference of §IV-D.
        let s = Arc::new(VersionedStore::new());
        s.put("ctr", Bytes::from(0u64.to_le_bytes().to_vec()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let (cur, ver) = s.get("ctr");
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&cur);
                    let n = u64::from_le_bytes(b) + 1;
                    // Widen the read→write window so interleaving is certain
                    // even on a single core.
                    std::thread::yield_now();
                    s.put_versioned("ctr", ver, Bytes::from(n.to_le_bytes().to_vec()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&s.get("ctr").0);
        let final_n = u64::from_le_bytes(b);
        let lost = s.metrics().snapshot().lost_updates;
        assert!(final_n <= 1600);
        // Every increment missing from the counter sat inside at least one
        // writer's read→write gap, so the clobber metric bounds the deficit.
        assert!(
            1600 - final_n <= lost,
            "deficit {} exceeds clobber metric {lost}",
            1600 - final_n
        );
        assert!(lost > 0, "contention produced no lost updates");
    }

    #[test]
    fn recorded_strong_history_admits_a_sequential_witness() {
        let s = Arc::new(VersionedStore::recording());
        s.put("w", Bytes::from(0u64.to_le_bytes().to_vec()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    s.transact("w", |cur, _| {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(cur);
                        (
                            Bytes::from((u64::from_le_bytes(b) + 1).to_le_bytes().to_vec()),
                            (),
                        )
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let history = s.take_history();
        assert_eq!(history.len(), 201, "put + 200 transactions");
        crate::history::check_sequential(&history).unwrap();
        assert_eq!(crate::history::count_lost_updates(&history), 0);
    }

    #[test]
    fn recorded_eventual_history_recounts_the_lost_update_metric() {
        let s = VersionedStore::recording();
        s.put("w", Bytes::from_static(b"base")); // v1
        let (_, v) = s.get("w");
        s.put("w", Bytes::from_static(b"other")); // v2: concurrent writer
        s.put_versioned("w", v, Bytes::from_static(b"mine")); // clobbers 1
        let history = s.take_history();
        assert_eq!(
            crate::history::count_lost_updates(&history),
            s.metrics().snapshot().lost_updates,
            "history recount must equal the metric"
        );
        assert!(crate::history::check_sequential(&history).is_err());
    }

    #[test]
    fn non_recording_store_has_no_history() {
        let s = VersionedStore::new();
        assert!(!s.is_recording());
        s.put("w", Bytes::from_static(b"x"));
        assert!(s.take_history().is_empty());
    }

    #[test]
    fn get_returns_shared_bytes_not_a_copy() {
        // The fetch path must be zero-copy: every `get` of the same value
        // returns a view over the *same* allocation as the stored blob —
        // reference-counted sharing, not a per-read clone. Pointer equality
        // of the backing buffers is the whole claim.
        let s = VersionedStore::new();
        let blob = Bytes::from(vec![7u8; 1 << 20]); // 1 MiB parameter blob
        let stored_ptr = blob.as_ptr();
        s.put("w", blob);
        let (a, _) = s.get("w");
        let (b, _) = s.get("w");
        assert_eq!(a.as_ptr(), stored_ptr, "get must alias the stored buffer");
        assert_eq!(b.as_ptr(), stored_ptr, "every read shares one allocation");
        // A subsequent write installs a new buffer without disturbing the
        // view a reader still holds.
        s.put("w", Bytes::from(vec![9u8; 4]));
        assert_eq!(a[0], 7, "held views are immutable snapshots");
        assert_ne!(s.get("w").0.as_ptr(), stored_ptr);
    }

    #[test]
    fn keys_are_independent() {
        let s = VersionedStore::new();
        s.put("a", Bytes::from_static(b"1"));
        s.put("b", Bytes::from_static(b"2"));
        assert_eq!(s.version("a"), 1);
        assert_eq!(s.version("b"), 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn metrics_count_operations() {
        let s = VersionedStore::new();
        s.put("k", Bytes::new());
        s.get("k");
        s.get("k");
        s.transact("k", |c, _| (c.clone(), ()));
        let ops = s.metrics().snapshot();
        assert_eq!(
            ops,
            StoreOps {
                reads: 2,
                writes: 2, // put + transact
                transactions: 1,
                lost_updates: 0,
            }
        );
        // The named struct serializes with its field names.
        let json = serde_json::to_string(&ops).unwrap();
        assert!(json.contains("\"lost_updates\""), "{json}");
    }

    #[test]
    fn instrumented_store_feeds_latency_and_staleness_histograms() {
        let tel = Telemetry::with_echo(64, None);
        let s = VersionedStore::new().with_telemetry(&tel);
        s.put("w", Bytes::from_static(b"base")); // v1
        let (_, seen) = s.get("w");
        s.put("w", Bytes::from_static(b"other")); // v2: concurrent writer
        s.put_versioned("w", seen, Bytes::from_static(b"mine")); // clobbers 1
        s.transact("w", |c, _| (c.clone(), ()));

        let snap = tel.registry().snapshot();
        assert_eq!(snap.histogram(STORE_READ_S).unwrap().count, 1);
        assert_eq!(snap.histogram(STORE_WRITE_S).unwrap().count, 3);
        assert_eq!(snap.histogram(STORE_TRANSACT_S).unwrap().count, 1);
        let staleness = snap.histogram(STORE_STALENESS_VERSIONS).unwrap();
        assert_eq!(staleness.count, 1, "observed once per put_versioned");
        assert_eq!(staleness.sum, 1.0, "one version clobbered");
        assert_eq!(tel.recorder().count_named("lost_update"), 1);
    }
}
