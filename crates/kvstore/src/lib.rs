//! # vc-kvstore
//!
//! The parameter-store substrate of §III-D / §IV-D of the paper: multiple
//! parameter servers sharing one copy of the server parameters through a
//! key-value database.
//!
//! The paper compares two real systems:
//!
//! * **Redis** — a main-memory, *eventually consistent* store. Fast
//!   (0.87 s per parameter-update transaction at their scale) but concurrent
//!   read-modify-write cycles can overwrite each other: some client updates
//!   are silently lost. The paper accepts this, citing prior work that SGD
//!   tolerates lost updates.
//! * **MySQL** — a *strongly consistent* store holding the parameter blob in
//!   a LONGBLOB column. Updates serialize (1.29 s each, 1.5× slower), so it
//!   scales worse as parameter servers are added.
//!
//! This crate rebuilds both semantics over one in-memory engine:
//!
//! * [`VersionedStore`] — a thread-safe, versioned blob store. Strong mode
//!   is the [`VersionedStore::transact`] path (serialized read-modify-write
//!   under a per-key lock); eventual mode is the `get` → compute →
//!   [`VersionedStore::put_versioned`] path, which is last-write-wins and
//!   *counts the updates it clobbers* so experiments can report lost-update
//!   rates.
//! * [`LatencyModel`] — the per-operation costs charged against simulated
//!   time, calibrated to the paper's measurements and scaled by blob size.

pub mod history;
pub mod latency;
pub mod shard;
pub mod store;

pub use history::{check_sequential, count_lost_updates, HistoryEvent, Op};
pub use latency::LatencyModel;
pub use shard::ShardLayout;
pub use store::{
    Consistency, StoreMetrics, StoreOps, VersionedStore, WriteOutcome, STORE_READ_S,
    STORE_STALENESS_VERSIONS, STORE_TRANSACT_S, STORE_WRITE_S,
};
