//! Per-operation latency model, calibrated to §IV-D.
//!
//! The paper measures a full parameter-update transaction — deserialize the
//! client blob, blend with the server copy, write back — at **0.87 s on
//! Redis** and **1.29 s on MySQL** for the 21.2 MB parameter file of the
//! 4.97 M-parameter model. We treat the measured figures as
//! `fixed + per_byte · blob_len` and scale with blob size, so experiments on
//! smaller models charge proportionally less and ImageNet-scale
//! extrapolations (the paper's 187-hour example) charge more.

use crate::store::Consistency;
use serde::{Deserialize, Serialize};

/// Blob size (bytes) at which the paper's figures were measured: the
/// 21.2 MB compressed `.h5` parameter file.
pub const PAPER_BLOB_BYTES: f64 = 21.2 * 1024.0 * 1024.0;

/// Update-transaction latency measured by the paper on Redis (seconds).
pub const PAPER_REDIS_UPDATE_S: f64 = 0.87;

/// Update-transaction latency measured by the paper on MySQL (seconds).
pub const PAPER_MYSQL_UPDATE_S: f64 = 1.29;

/// A linear latency model per consistency mode.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed cost per update transaction (seconds) — connection handling,
    /// query parsing, commit bookkeeping.
    pub fixed_s: f64,
    /// Incremental cost per byte of parameter blob (seconds/byte) — value
    /// (de)serialization and storage-engine writes.
    pub per_byte_s: f64,
}

impl LatencyModel {
    /// The model for a consistency mode, anchored so the paper's blob size
    /// reproduces the paper's measured update latency. A third of the
    /// measured time is attributed to fixed costs, the rest scales with the
    /// blob; the split only matters when extrapolating across model sizes.
    pub fn for_mode(mode: Consistency) -> LatencyModel {
        let measured = match mode {
            Consistency::Eventual => PAPER_REDIS_UPDATE_S,
            Consistency::Strong => PAPER_MYSQL_UPDATE_S,
        };
        LatencyModel {
            fixed_s: measured / 3.0,
            per_byte_s: (measured * 2.0 / 3.0) / PAPER_BLOB_BYTES,
        }
    }

    /// Latency of one update transaction for a blob of `bytes`.
    pub fn update_s(&self, bytes: usize) -> f64 {
        self.fixed_s + self.per_byte_s * bytes as f64
    }

    /// Latency of a read (approximated as half an update: no write path).
    pub fn read_s(&self, bytes: usize) -> f64 {
        self.update_s(bytes) * 0.5
    }
}

/// Ratio of strong to eventual update latency at the paper's blob size
/// (the paper reports 1.5×).
pub fn strong_over_eventual_ratio() -> f64 {
    LatencyModel::for_mode(Consistency::Strong).update_s(PAPER_BLOB_BYTES as usize)
        / LatencyModel::for_mode(Consistency::Eventual).update_s(PAPER_BLOB_BYTES as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_update_latencies() {
        let redis = LatencyModel::for_mode(Consistency::Eventual);
        let mysql = LatencyModel::for_mode(Consistency::Strong);
        let b = PAPER_BLOB_BYTES as usize;
        assert!((redis.update_s(b) - 0.87).abs() < 1e-6);
        assert!((mysql.update_s(b) - 1.29).abs() < 1e-6);
    }

    #[test]
    fn ratio_matches_paper_1_5x() {
        let r = strong_over_eventual_ratio();
        assert!((r - 1.29 / 0.87).abs() < 1e-9);
        assert!(r > 1.45 && r < 1.55);
    }

    #[test]
    fn latency_scales_with_blob_size() {
        let m = LatencyModel::for_mode(Consistency::Eventual);
        let small = m.update_s(1024);
        let large = m.update_s(100 << 20);
        assert!(small < 0.87);
        assert!(large > 0.87);
        assert!(m.update_s(0) > 0.0, "fixed cost always charged");
    }

    #[test]
    fn reads_cost_less_than_updates() {
        let m = LatencyModel::for_mode(Consistency::Strong);
        assert!(m.read_s(1 << 20) < m.update_s(1 << 20));
    }

    #[test]
    fn paper_overhead_arithmetic_sec4d() {
        // §IV-D: ~2,000 updates for CIFAR10/40 epochs; the MySQL-Redis gap
        // adds ~14 minutes.
        let b = PAPER_BLOB_BYTES as usize;
        let gap = LatencyModel::for_mode(Consistency::Strong).update_s(b)
            - LatencyModel::for_mode(Consistency::Eventual).update_s(b);
        let overhead_min = 2000.0 * gap / 60.0;
        assert!((overhead_min - 14.0).abs() < 0.5, "{overhead_min} min");
        // ImageNet: ~1.6M updates => ~187 hours.
        let overhead_hr = 1_600_000.0 * gap / 3600.0;
        assert!((overhead_hr - 187.0).abs() < 2.0, "{overhead_hr} hr");
    }
}
