//! Fault injection: scripted worker preemption and message-delivery chaos.
//!
//! The plan is declarative and deterministic so chaos tests are
//! reproducible: the set of doomed workers and the assignment on which each
//! dies are fixed up front; only message-delay draws use an RNG (seeded
//! from the plan).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// How a byzantine worker corrupts the parameter vectors it uploads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ByzantineMode {
    /// Upload a finite but poisoned parameter vector (a constant fill,
    /// salted per host so two byzantine workers never agree bitwise). The
    /// blob passes format validation; only result comparison at quorum ≥ 2
    /// can catch it.
    #[default]
    Poison,
    /// Upload NaNs. The finite-blob validator rejects these even at
    /// quorum 1.
    NonFinite,
}

impl ByzantineMode {
    /// Overwrites `params` with this mode's corruption for `host`.
    pub fn corrupt(self, host: u32, params: &mut [f32]) {
        let fill = match self {
            ByzantineMode::Poison => 997.0 + host as f32,
            ByzantineMode::NonFinite => f32::NAN,
        };
        params.fill(fill);
    }
}

/// A scripted fault schedule for one runtime run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Host ids of workers that will be preempted. Each dies silently —
    /// mid-subtask, without reporting — exactly once, on its first life.
    pub kill_hosts: Vec<u32>,
    /// The 1-based assignment on which a doomed worker dies (1 = drop the
    /// very first subtask it receives).
    pub kill_on_nth_assignment: u64,
    /// When set, a killed worker comes back as a fresh instance after this
    /// many wall-clock seconds (the simulator's `replacement_delay_s`
    /// analog). When `None`, the fleet stays shrunken.
    pub respawn_after_s: Option<f64>,
    /// Upper bound of the uniform random delay injected on every
    /// worker→server message. Delayed messages can overtake each other, so
    /// results and poll requests arrive reordered. `0` disables the delay
    /// line entirely.
    pub max_msg_delay_s: f64,
    /// Host ids of workers that train honestly but corrupt every result
    /// they upload (hostile volunteers, §II-C's motivation for redundant
    /// computing).
    #[serde(default)]
    pub byzantine_hosts: Vec<u32>,
    /// What corruption the byzantine hosts apply.
    #[serde(default)]
    pub byzantine_mode: ByzantineMode,
    /// Seed of the delay-draw RNG streams.
    pub seed: u64,
}

impl FaultPlan {
    /// No faults: every worker lives forever, messages arrive in order.
    pub fn none() -> Self {
        FaultPlan {
            kill_hosts: Vec::new(),
            kill_on_nth_assignment: 1,
            respawn_after_s: None,
            max_msg_delay_s: 0.0,
            byzantine_hosts: Vec::new(),
            byzantine_mode: ByzantineMode::default(),
            seed: 0,
        }
    }

    /// True when the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.kill_hosts.is_empty() && self.max_msg_delay_s == 0.0 && self.byzantine_hosts.is_empty()
    }

    /// `Some(mode)` when `host` is scripted to corrupt its uploads.
    pub fn byzantine(&self, host: u32) -> Option<ByzantineMode> {
        self.byzantine_hosts
            .contains(&host)
            .then_some(self.byzantine_mode)
    }

    /// The first `ceil(frac · cn)` host ids — a deterministic "kill this
    /// fraction of the fleet" selection for chaos tests.
    pub fn fraction_of(cn: usize, frac: f64) -> Vec<u32> {
        let k = ((cn as f64 * frac).ceil() as usize).min(cn);
        (0..k as u32).collect()
    }

    /// Whether `host`, on life `life` (0 = original instance), should die
    /// while executing its `assignment_no`-th subtask of that life.
    pub fn should_kill(&self, host: u32, life: u32, assignment_no: u64) -> bool {
        life == 0 && assignment_no == self.kill_on_nth_assignment && self.kill_hosts.contains(&host)
    }

    /// Sanity checks, called from `RuntimeConfig::validate`.
    pub fn validate(&self, cn: usize) -> Result<(), String> {
        if self.kill_on_nth_assignment == 0 {
            return Err("kill_on_nth_assignment is 1-based; 0 is meaningless".into());
        }
        if self.max_msg_delay_s < 0.0 || !self.max_msg_delay_s.is_finite() {
            return Err(format!("invalid max_msg_delay_s {}", self.max_msg_delay_s));
        }
        if let Some(d) = self.respawn_after_s {
            if d < 0.0 || !d.is_finite() {
                return Err(format!("invalid respawn_after_s {d}"));
            }
        }
        if self.kill_hosts.iter().any(|&h| h as usize >= cn) {
            return Err(format!("kill_hosts references a host >= cn ({cn})"));
        }
        if !self.kill_hosts.is_empty() && self.kill_hosts.len() >= cn {
            return Err("refusing to kill the whole fleet: the job could never finish".into());
        }
        if self.byzantine_hosts.iter().any(|&h| h as usize >= cn) {
            return Err(format!("byzantine_hosts references a host >= cn ({cn})"));
        }
        if !self.byzantine_hosts.is_empty() && self.byzantine_hosts.len() >= cn {
            return Err("refusing an all-byzantine fleet: no honest result could ever win".into());
        }
        Ok(())
    }
}

/// Counters the injector increments as faults actually fire, reported in
/// `RuntimeReport`.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Workers preempted (died silently mid-subtask).
    pub kills: AtomicU64,
    /// Replacement instances that came up.
    pub respawns: AtomicU64,
    /// Messages routed through the delay line.
    pub delayed_msgs: AtomicU64,
}

impl FaultStats {
    /// Snapshot of `(kills, respawns, delayed_msgs)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.kills.load(Ordering::Relaxed),
            self.respawns.load(Ordering::Relaxed),
            self.delayed_msgs.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_selects_ceil() {
        assert_eq!(FaultPlan::fraction_of(7, 0.3), vec![0, 1, 2]);
        assert_eq!(FaultPlan::fraction_of(4, 0.5), vec![0, 1]);
        assert_eq!(FaultPlan::fraction_of(3, 0.0), Vec::<u32>::new());
        assert_eq!(FaultPlan::fraction_of(2, 1.0), vec![0, 1]);
    }

    #[test]
    fn kill_fires_once_on_first_life() {
        let mut p = FaultPlan::none();
        p.kill_hosts = vec![1, 3];
        p.kill_on_nth_assignment = 2;
        assert!(!p.should_kill(1, 0, 1));
        assert!(p.should_kill(1, 0, 2));
        assert!(!p.should_kill(1, 1, 2), "respawned instances are safe");
        assert!(!p.should_kill(0, 0, 2), "host 0 is not doomed");
    }

    #[test]
    fn byzantine_lookup_and_validation() {
        let mut p = FaultPlan::none();
        assert!(p.byzantine(0).is_none());
        p.byzantine_hosts = vec![1];
        assert!(!p.is_none());
        assert_eq!(p.byzantine(1), Some(ByzantineMode::Poison));
        assert!(p.byzantine(0).is_none());
        assert!(p.validate(3).is_ok());
        p.byzantine_hosts = vec![0, 1, 2];
        assert!(p.validate(3).is_err(), "all-byzantine fleet refused");
        p.byzantine_hosts = vec![7];
        assert!(p.validate(3).is_err(), "host id beyond fleet");
    }

    #[test]
    fn corruption_modes_fill_as_specified() {
        let mut a = vec![1.0f32; 4];
        ByzantineMode::Poison.corrupt(2, &mut a);
        assert!(a.iter().all(|&x| x == 999.0));
        let mut b = vec![1.0f32; 4];
        ByzantineMode::Poison.corrupt(3, &mut b);
        assert_ne!(a, b, "per-host salt keeps byzantine hosts from agreeing");
        ByzantineMode::NonFinite.corrupt(0, &mut a);
        assert!(a.iter().all(|x| x.is_nan()));
    }

    #[test]
    fn validate_rejects_fleet_wipeout() {
        let mut p = FaultPlan::none();
        p.kill_hosts = vec![0, 1];
        assert!(p.validate(2).is_err());
        assert!(p.validate(3).is_ok());
        p.kill_hosts = vec![5];
        assert!(p.validate(3).is_err(), "host id beyond fleet");
    }
}
