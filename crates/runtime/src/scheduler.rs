//! The seeded step scheduler at the heart of deterministic simulation.
//!
//! A [`StepScheduler`] owns a [`VirtualClock`] and a slab of pending
//! events. Actors never run freely: every state transition is an event
//! scheduled at a virtual instant, and the simulation single-steps by
//! asking [`StepScheduler::next`] for the one event that runs now. Two
//! sources of seeded nondeterminism stand in for the OS scheduler:
//!
//! 1. every `schedule_in` adds a small uniform **scheduling jitter** to the
//!    requested delay — the analog of preemption latency, which perturbs
//!    the global ordering of otherwise-synchronized actors; and
//! 2. when several events land on the *same* virtual instant, `next` picks
//!    uniformly at random which one runs first.
//!
//! Both draws come from one `StdRng` seeded by the scenario seed, so the
//! full interleaving — every race, timeout and reordering — is a pure
//! function of `(events scheduled, seed)` and replays bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_middleware::VirtualClock;
use vc_simnet::SimTime;

/// A seeded, virtually-timed event scheduler.
pub struct StepScheduler<E> {
    clock: VirtualClock,
    rng: StdRng,
    jitter_s: f64,
    /// Token-indexed storage: the clock queue holds tokens, this holds the
    /// events they stand for.
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    /// Events due at the instant the clock currently shows, awaiting the
    /// random pick.
    ready: Vec<E>,
}

impl<E> StepScheduler<E> {
    /// An empty scheduler at virtual time zero. `jitter_s` bounds the
    /// uniform scheduling latency added to every delay (0 disables it).
    pub fn new(seed: u64, jitter_s: f64) -> Self {
        assert!(
            jitter_s.is_finite() && jitter_s >= 0.0,
            "invalid scheduling jitter {jitter_s}"
        );
        StepScheduler {
            clock: VirtualClock::new(),
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1)),
            jitter_s,
            slots: Vec::new(),
            free: Vec::new(),
            ready: Vec::new(),
        }
    }

    /// A shared handle on the scheduler's clock (for code that only reads
    /// `now`, like the coordinator's timeout scans).
    pub fn clock(&self) -> VirtualClock {
        self.clock.clone()
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Schedules `ev` to run `delay_s` virtual seconds from now, plus the
    /// seeded scheduling jitter.
    pub fn schedule_in(&mut self, delay_s: f64, ev: E) {
        assert!(
            delay_s.is_finite() && delay_s >= 0.0,
            "invalid delay {delay_s}"
        );
        let jitter = if self.jitter_s > 0.0 {
            self.rng.gen_range(0.0..self.jitter_s)
        } else {
            0.0
        };
        let token = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(ev);
                i
            }
            None => {
                self.slots.push(Some(ev));
                self.slots.len() - 1
            }
        };
        self.clock.schedule_in(delay_s + jitter, token as u64);
    }

    /// Number of events not yet executed.
    pub fn pending(&self) -> usize {
        self.clock.pending() + self.ready.len()
    }

    /// Advances virtual time to the next scheduled instant and returns one
    /// event due there — chosen uniformly at random when several are due at
    /// the same instant. `None` when no event is scheduled: every actor is
    /// idle forever.
    #[allow(clippy::should_implement_trait)] // steps the sim, not an Iterator
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        if self.ready.is_empty() {
            let (at, token) = self.clock.advance()?;
            let ev = self.take(token);
            self.ready.push(ev);
            while self.clock.peek() == Some(at) {
                let (_, token) = self.clock.advance().expect("peeked");
                let ev = self.take(token);
                self.ready.push(ev);
            }
        }
        let i = if self.ready.len() > 1 {
            self.rng.gen_range(0..self.ready.len())
        } else {
            0
        };
        Some((self.clock.now(), self.ready.swap_remove(i)))
    }

    fn take(&mut self, token: u64) -> E {
        let i = token as usize;
        let ev = self.slots[i].take().expect("scheduled token has an event");
        self.free.push(i);
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(seed: u64, jitter: f64) -> Vec<(f64, u32)> {
        let mut s: StepScheduler<u32> = StepScheduler::new(seed, jitter);
        for i in 0..16 {
            s.schedule_in(f64::from(i % 4), i);
        }
        let mut out = Vec::new();
        while let Some((t, e)) = s.next() {
            out.push((t.as_secs(), e));
        }
        out
    }

    #[test]
    fn same_seed_replays_bit_for_bit() {
        assert_eq!(drain(7, 0.01), drain(7, 0.01));
        assert_eq!(drain(7, 0.0), drain(7, 0.0));
    }

    #[test]
    fn different_seeds_explore_different_interleavings() {
        // Without jitter every event of a batch lands on the same instant,
        // so ordering is purely the scheduler's random pick.
        let orders: Vec<Vec<u32>> = (0..4)
            .map(|seed| drain(seed, 0.0).into_iter().map(|(_, e)| e).collect())
            .collect();
        assert!(
            orders.windows(2).any(|w| w[0] != w[1]),
            "four seeds produced identical same-instant orderings"
        );
    }

    #[test]
    fn time_is_monotone_and_complete() {
        let run = drain(3, 0.05);
        assert_eq!(run.len(), 16, "every scheduled event executes");
        for w in run.windows(2) {
            assert!(w[1].0 >= w[0].0, "virtual time ran backwards");
        }
        // Jitter keeps each event within its requested second + bound.
        for (t, e) in run {
            let base = f64::from(e % 4);
            assert!(t >= base && t < base + 0.05, "event {e} at {t}");
        }
    }

    #[test]
    fn tokens_are_recycled() {
        let mut s: StepScheduler<&str> = StepScheduler::new(1, 0.0);
        s.schedule_in(0.0, "a");
        assert_eq!(s.next().map(|(_, e)| e), Some("a"));
        s.schedule_in(0.0, "b");
        assert_eq!(s.slots.len(), 1, "slot reused, not grown");
        assert_eq!(s.next().map(|(_, e)| e), Some("b"));
        assert_eq!(s.pending(), 0);
        assert!(s.next().is_none());
    }
}
