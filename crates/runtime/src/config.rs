//! Runtime configuration: a [`JobConfig`] plus the knobs that only exist
//! once time is real — polling cadence, fault plan, checkpoint policy.

use crate::fault::FaultPlan;
use serde::{Deserialize, Serialize};
use vc_asgd::JobConfig;
use vc_ps::Codec;

/// Everything a real threaded run needs.
///
/// The embedded [`JobConfig`] is interpreted as follows: `cn` is the number
/// of worker OS threads, `pn` the number of parameter-server (assimilator)
/// OS threads, `tn` the per-host slot cap the scheduler enforces, and
/// `middleware.timeout_s` is a *wall-clock* deadline. The simulator-only
/// fields (`compute`, `network`, `preemption`, `timing_only`,
/// `pn_autoscale`) are ignored — compute time is real, transfers are
/// channel sends, and preemption comes from [`FaultPlan`] instead.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// The training job (model, data, shards, `PnCnTn`, α, consistency…).
    pub job: JobConfig,
    /// Seconds a worker sleeps after a `NoWork` reply before polling again.
    pub poll_interval_s: f64,
    /// Seconds a worker waits for a scheduler reply before re-polling
    /// (covers replies lost to its own death/respawn cycle).
    pub reply_timeout_s: f64,
    /// Fault injection plan.
    pub faults: FaultPlan,
    /// Write a checkpoint after every N assimilations (requires
    /// `checkpoint_path`).
    pub checkpoint_every_assims: Option<u64>,
    /// Write a checkpoint every this-many seconds of runtime — wall-clock
    /// in the threaded runtime, virtual time in the simulation (requires
    /// `checkpoint_path`). Composes with `checkpoint_every_assims`: either
    /// trigger writes.
    #[serde(default)]
    pub checkpoint_every_s: Option<f64>,
    /// Where checkpoints are written (atomically: temp file + rename).
    pub checkpoint_path: Option<String>,
    /// Test hook: stop the run cleanly after this many assimilations,
    /// writing a final checkpoint when a path is configured. The report is
    /// marked `halted_early`.
    pub halt_after_assims: Option<u64>,
    /// Safety net: abort (with `halted_early`) if the run exceeds this many
    /// wall-clock seconds — a hung fleet must not hang the test suite.
    pub max_wall_s: f64,
    /// Where the coordinator dumps the telemetry flight recorder (JSONL,
    /// one event per line) when it finalizes. `None` disables the dump;
    /// the in-memory recorder still runs either way.
    #[serde(default)]
    pub flight_recorder_path: Option<String>,
    /// Serve parameter fetches over real loopback TCP sockets (one
    /// listener per shard group) instead of the in-process transport. Both
    /// paths run the same wire codec; TCP adds real sockets and threads.
    #[serde(default)]
    pub ps_tcp: bool,
    /// Bind the live ops HTTP server (`/`, `/metrics`, `/status`,
    /// `/events`, `/trace`, `/healthz`) on this address for the duration
    /// of the run, e.g. `"127.0.0.1:9090"` (port 0 picks an ephemeral
    /// port). `None` disables the server; the in-memory ops hub still
    /// works either way.
    #[serde(default)]
    pub ops_addr: Option<String>,
    /// Enable causal workunit tracing: dispatch → fetch → train → upload
    /// → validate → assimilate spans into the flight recorder plus
    /// per-stage `trace_<stage>_s` histograms. Off by default so untraced
    /// runs record byte-identical output (the golden-bit suites depend on
    /// this).
    #[serde(default)]
    pub trace: bool,
    /// Parameter-transfer codec: how shard fetches and update pushes are
    /// encoded on the wire. `Raw` (the default) is the legacy bit-exact
    /// path; lossy modes quantize deltas against the version the peer
    /// already holds and imply a tolerance comparator for result quorums
    /// (quantization makes honest replicas differ by a few ulps).
    #[serde(default)]
    pub codec: Codec,
}

impl RuntimeConfig {
    /// Wraps a job with no faults, no checkpoints and default cadences.
    pub fn new(job: JobConfig) -> Self {
        RuntimeConfig {
            job,
            poll_interval_s: 0.01,
            reply_timeout_s: 1.0,
            faults: FaultPlan::none(),
            checkpoint_every_assims: None,
            checkpoint_every_s: None,
            checkpoint_path: None,
            halt_after_assims: None,
            max_wall_s: 600.0,
            flight_recorder_path: None,
            ps_tcp: false,
            ops_addr: None,
            trace: false,
            codec: Codec::Raw,
        }
    }

    /// The test-scale job with a wall-clock-appropriate middleware timeout:
    /// subtasks take milliseconds of real compute, so a dead worker's
    /// assignment should be declared lost after ~2 s, not the simulated
    /// default of 300 s.
    pub fn test_small(seed: u64) -> Self {
        let mut job = JobConfig::test_small(seed);
        job.middleware.timeout_s = 2.0;
        // Scale the adaptive-deadline clamp and fetch backoff to the same
        // wall-clock regime; the simulated defaults (30 s floor, 15 s base
        // backoff) would make a test run crawl.
        job.middleware.min_timeout_s = 2.0;
        job.middleware.max_timeout_s = 10.0;
        job.middleware.backoff_base_s = 0.2;
        job.middleware.backoff_max_s = 2.0;
        Self::new(job)
    }

    /// Validates cross-field invariants; the runtime constructor calls
    /// this.
    pub fn validate(&self) -> Result<(), String> {
        self.job.validate()?;
        self.faults.validate(self.job.cn)?;
        if self.job.timing_only {
            return Err("timing_only is simulator-only: the runtime always trains for real".into());
        }
        if self.poll_interval_s <= 0.0 || !self.poll_interval_s.is_finite() {
            return Err(format!("invalid poll_interval_s {}", self.poll_interval_s));
        }
        if self.reply_timeout_s <= 0.0 || !self.reply_timeout_s.is_finite() {
            return Err(format!("invalid reply_timeout_s {}", self.reply_timeout_s));
        }
        if self.max_wall_s <= 0.0 || !self.max_wall_s.is_finite() {
            return Err(format!("invalid max_wall_s {}", self.max_wall_s));
        }
        if self.checkpoint_every_assims == Some(0) {
            return Err("checkpoint_every_assims must be >= 1".into());
        }
        if self.checkpoint_every_assims.is_some() && self.checkpoint_path.is_none() {
            return Err("checkpoint_every_assims needs a checkpoint_path".into());
        }
        if let Some(every_s) = self.checkpoint_every_s {
            if every_s <= 0.0 || !every_s.is_finite() {
                return Err(format!("invalid checkpoint_every_s {every_s}"));
            }
            if self.checkpoint_path.is_none() {
                return Err("checkpoint_every_s needs a checkpoint_path".into());
            }
        }
        if self.halt_after_assims == Some(0) {
            return Err("halt_after_assims must be >= 1".into());
        }
        if let Codec::TopK { k, .. } = self.codec {
            if k == 0 {
                return Err("codec TopK needs k >= 1".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_small_is_valid_and_wall_clock_scaled() {
        let cfg = RuntimeConfig::test_small(1);
        cfg.validate().unwrap();
        assert!(cfg.job.middleware.timeout_s <= 5.0);
    }

    #[test]
    fn rejects_timing_only_and_bad_checkpoint_policy() {
        let mut cfg = RuntimeConfig::test_small(1);
        cfg.job.timing_only = true;
        assert!(cfg.validate().is_err());

        let mut cfg = RuntimeConfig::test_small(1);
        cfg.checkpoint_every_assims = Some(4);
        assert!(cfg.validate().is_err(), "checkpoint interval without path");
        cfg.checkpoint_path = Some("/tmp/ck.json".into());
        cfg.validate().unwrap();

        cfg.checkpoint_every_s = Some(0.0);
        assert!(cfg.validate().is_err(), "timer interval must be positive");
        cfg.checkpoint_every_s = Some(0.5);
        cfg.validate().unwrap();
        cfg.checkpoint_path = None;
        cfg.checkpoint_every_assims = None;
        assert!(cfg.validate().is_err(), "timer interval without path");
    }

    #[test]
    fn config_roundtrips_through_json() {
        let mut cfg = RuntimeConfig::test_small(3);
        cfg.faults.kill_hosts = vec![0];
        cfg.faults.respawn_after_s = Some(1.5);
        cfg.ops_addr = Some("127.0.0.1:0".into());
        cfg.trace = true;
        cfg.codec = Codec::TopK {
            k: 8,
            error_feedback: true,
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: RuntimeConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn rejects_degenerate_topk() {
        let mut cfg = RuntimeConfig::test_small(1);
        cfg.codec = Codec::TopK {
            k: 0,
            error_feedback: false,
        };
        assert!(cfg.validate().is_err());
    }
}
