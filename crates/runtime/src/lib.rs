//! # vc-runtime
//!
//! A real multi-threaded volunteer-fleet runtime for VC-ASGD: the same
//! training job the `vc-asgd` discrete-event simulator models, executed on
//! actual OS threads over actual wall-clock time.
//!
//! ## Architecture
//!
//! One **coordinator** thread runs the `vc-middleware` [`BoincServer`]
//! state machine (scheduler, transitioner, validator) driven by a
//! [`vc_middleware::WallClock`]; `Pn` **assimilator** threads apply
//! Eq. (1) against the shared `vc-kvstore` store — contending for real, so
//! eventual consistency loses updates by racing, not by simulation; `Cn`
//! **worker** threads each impersonate one volunteer host: poll for work,
//! receive the epoch parameter snapshot, train their shard with real SGD
//! (the exact [`vc_asgd::train_client_replica`] step the simulator uses),
//! and upload the replica. All traffic flows over `crossbeam` channels.
//!
//! ## Faults and recovery
//!
//! A [`FaultPlan`] preempts chosen workers mid-subtask — they vanish
//! silently, and the server discovers the loss the BOINC way, through
//! wall-clock assignment timeouts, then reassigns to surviving hosts. An
//! optional delay line randomly delays and reorders worker messages.
//! Periodic [`Checkpoint`]s capture server parameters plus open-workunit
//! state; [`Runtime::resume`] continues an interrupted job mid-epoch.

pub mod checkpoint;
pub mod config;
pub mod coordinator;
pub mod fault;
pub mod protocol;
pub mod report;
pub mod scheduler;
pub mod sim;
pub mod transport;
pub mod worker;

pub use checkpoint::Checkpoint;
pub use config::RuntimeConfig;
pub use fault::{ByzantineMode, FaultPlan};
pub use report::{
    RuntimeEpoch, RuntimeReport, RuntimeTelemetry, ASSIM_LATENCY_S, DELAY_LINE_DELAY_S,
    WORKER_POLL_S, WORKER_TRAIN_S, WORKER_UPLOAD_S,
};
pub use scheduler::StepScheduler;
pub use sim::{run_scenario, sweep, verify_seed, Scenario, SimOutcome};

use coordinator::{assimilator_main, AssimCtx, Coordinator};
use crossbeam::channel::unbounded;
use fault::FaultStats;
use std::path::Path;
use std::sync::Arc;
use transport::{delay_line_main, Outbox};
use vc_asgd::warm_start_params;
use vc_data::ShardSet;
use vc_kvstore::VersionedStore;
use vc_middleware::{BoincServer, HostId, ShardManifest, ToleranceComparator, WallClock};
use vc_nn::metrics::evaluate;
use vc_ops::{OpsHub, OpsServer};
use vc_ps::{
    MemClient, PsClient, PsService, ShardCache, ShardedAssimilator, TcpClient, TcpPsServer,
};
use vc_simnet::SimTime;
use vc_telemetry::Telemetry;
use worker::{worker_main, WorkerCtx};

/// A configured (possibly resumed) run, executed with [`Runtime::run`].
pub struct Runtime {
    cfg: RuntimeConfig,
    resume: Option<Checkpoint>,
    telemetry: Option<Telemetry>,
    ops_hub: Option<Arc<OpsHub>>,
}

impl Runtime {
    /// Builds a fresh run.
    pub fn new(cfg: RuntimeConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(Runtime {
            cfg,
            resume: None,
            telemetry: None,
            ops_hub: None,
        })
    }

    /// Rebuilds a run from a checkpoint written by a previous process. The
    /// checkpoint embeds the full [`RuntimeConfig`], so nothing else is
    /// needed; adjust it through [`Runtime::config_mut`] before running
    /// (e.g. to clear a one-shot `halt_after_assims` hook).
    pub fn resume(path: impl AsRef<Path>) -> Result<Self, String> {
        let ck = Checkpoint::load(path)?;
        Ok(Runtime {
            cfg: ck.cfg.clone(),
            resume: Some(ck),
            telemetry: None,
            ops_hub: None,
        })
    }

    /// The run configuration (mutable, for pre-run adjustments).
    pub fn config_mut(&mut self) -> &mut RuntimeConfig {
        &mut self.cfg
    }

    /// Uses `tel` as the run's telemetry hub instead of the default
    /// [`Telemetry::from_env`]-built one, so a caller can keep a handle to
    /// the registry and flight recorder after the run. The run retargets
    /// the hub's time source at its own clock.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = Some(tel);
        self
    }

    /// Publishes live status into `hub` during the run. The caller keeps
    /// its own handle — typically to front the hub with an
    /// [`vc_ops::OpsServer`] it controls (binding, lifetime) instead of
    /// the `ops_addr`-managed one. The hub should share the run's
    /// telemetry (see [`Runtime::with_telemetry`]) so `/metrics`,
    /// `/events` and `/trace` read this run's registry and recorder.
    pub fn with_ops_hub(mut self, hub: Arc<OpsHub>) -> Self {
        self.ops_hub = Some(hub);
        self
    }

    /// Executes the job: spawns the fleet, trains to completion (or halt),
    /// joins every thread, and reports.
    pub fn run(mut self) -> Result<RuntimeReport, String> {
        self.cfg.validate()?;
        if let Some(ck) = &self.resume {
            // config_mut may have edited simulator-visible fields; the
            // parameter geometry must still match the checkpoint.
            if self.cfg.job.shards != ck.cfg.job.shards {
                return Err("cannot change shard count across a resume".into());
            }
        }
        let tel = self.telemetry.take().unwrap_or_else(Telemetry::from_env);
        let cfg = Arc::new(self.cfg);
        let job = &cfg.job;
        // Causal workunit tracing: off by default so untraced runs record
        // byte-identical telemetry; `cfg.trace` opts a run in.
        tel.set_tracing(cfg.trace);

        // --- live ops surface ----------------------------------------------
        // An externally supplied hub wins; otherwise `ops_addr` creates one.
        // The HTTP server (if any) lives exactly as long as the run.
        let ops_hub = match self.ops_hub.take() {
            Some(hub) => Some(hub),
            None => cfg
                .ops_addr
                .as_ref()
                .map(|_| Arc::new(OpsHub::new(tel.clone()))),
        };
        let _ops_server = match (&cfg.ops_addr, &ops_hub) {
            (Some(addr), Some(hub)) => {
                let srv = OpsServer::start(addr, hub.clone()).map_err(|e| e.to_string())?;
                vc_telemetry::event!(
                    tel,
                    Info,
                    "ops_server_started",
                    addr = srv.local_addr().to_string()
                );
                Some(srv)
            }
            _ => None,
        };

        // --- data ---------------------------------------------------------
        let (train, val, test) = job.data.generate();
        let shards = Arc::new(ShardSet::split(&train, job.shards));
        let val_eval = Arc::new(val.select(&(0..job.val_eval_n).collect::<Vec<_>>()));

        // --- parameter store + sharded service ----------------------------
        let store = Arc::new(VersionedStore::new().with_telemetry(&tel));
        let (init_params, snapshot_params, epoch, done, stats, assimilations, bytes, wall_base_s) =
            match &self.resume {
                None => {
                    let mut init = job.model.build(job.seed).params_flat();
                    if let Some(warmed) = warm_start_params(job, &shards, &init) {
                        init = warmed;
                    }
                    (init.clone(), init, 1, Vec::new(), Vec::new(), 0, 0, 0.0)
                }
                Some(ck) => (
                    ck.params.clone(),
                    ck.snapshot.clone(),
                    ck.epoch,
                    ck.done.clone(),
                    ck.stats.clone(),
                    ck.assimilations,
                    ck.bytes_transferred,
                    ck.wall_s,
                ),
            };
        let param_count = init_params.len();
        let assim = Arc::new(
            ShardedAssimilator::new(
                store.clone(),
                param_count,
                job.ps_shards,
                job.consistency,
                job.alpha,
            )
            .with_telemetry(&tel),
        );
        assim.seed_params(&init_params);
        let service = Arc::new(
            PsService::new(assim.clone())
                .with_codec(cfg.codec)
                .with_telemetry(&tel),
        );
        // The in-progress epoch's fetchable snapshot (Eq. (2)'s W_{s,e-1}).
        service.publish_snapshot(epoch as u64, &snapshot_params, &assim.versions());

        // --- middleware ----------------------------------------------------
        let fleet = job.fleet.build(job.cn);
        let mut server = BoincServer::new(
            job.middleware.clone(),
            fleet.iter().map(|s| (s.clone(), job.tn)).collect(),
        );
        let clock = WallClock::resumed_at(wall_base_s);
        // Event timestamps ride the same SimTime axis as the middleware's
        // deadlines (cumulative across resumes).
        tel.set_time_source(Arc::new(clock));
        server.set_telemetry(tel.clone());
        if cfg.codec.is_lossy() {
            // Quantized honest replicas differ by a few quantization
            // steps; exact-match quorums would reject them all.
            let (atol, rtol) = cfg.codec.quorum_tolerance();
            server.set_comparator(Box::new(ToleranceComparator { atol, rtol }));
        }
        let manifest = ShardManifest(assim.versions());
        match &self.resume {
            None => server.add_epoch_sharded(1, job.shards, &manifest, SimTime::ZERO),
            Some(ck) => {
                // Re-issue only the shards the interrupted epoch still owes;
                // the already-assimilated ones live on inside `params`.
                // In-flight client results are simply recomputed — subtask
                // training is deterministic per (seed, epoch, shard).
                for shard in 0..job.shards {
                    if !ck.done.iter().any(|&(s, _)| s == shard) {
                        server.add_workunit_sharded(
                            ck.epoch,
                            shard,
                            manifest.clone(),
                            SimTime::ZERO,
                        );
                    }
                }
            }
        }
        self.resume = None;

        // --- parameter-service transport -----------------------------------
        // In-process by default; with `ps_tcp` every fetch crosses a real
        // loopback socket through the wire codec, one listener per shard
        // group.
        let tcp = if cfg.ps_tcp {
            let groups = job.ps_shards.min(4);
            Some(TcpPsServer::bind(service.clone(), groups).map_err(|e| e.to_string())?)
        } else {
            None
        };

        // --- channels ------------------------------------------------------
        let (server_tx, server_rx) = unbounded();
        let (assim_tx, assim_rx) = unbounded();
        let fstats = Arc::new(FaultStats::default());
        let (delay_tx, delay_handle) = if cfg.faults.max_msg_delay_s > 0.0 {
            let (dtx, drx) = unbounded();
            let out = server_tx.clone();
            let h = std::thread::Builder::new()
                .name("vc-delay-line".into())
                .spawn(move || delay_line_main(drx, out))
                .map_err(|e| e.to_string())?;
            (Some(dtx), Some(h))
        } else {
            (None, None)
        };

        // --- assimilator pool ---------------------------------------------
        let mut assim_handles = Vec::new();
        for i in 0..job.pn {
            let ctx = AssimCtx {
                assim: assim.clone(),
                mode: job.consistency,
                cfg: cfg.clone(),
                val_eval: val_eval.clone(),
                task_rx: assim_rx.clone(),
                out: server_tx.clone(),
            };
            assim_handles.push(
                std::thread::Builder::new()
                    .name(format!("vc-assim-{i}"))
                    .spawn(move || assimilator_main(ctx))
                    .map_err(|e| e.to_string())?,
            );
        }
        drop(assim_rx);

        // --- workers -------------------------------------------------------
        let mut worker_txs = Vec::new();
        let mut worker_handles = Vec::new();
        for h in 0..job.cn {
            let (tx, rx) = unbounded();
            worker_txs.push(tx);
            let outbox = match &delay_tx {
                Some(dtx) => Outbox::Delayed {
                    tx: dtx.clone(),
                    max_delay_s: cfg.faults.max_msg_delay_s,
                    stats: fstats.clone(),
                    telemetry: tel.clone(),
                },
                None => Outbox::Direct(server_tx.clone()),
            };
            let ps: Box<dyn PsClient> = match &tcp {
                Some(srv) => Box::new(
                    TcpClient::connect(srv.addrs(), srv.groups()).map_err(|e| e.to_string())?,
                ),
                None => Box::new(MemClient::new(service.clone())),
            };
            let ctx = WorkerCtx {
                id: HostId(h as u32),
                cfg: cfg.clone(),
                shards: shards.clone(),
                cmd_rx: rx,
                outbox,
                stats: fstats.clone(),
                telemetry: tel.clone(),
                ps,
                cache: ShardCache::new(*assim.layout()).with_codec(cfg.codec),
            };
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("vc-worker-{h}"))
                    .spawn(move || worker_main(ctx))
                    .map_err(|e| e.to_string())?,
            );
        }
        // The coordinator's inbox must disconnect once the fleet is gone:
        // only workers, assimilators and the delay line may hold senders.
        drop(delay_tx);
        drop(server_tx);

        // --- coordinate ----------------------------------------------------
        let coordinator = Coordinator {
            cfg: cfg.clone(),
            server,
            assim,
            store,
            clock,
            service: service.clone(),
            epoch,
            done,
            stats,
            assimilations,
            bytes,
            wall_base_s,
            param_count,
            worker_txs,
            inbox: server_rx,
            assim_tx,
            stats_faults: fstats,
            next_checkpoint_s: cfg.checkpoint_every_s,
            telemetry: tel,
            ops: ops_hub,
            last_ops_publish_s: -1.0,
        };
        let (mut report, assim) = coordinator.run();

        // The coordinator dropped its channel ends on return: every worker's
        // next recv/send errors, the assimilator intake closes, the delay
        // line drains and exits. Join them all.
        for h in worker_handles {
            h.join().map_err(|_| "a worker thread panicked")?;
        }
        for h in assim_handles {
            h.join().map_err(|_| "an assimilator thread panicked")?;
        }
        if let Some(h) = delay_handle {
            h.join().map_err(|_| "the delay-line thread panicked")?;
        }
        if let Some(srv) = tcp {
            srv.shutdown();
        }

        // Final evaluation on the full splits, mirroring the simulator.
        let (params, _) = assim.read_params();
        let mut model = cfg.job.model.build(cfg.job.seed);
        model.set_params_flat(&params);
        let (_, v) = evaluate(&mut model, &val.images, &val.labels, 256);
        let (_, t) = evaluate(&mut model, &test.images, &test.labels, 256);
        report.final_val_acc = v;
        report.final_test_acc = t;
        Ok(report)
    }
}

/// Convenience: build and run in one call.
pub fn run_runtime(cfg: RuntimeConfig) -> Result<RuntimeReport, String> {
    Runtime::new(cfg)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tentpole acceptance: ≥ 4 real worker threads train the synthetic
    /// dataset to the same learnability threshold as the simulated driver.
    #[test]
    fn threaded_fleet_learns_above_chance() {
        let mut cfg = RuntimeConfig::test_small(2);
        cfg.job.cn = 4;
        cfg.job.tn = 2;
        cfg.job.epochs = 5;
        let report = run_runtime(cfg.clone()).unwrap();
        assert!(!report.halted_early, "run must finish on its own");
        assert_eq!(report.epochs.len(), cfg.job.epochs);
        for (i, e) in report.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i + 1);
            assert_eq!(e.assimilated, cfg.job.shards);
        }
        assert!(
            report.final_mean_acc() > 0.2,
            "accuracy {}",
            report.final_mean_acc()
        );
        // Final full-split evaluations broadly agree with the epoch series.
        assert!((report.final_val_acc - report.final_mean_acc()).abs() < 0.25);
        assert!(report.wall_s > 0.0);
        assert!(report.bytes_transferred > 0);
    }

    /// Satellite: checkpoint mid-epoch, resume in a fresh `Runtime`, and
    /// the final accuracy matches an uninterrupted run within tolerance.
    #[test]
    fn checkpoint_roundtrip_matches_uninterrupted() {
        let path = std::env::temp_dir().join("vc_runtime_resume_test.json");
        let path_s = path.to_string_lossy().into_owned();
        std::fs::remove_file(&path).ok();

        let mut base = RuntimeConfig::test_small(11);
        base.job.cn = 4;
        base.job.epochs = 3;

        let clean = run_runtime(base.clone()).unwrap();
        assert!(clean.final_mean_acc() > 0.15, "{}", clean.final_mean_acc());

        // Interrupt mid-job: halt after 11 assimilations (mid-epoch-2 with
        // 8 shards per epoch), checkpointing at the halt.
        let mut first = base.clone();
        first.checkpoint_path = Some(path_s.clone());
        first.halt_after_assims = Some(11);
        let partial = run_runtime(first).unwrap();
        assert!(partial.halted_early);
        assert!(partial.epochs.len() < 3);

        let mut resumed = Runtime::resume(&path).unwrap();
        resumed.config_mut().halt_after_assims = None;
        resumed.config_mut().checkpoint_every_assims = None;
        resumed.config_mut().checkpoint_path = None;
        let done = resumed.run().unwrap();
        std::fs::remove_file(&path).ok();

        assert!(!done.halted_early);
        assert_eq!(done.epochs.len(), 3, "resume completes the job");
        // Both runs assimilate the same deterministic client results; only
        // arrival order (and thus blend order) differs across threads.
        assert!(
            (done.final_mean_acc() - clean.final_mean_acc()).abs() < 0.15,
            "resumed {} vs clean {}",
            done.final_mean_acc(),
            clean.final_mean_acc()
        );
        assert!(done.final_mean_acc() > 0.15, "{}", done.final_mean_acc());
        // The resumed clock continues where the checkpoint left off: epoch
        // stamps stay monotone across the resume boundary, and the resumed
        // total covers everything the partial run finished. (Comparing
        // against `partial.wall_s` directly races — that stamp includes
        // post-halt finalize time, which on a loaded machine can exceed
        // the whole resumed run.)
        for w in done.epochs.windows(2) {
            assert!(
                w[0].end_wall_s < w[1].end_wall_s,
                "wall went backwards across resume: {} then {}",
                w[0].end_wall_s,
                w[1].end_wall_s
            );
        }
        let last_partial = partial.epochs.last().expect("halt landed mid-epoch-2");
        assert!(done.wall_s > last_partial.end_wall_s);
    }

    #[test]
    fn rejects_invalid_configs() {
        let mut cfg = RuntimeConfig::test_small(1);
        cfg.job.timing_only = true;
        assert!(Runtime::new(cfg).is_err());

        let mut cfg = RuntimeConfig::test_small(1);
        cfg.faults.kill_hosts = (0..cfg.job.cn as u32).collect();
        assert!(
            Runtime::new(cfg).is_err(),
            "whole-fleet kill without respawn must be rejected"
        );
    }
}
