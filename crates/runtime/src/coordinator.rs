//! The coordinator thread (BOINC server) and the assimilator pool.
//!
//! The coordinator owns the [`BoincServer`] state machine and drives it
//! with wall-clock readings: scheduler RPCs and uploads arrive over one
//! MPMC inbox, timeouts are scanned against real deadlines, and accepted
//! results are handed to `Pn` assimilator threads that contend on the
//! shared [`vc_kvstore::VersionedStore`] for real — in eventual mode,
//! overlapping read-blend-write cycles genuinely lose updates, not by
//! simulation but by racing.
//!
//! The coordinator is generic over its [`Clock`]: the threaded runtime
//! instantiates it with [`WallClock`], the deterministic simulation
//! (`crate::sim`) with a `VirtualClock` and drives [`Coordinator::handle`]
//! directly from its event loop instead of running the blocking
//! [`Coordinator::event_loop`].

use crate::checkpoint::{Checkpoint, CHECKPOINT_VERSION};
use crate::config::RuntimeConfig;
use crate::fault::FaultStats;
use crate::protocol::{AssimTask, ToServer, ToWorker};
use crate::report::{RuntimeEpoch, RuntimeReport, RuntimeTelemetry, ASSIM_LATENCY_S};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;
use vc_asgd::result_is_valid;
use vc_data::Dataset;
use vc_kvstore::{Consistency, VersionedStore};
use vc_middleware::{BoincServer, Clock, ReportStatus, ShardManifest};
use vc_nn::metrics::evaluate;
use vc_ops::{FleetStatus, OpsHub, PsStatus, StatusSnapshot};
use vc_ps::{PsService, ShardedAssimilator};
use vc_telemetry::{event, Histogram, Telemetry, TraceStage};

/// Everything one assimilator (parameter-server) thread needs.
pub struct AssimCtx {
    /// Shared per-shard Eq. (1) applier over the shared store.
    pub assim: Arc<ShardedAssimilator>,
    /// Consistency mode (decides the store access pattern).
    pub mode: Consistency,
    /// Shared run configuration (model spec for the eval replica).
    pub cfg: Arc<RuntimeConfig>,
    /// The validation subset scored after every assimilation.
    pub val_eval: Arc<Dataset>,
    /// Task intake (MPMC: the pool shares one receiver).
    pub task_rx: Receiver<AssimTask>,
    /// Outcome uplink into the coordinator's inbox.
    pub out: Sender<ToServer>,
}

/// The assimilator thread body: blend, score, report, until the task
/// channel closes.
pub fn assimilator_main(ctx: AssimCtx) {
    let mut eval_model = ctx.cfg.job.model.build(ctx.cfg.job.seed);
    while let Ok(t) = ctx.task_rx.recv() {
        let updated = match ctx.mode {
            Consistency::Eventual => {
                // Read-blend-write with the read at cycle start: the window
                // between begin and commit is a real race against the other
                // assimilator threads. The yield widens it the same way a
                // network hop to Redis would.
                let snap = ctx.assim.begin_eventual();
                std::thread::yield_now();
                ctx.assim.commit_eventual(snap, &t.client, t.epoch).0
            }
            Consistency::Strong => ctx.assim.assimilate_strong(&t.client, t.epoch),
        };
        // Parameter-server validation scoring (§III-A).
        eval_model.set_params_flat(&updated);
        let (_, acc) = evaluate(
            &mut eval_model,
            &ctx.val_eval.images,
            &ctx.val_eval.labels,
            256,
        );
        if ctx
            .out
            .send(ToServer::Assimilated {
                wu: t.wu,
                host: t.host,
                epoch: t.epoch,
                shard_id: t.shard_id,
                acc,
                accepted_at: t.accepted_at,
            })
            .is_err()
        {
            return; // coordinator gone
        }
    }
}

/// The coordinator's mutable state, assembled by `Runtime::run` (with a
/// [`vc_middleware::WallClock`]) or by the simulation (with a
/// `VirtualClock`).
pub struct Coordinator<C: Clock> {
    /// Shared run configuration.
    pub cfg: Arc<RuntimeConfig>,
    /// The middleware state machine.
    pub server: BoincServer,
    /// Per-shard Eq. (1) applier (same instance the pool shares).
    pub assim: Arc<ShardedAssimilator>,
    /// The shared parameter store (for operation counters).
    pub store: Arc<VersionedStore>,
    /// Clock driving every middleware `now` (wall or virtual).
    pub clock: C,
    /// The parameter service workers fetch epoch snapshots from (shard
    /// blobs pre-encoded per epoch; wire-byte counters).
    pub service: Arc<PsService>,
    /// The in-progress epoch.
    pub epoch: usize,
    /// `(shard, acc)` assimilated so far this epoch.
    pub done: Vec<(usize, f32)>,
    /// Completed epochs.
    pub stats: Vec<RuntimeEpoch>,
    /// Total assimilations (cumulative across resumes).
    pub assimilations: u64,
    /// Parameter payload bytes (cumulative across resumes).
    pub bytes: u64,
    /// Wall seconds already on the clock at process start (resume offset).
    pub wall_base_s: f64,
    /// Parameter count (sizes the byte accounting).
    pub param_count: usize,
    /// Reply channels, indexed by host id.
    pub worker_txs: Vec<Sender<ToWorker>>,
    /// The shared inbox.
    pub inbox: Receiver<ToServer>,
    /// Intake of the assimilator pool.
    pub assim_tx: Sender<AssimTask>,
    /// Shared fault counters.
    pub stats_faults: Arc<FaultStats>,
    /// Runtime second (clock `elapsed_s`) at which the next timed
    /// checkpoint is due; `None` disables the timer.
    pub next_checkpoint_s: Option<f64>,
    /// The run's telemetry hub (registry + flight recorder).
    pub telemetry: Telemetry,
    /// The live ops hub the coordinator publishes status snapshots into
    /// (`None` when no ops surface is attached).
    pub ops: Option<Arc<OpsHub>>,
    /// Clock second of the last ops publish (throttles event-loop
    /// publishing to [`OPS_PUBLISH_EVERY_S`]).
    pub last_ops_publish_s: f64,
}

/// Minimum clock seconds between event-loop status publishes: scrapes see
/// fresh-enough state without the coordinator re-summarizing a 100k-host
/// fleet on every message.
const OPS_PUBLISH_EVERY_S: f64 = 0.25;

/// Why the coordinator stopped.
pub(crate) enum Stop {
    /// All epochs finished (or the accuracy target was reached).
    Finished,
    /// `halt_after_assims` fired or `max_wall_s` ran out.
    Halted,
}

impl<C: Clock> Coordinator<C> {
    /// Runs the job to completion (or halt), shuts the fleet down, and
    /// returns the report. Final accuracies are evaluated by the caller —
    /// the coordinator has no model of its own.
    pub fn run(mut self) -> (RuntimeReport, Arc<ShardedAssimilator>) {
        let stop = self.event_loop();
        self.finalize(stop)
    }

    /// Shuts the fleet down and builds the report. Split from [`Self::run`]
    /// so the simulation, which pumps [`Self::handle`] itself, can close a
    /// run the same way the threaded path does.
    pub(crate) fn finalize(self, stop: Stop) -> (RuntimeReport, Arc<ShardedAssimilator>) {
        // Orderly shutdown: tell every worker, close the assimilator
        // intake. Dead workers' channels error harmlessly.
        for tx in &self.worker_txs {
            let _ = tx.send(ToWorker::Shutdown);
        }
        let halted = matches!(stop, Stop::Halted);
        // Final status publish: scrapes after the run report `done`.
        self.publish_ops(true);
        let (kills, respawns, delayed) = self.stats_faults.snapshot();
        event!(
            self.telemetry,
            Info,
            "run_finalized",
            halted = halted,
            assimilations = self.assimilations
        );
        if let Some(path) = &self.cfg.flight_recorder_path {
            if let Err(e) = self.telemetry.recorder().dump_to_file(path) {
                event!(
                    self.telemetry,
                    Warn,
                    "flight_recorder_dump_failed",
                    path = path.as_str(),
                    err = e.to_string()
                );
            }
        }
        let report = RuntimeReport {
            label: self.cfg.job.pct_label(),
            epochs: self.stats.clone(),
            final_val_acc: 0.0,  // filled by Runtime::run
            final_test_acc: 0.0, // filled by Runtime::run
            wall_s: self.wall_base_s + self.clock.elapsed_s(),
            workers: self.worker_txs.len(),
            server_metrics: self.server.metrics(),
            hosts: self.server.host_summaries(),
            store_ops: self.store.metrics().snapshot(),
            telemetry: RuntimeTelemetry::from_registry(self.telemetry.registry()),
            ps_ops: self.service.ops(),
            bytes_transferred: self.total_bytes(),
            kills,
            respawns,
            delayed_msgs: delayed,
            halted_early: halted,
        };
        (report, self.assim)
    }

    fn event_loop(&mut self) -> Stop {
        loop {
            let now = self.clock.now();
            self.server.scan_timeouts(now);
            self.maybe_timed_checkpoint();
            self.maybe_publish_ops();
            if self.clock.elapsed_s() > self.cfg.max_wall_s {
                self.write_checkpoint();
                return Stop::Halted;
            }
            match self.inbox.recv_timeout(Duration::from_millis(20)) {
                Ok(msg) => {
                    if let Some(stop) = self.handle(msg) {
                        return stop;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // Every worker and assimilator is gone; nothing can
                    // ever complete the job.
                    return Stop::Halted;
                }
            }
        }
    }

    pub(crate) fn handle(&mut self, msg: ToServer) -> Option<Stop> {
        let now = self.clock.now();
        match msg {
            ToServer::RequestWork { host } => {
                // Download bytes are no longer estimated here: the worker
                // fetches missing shards from the parameter service, whose
                // wire counters ([`PsService::ops`]) record what actually
                // travelled.
                let reply = match self.server.request_work(host, now) {
                    Some(asg) => ToWorker::Assign { wu: asg.wu },
                    None => ToWorker::NoWork,
                };
                // A dead worker's channel errors; its assignment (if any)
                // recovers through the timeout path like any lost host.
                let _ = self.worker_txs[host.0 as usize].send(reply);
                None
            }
            ToServer::Result { host, wu, params } => {
                if !result_is_valid(&params) {
                    self.server.report_invalid(wu, host, now);
                    return None;
                }
                match self.server.report_result(wu, host, &params, now) {
                    ReportStatus::Accepted => {
                        self.bytes += self.upload_bytes();
                        let info = self.server.workunit(wu).clone();
                        let _ = self.assim_tx.send(AssimTask {
                            wu,
                            host,
                            epoch: info.epoch,
                            shard_id: info.shard_id,
                            client: params,
                            accepted_at: now,
                        });
                    }
                    // The upload happened and is banked for quorum: its
                    // bytes count, but nothing is assimilated yet.
                    ReportStatus::Pending => {
                        self.bytes += self.upload_bytes();
                    }
                    ReportStatus::Stale => {}
                }
                None
            }
            ToServer::Assimilated {
                wu,
                host,
                epoch,
                shard_id,
                acc,
                accepted_at,
            } => {
                self.assimilations += 1;
                self.telemetry
                    .registry()
                    .histogram_with(ASSIM_LATENCY_S, Histogram::latency_bounds)
                    .observe((now - accepted_at).max(0.0));
                if self.telemetry.tracing() {
                    // Causal trace: the assimilate stage closes the
                    // workunit's dispatch → … → assimilate chain.
                    self.telemetry.trace_span(
                        now.as_secs(),
                        TraceStage::Assimilate,
                        wu.0,
                        u64::from(host.0),
                        (now - accepted_at).max(0.0),
                        vec![
                            ("epoch", (epoch as u64).into()),
                            ("shard", (shard_id as u64).into()),
                            ("acc", f64::from(acc).into()),
                        ],
                    );
                }
                event!(
                    self.telemetry,
                    Debug,
                    "assimilated",
                    wu = wu.0,
                    epoch = epoch,
                    shard = shard_id,
                    acc = acc
                );
                let mut finished = false;
                if epoch == self.epoch {
                    self.done.push((shard_id, acc));
                    if self.done.len() == self.cfg.job.shards {
                        finished = self.finish_epoch();
                    }
                }
                if let Some(every) = self.cfg.checkpoint_every_assims {
                    if self.assimilations.is_multiple_of(every) {
                        self.write_checkpoint();
                    }
                }
                if finished {
                    return Some(Stop::Finished);
                }
                if self
                    .cfg
                    .halt_after_assims
                    .is_some_and(|h| self.assimilations >= h)
                {
                    self.write_checkpoint();
                    return Some(Stop::Halted);
                }
                None
            }
        }
    }

    /// Closes out the current epoch; returns `true` when the job is over.
    fn finish_epoch(&mut self) -> bool {
        let accs: Vec<f32> = self.done.iter().map(|d| d.1).collect();
        let mean = accs.iter().sum::<f32>() / accs.len() as f32;
        let min = accs.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = accs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let sm = self.server.metrics();
        self.stats.push(RuntimeEpoch {
            epoch: self.epoch,
            alpha: self.cfg.job.alpha.alpha(self.epoch),
            end_wall_s: self.wall_base_s + self.clock.elapsed_s(),
            mean_val_acc: mean,
            min_val_acc: min,
            max_val_acc: max,
            assimilated: accs.len(),
            lost_updates: self.assim.lost_updates(),
            timeouts: sm.timeouts,
            reassignments: sm.reassignments,
        });
        event!(
            self.telemetry,
            Info,
            "epoch_finished",
            epoch = self.epoch,
            mean_val_acc = mean,
            assimilated = accs.len()
        );
        self.done.clear();

        let reached = self
            .cfg
            .job
            .target_accuracy
            .map(|t| mean >= t)
            .unwrap_or(false);
        if reached || self.epoch >= self.cfg.job.epochs {
            return true;
        }

        // Next epoch: publish the server parameters as this epoch's
        // fetchable snapshot (Eq. (2)'s W_{s,e-1}) and hand the middleware
        // the shard-version manifest its workunits will carry.
        self.epoch += 1;
        let (params, manifest) = self.assim.read_params();
        self.service
            .publish_snapshot(self.epoch as u64, &params, &manifest);
        let now = self.clock.now();
        self.server.add_epoch_sharded(
            self.epoch,
            self.cfg.job.shards,
            &ShardManifest(manifest),
            now,
        );
        false
    }

    /// Summarizes live coordinator state into the `/status` document: job
    /// progress, fleet health, queue backlog, and parameter-service shard
    /// versions — read-only over state the coordinator already owns.
    pub(crate) fn build_status(&self, done: bool) -> StatusSnapshot {
        let now = self.clock.now();
        let ops = self.service.ops();
        let mut ps = PsStatus::from_versions(self.assim.versions());
        ps.fetches = ops.fetches;
        ps.shards_sent = ops.shards_sent;
        ps.cache_hits = ops.cache_hits;
        ps.pushes = ops.pushes;
        ps.bytes_rx = ops.bytes_rx;
        ps.bytes_tx = ops.bytes_tx;
        let codec_ops = self.service.codec_ops();
        ps.bytes_saved = codec_ops.bytes_saved;
        ps.compression_ratio = if ops.bytes_tx > 0 {
            (ops.bytes_tx + codec_ops.bytes_saved) as f64 / ops.bytes_tx as f64
        } else {
            1.0
        };
        StatusSnapshot {
            t_s: self.wall_base_s + self.clock.elapsed_s(),
            label: self.cfg.job.pct_label(),
            epochs_done: self.stats.len() as u32,
            epochs_total: self.cfg.job.epochs as u32,
            open_workunits: self.server.open_count(),
            queue_depth: self.server.queue_depth(),
            assimilations: self.assimilations,
            epoch_acc: self
                .stats
                .iter()
                .map(|e| f64::from(e.mean_val_acc))
                .collect(),
            fleet: FleetStatus::from_hosts(self.server.hosts(), now),
            server: self.server.metrics(),
            ps,
            done,
        }
    }

    /// Publishes a fresh status snapshot into the ops hub, if one is
    /// attached. Pure state summarization — no RNG, no telemetry events —
    /// so attaching an ops surface never perturbs a trajectory.
    pub(crate) fn publish_ops(&self, done: bool) {
        if let Some(hub) = &self.ops {
            hub.publish(self.build_status(done));
        }
    }

    /// Event-loop beat: publish at most every [`OPS_PUBLISH_EVERY_S`]
    /// clock seconds.
    fn maybe_publish_ops(&mut self) {
        if self.ops.is_none() {
            return;
        }
        let elapsed = self.clock.elapsed_s();
        if elapsed - self.last_ops_publish_s >= OPS_PUBLISH_EVERY_S {
            self.last_ops_publish_s = elapsed;
            self.publish_ops(false);
        }
    }

    /// Total payload bytes: channel uploads counted here plus the wire
    /// bytes the parameter service moved (fetch requests and shard blobs).
    fn total_bytes(&self) -> u64 {
        let ops = self.service.ops();
        self.bytes + ops.bytes_rx + ops.bytes_tx
    }

    /// Bytes one result upload would occupy on the wire under the active
    /// codec. Uploads travel an in-process channel here, so this is the
    /// accounting model: `Raw` charges the exact legacy VCP1 frame size,
    /// lossy codecs their worst-case blob size.
    fn upload_bytes(&self) -> u64 {
        self.cfg.codec.blob_len(self.param_count) as u64
    }

    /// Fires the interval checkpoint timer when its due second has passed,
    /// then re-arms it relative to the current reading — wall-clock in the
    /// threaded runtime, virtual time in the simulation.
    pub(crate) fn maybe_timed_checkpoint(&mut self) {
        let Some(every) = self.cfg.checkpoint_every_s else {
            return;
        };
        let elapsed = self.clock.elapsed_s();
        if self.next_checkpoint_s.is_some_and(|due| elapsed >= due) {
            self.write_checkpoint();
            self.next_checkpoint_s = Some(elapsed + every);
        }
    }

    /// Serializes the current state to the configured path (no-op without
    /// one). I/O errors become `checkpoint_write_failed` telemetry events,
    /// not fatal: losing a checkpoint must not kill a healthy run.
    pub(crate) fn write_checkpoint(&mut self) {
        let Some(path) = self.cfg.checkpoint_path.clone() else {
            return;
        };
        let snapshot = self
            .service
            .snapshot_params(self.epoch as u64)
            .expect("snapshot exists for the current epoch");
        let (params, _) = self.assim.read_params();
        let mut ck = Checkpoint {
            version: CHECKPOINT_VERSION,
            cfg: (*self.cfg).clone(),
            epoch: self.epoch,
            snapshot,
            params,
            done: self.done.clone(),
            stats: self.stats.clone(),
            assimilations: self.assimilations,
            bytes_transferred: self.total_bytes(),
            wall_s: self.wall_base_s + self.clock.elapsed_s(),
            digest: 0,
        };
        ck.seal();
        match ck.save(&path) {
            Ok(()) => event!(
                self.telemetry,
                Info,
                "checkpoint_written",
                path = path.as_str(),
                epoch = self.epoch,
                assimilations = self.assimilations
            ),
            Err(e) => event!(
                self.telemetry,
                Warn,
                "checkpoint_write_failed",
                path = path.as_str(),
                err = e
            ),
        }
    }
}
