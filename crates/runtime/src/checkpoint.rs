//! Checkpoint format and (atomic) disk I/O.
//!
//! A checkpoint captures everything the coordinator needs to continue an
//! interrupted run mid-epoch: the run configuration, the in-progress
//! epoch's parameter snapshot (what un-assimilated subtasks must train
//! from), the *current* server parameters (what already-assimilated results
//! blended into), which shards already assimilated, and the completed-epoch
//! series. Client results themselves are never checkpointed — subtask
//! training is deterministic per `(seed, epoch, shard)`, so lost in-flight
//! work is simply recomputed, exactly like a BOINC re-issue.
//!
//! Serialization is `serde_json`; `f32` parameters survive the round trip
//! exactly (they widen to `f64` losslessly and print shortest-round-trip).
//! An FNV-1a digest over the *entire* serialized checkpoint (computed with
//! the digest field zeroed) guards against truncation, bit-flips and
//! hand-edits anywhere in the file — config, counters and epoch series
//! included, not just the parameter vectors.

use crate::config::RuntimeConfig;
use crate::report::RuntimeEpoch;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Bumped on incompatible layout changes. Version 2 widened the digest from
/// parameters-only to the whole serialized file.
pub const CHECKPOINT_VERSION: u32 = 2;

/// FNV-1a over a byte stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A point-in-time capture of a running job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Layout version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The full run configuration, so `Runtime::resume` needs nothing else.
    pub cfg: RuntimeConfig,
    /// The in-progress epoch (1-based).
    pub epoch: usize,
    /// The epoch-start parameter snapshot (Eq. (2)'s `W_{s,e-1}`) the
    /// epoch's remaining subtasks must train from.
    pub snapshot: Vec<f32>,
    /// The current server parameters (snapshot plus the epoch's
    /// assimilations so far).
    pub params: Vec<f32>,
    /// `(shard, post-assimilation validation accuracy)` for shards already
    /// assimilated this epoch.
    pub done: Vec<(usize, f32)>,
    /// Completed epochs.
    pub stats: Vec<RuntimeEpoch>,
    /// Total assimilations so far (drives the checkpoint cadence across
    /// resumes).
    pub assimilations: u64,
    /// Parameter bytes transferred so far.
    pub bytes_transferred: u64,
    /// Wall-clock seconds consumed so far (the resumed clock starts here).
    pub wall_s: f64,
    /// FNV-1a digest over the whole checkpoint as serialized with this
    /// field set to zero.
    pub digest: u64,
}

/// The digest field's serialized marker. `digest` is the struct's last
/// field, so the canonical text ends `…,"digest":N}` and `rfind` always
/// locates the field itself, never a string that mentions it.
const DIGEST_FIELD: &str = "\"digest\":";

impl Checkpoint {
    /// The digest of this checkpoint's canonical serialization with the
    /// digest field zeroed — exactly the bytes [`Checkpoint::load`]
    /// verifies. `serde_json` emits struct fields in declaration order and
    /// floats shortest-round-trip, so the bytes are stable across
    /// save/load cycles.
    fn body_digest(&self) -> u64 {
        let mut body = self.clone();
        body.digest = 0;
        let json = serde_json::to_string(&body).expect("checkpoint serializes");
        fnv1a(json.as_bytes())
    }

    /// Computes and installs the digest for the current contents. Call
    /// after any mutation, before [`Checkpoint::save`].
    pub fn seal(&mut self) {
        self.digest = self.body_digest();
    }

    /// Writes atomically: serialize to `<path>.tmp`, then rename over
    /// `path`, so a crash mid-write never leaves a torn checkpoint. The
    /// digest is recomputed over the exact bytes written (digest field
    /// zeroed), so verification at load works on raw file bytes — any
    /// single-byte substitution anywhere in the file is detected (FNV-1a
    /// over a same-length substitution is injective per position).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        let mut body = self.clone();
        body.digest = 0;
        let json = serde_json::to_string(&body).map_err(|e| e.to_string())?;
        let h = fnv1a(json.as_bytes());
        let at = json
            .rfind(DIGEST_FIELD)
            .ok_or("checkpoint serialization lost its digest field")?;
        let sealed = format!("{}{h}}}", &json[..at + DIGEST_FIELD.len()]);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, sealed).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))
    }

    /// Loads and verifies a checkpoint. The digest check runs over the raw
    /// bytes as read (with the digest value textually zeroed), before any
    /// JSON parsing, so corruption is reported as corruption rather than
    /// as whatever parse error it happens to cause.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let json =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let at = json
            .rfind(DIGEST_FIELD)
            .ok_or("checkpoint digest field missing: file corrupted")?;
        let num_start = at + DIGEST_FIELD.len();
        let num_len = json[num_start..]
            .find('}')
            .ok_or("checkpoint digest unterminated: file corrupted")?;
        let claimed: u64 = json[num_start..num_start + num_len]
            .parse()
            .map_err(|_| "checkpoint digest unreadable: file corrupted".to_string())?;
        let zeroed = format!("{}0{}", &json[..num_start], &json[num_start + num_len..]);
        if fnv1a(zeroed.as_bytes()) != claimed {
            return Err("checkpoint digest mismatch: file corrupted".into());
        }
        let ck: Checkpoint = serde_json::from_str(&json).map_err(|e| e.to_string())?;
        if ck.version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {} != supported {CHECKPOINT_VERSION}",
                ck.version
            ));
        }
        if ck.snapshot.len() != ck.params.len() {
            return Err("checkpoint snapshot/params length mismatch".into());
        }
        ck.cfg.validate()?;
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut ck = Checkpoint {
            version: CHECKPOINT_VERSION,
            cfg: RuntimeConfig::test_small(5),
            epoch: 2,
            snapshot: vec![0.1, -0.25, 1e-7],
            params: vec![0.11, -0.26, 2e-7],
            done: vec![(0, 0.3), (4, 0.31)],
            stats: Vec::new(),
            assimilations: 10,
            bytes_transferred: 1234,
            wall_s: 3.5,
            digest: 0,
        };
        ck.seal();
        ck
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let dir = std::env::temp_dir();
        let path = dir.join("vc_runtime_ck_roundtrip.json");
        let ck = sample();
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(ck, back, "f32 parameters must round-trip bit-exactly");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = std::env::temp_dir();
        let path = dir.join("vc_runtime_ck_corrupt.json");
        let ck = sample();
        ck.save(&path).unwrap();
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("-0.25", "-0.75");
        std::fs::write(&path, tampered).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.contains("digest"), "got: {err}");
        std::fs::remove_file(&path).ok();
    }
}
