//! Deterministic simulation testing (DST) for the volunteer-fleet runtime.
//!
//! FoundationDB-style: the *same* coordinator state machine, worker fault
//! arithmetic, assimilation paths and checkpoint timer that the threaded
//! runtime runs on OS threads are executed here single-threaded, under a
//! [`vc_middleware::VirtualClock`] and the seeded [`StepScheduler`]. Every
//! race, straggler, timeout, preemption and message reordering is then a
//! pure function of `(Scenario, seed)`:
//!
//! - **replayable** — a failing chaos run re-executes bit-for-bit from its
//!   seed, no wall-clock timeouts or OS scheduling involved;
//! - **fast** — a minute of simulated deadlines costs microseconds, so a
//!   32-seed sweep of fleet-kill scenarios finishes in seconds;
//! - **checkable** — the parameter store records its operation history
//!   (see [`vc_kvstore::history`]), and [`SimOutcome::verify_consistency`]
//!   asserts the mode's contract on every run: strong histories must admit
//!   a sequential witness, eventual histories must recount exactly the
//!   lost updates [`vc_kvstore::StoreMetrics`] claims.
//!
//! The entry point is [`run_scenario`]; [`sweep`] runs a seed range and
//! panics with the offending seed in the message, so any CI failure is a
//! one-command local replay.

use crate::config::RuntimeConfig;
use crate::coordinator::{Coordinator, Stop};
use crate::fault::{ByzantineMode, FaultPlan, FaultStats};
use crate::protocol::{AssimTask, ToServer, ToWorker};
use crate::report::{RuntimeReport, DELAY_LINE_DELAY_S, WORKER_TRAIN_S};
use crate::scheduler::StepScheduler;
use crate::worker::WorkerCore;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::Rng;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use vc_asgd::{train_client_replica, warm_start_params};
use vc_data::{Dataset, ShardSet};
use vc_kvstore::{check_sequential, count_lost_updates, Consistency, HistoryEvent, VersionedStore};
use vc_middleware::{BoincServer, Clock, HostId, ShardManifest, VirtualClock, WuId};
use vc_nn::metrics::evaluate;
use vc_nn::Sequential;
use vc_ps::codec::apply_update_roundtrip;
use vc_ps::{MemClient, PsService, ShardCache, ShardSnapshot, ShardedAssimilator};
use vc_simnet::SimTime;
use vc_telemetry::{event, Histogram, Telemetry, TraceStage};

/// One deterministic chaos scenario: a runtime configuration plus the
/// virtual-time costs of the things that take real time on threads.
///
/// `seed` drives the [`StepScheduler`] (scheduling jitter + same-instant
/// picks) and, via [`Scenario::new`], the job's data/model seed — so one
/// number names the entire run.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The replay handle: scheduler seed (and default job seed).
    pub seed: u64,
    /// The full runtime configuration (job, faults, checkpoints). The
    /// simulation honors the same fields the threaded runtime does;
    /// `max_wall_s` bounds *virtual* seconds here.
    pub cfg: RuntimeConfig,
    /// Base virtual seconds one subtask's training occupies a worker.
    pub train_s: f64,
    /// Straggler spread: per-subtask extra uniform in `[0, this]`, drawn
    /// from the worker's private RNG stream.
    pub train_jitter_s: f64,
    /// Virtual seconds between an assimilation's begin (stale read) and
    /// commit (write-back) — the race window eventual mode loses updates
    /// in.
    pub assim_s: f64,
    /// Cadence of the coordinator's housekeeping tick (timeout scans,
    /// checkpoint timer, `max_wall_s` safety net).
    pub tick_s: f64,
    /// Scheduling-latency bound the [`StepScheduler`] adds to every event.
    pub sched_jitter_s: f64,
    /// Attach an in-memory [`vc_ops::OpsHub`] to the run: the coordinator
    /// publishes a status snapshot on every housekeeping tick, and
    /// [`SimOutcome::ops`] exposes the hub so tests can call the same
    /// endpoint router a live HTTP scrape would hit — deterministically.
    pub ops: bool,
}

impl Scenario {
    /// The test-scale scenario: `seed` names the schedule *and* the job's
    /// data/model seed, faults off, virtual costs sized so assignment
    /// timeouts (2 s) catch dead workers without firing on stragglers.
    pub fn new(seed: u64) -> Self {
        let mut cfg = RuntimeConfig::test_small(seed);
        cfg.poll_interval_s = 0.05;
        Scenario {
            seed,
            cfg,
            train_s: 0.8,
            train_jitter_s: 0.4,
            assim_s: 0.05,
            tick_s: 0.25,
            sched_jitter_s: 0.002,
            ops: false,
        }
    }

    /// Enables causal workunit tracing (`cfg.trace`): dispatch → fetch →
    /// train → upload → validate → assimilate spans into the flight
    /// recorder, timestamped by the virtual clock.
    pub fn tracing(mut self, on: bool) -> Self {
        self.cfg.trace = on;
        self
    }

    /// Attaches the in-memory ops hub (see [`Scenario::ops`] field docs).
    pub fn ops(mut self, on: bool) -> Self {
        self.ops = on;
        self
    }

    /// Sets the parameter-transfer codec (`cfg.codec`). Lossy modes also
    /// install the tolerance comparator for result quorums.
    pub fn codec(mut self, codec: vc_ps::Codec) -> Self {
        self.cfg.codec = codec;
        self
    }

    /// Sets the worker (client) count `Cn`.
    pub fn cn(mut self, cn: usize) -> Self {
        self.cfg.job.cn = cn;
        self
    }

    /// Sets the parameter-server count `Pn`.
    pub fn pn(mut self, pn: usize) -> Self {
        self.cfg.job.pn = pn;
        self
    }

    /// Sets the per-host slot cap `Tn`.
    pub fn tn(mut self, tn: usize) -> Self {
        self.cfg.job.tn = tn;
        self
    }

    /// Sets the epoch count.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.cfg.job.epochs = epochs;
        self
    }

    /// Sets the store consistency mode.
    pub fn consistency(mut self, mode: Consistency) -> Self {
        self.cfg.job.consistency = mode;
        self
    }

    /// Sets the parameter-service shard count `P`.
    pub fn ps_shards(mut self, p: usize) -> Self {
        self.cfg.job.ps_shards = p;
        self
    }

    /// Uses a synthesized heavy-tailed volunteer population for the fleet
    /// ([`vc_simnet::generated_fleet`]) instead of the Table I catalog —
    /// the 10k–100k-host fleets of the scale sweeps. `fleet_seed` names
    /// the population independently of the schedule seed.
    pub fn fleet_generated(mut self, fleet_seed: u64) -> Self {
        self.cfg.job.fleet = vc_asgd::FleetKind::Generated { seed: fleet_seed };
        self
    }

    /// Sets the idle-worker poll interval. Large fleets need a coarser
    /// cadence than the test default (0.05 s) or idle polling dominates
    /// the event budget.
    pub fn poll_interval(mut self, s: f64) -> Self {
        self.cfg.poll_interval_s = s;
        self
    }

    /// Installs a fault plan (its `seed` also feeds the per-worker RNG
    /// streams).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Sets the replication factor (replicas issued per workunit).
    pub fn replication(mut self, k: u32) -> Self {
        self.cfg.job.middleware.replication = k;
        self
    }

    /// Sets the validation quorum (agreeing results required to accept a
    /// workunit).
    pub fn quorum(mut self, m: u32) -> Self {
        self.cfg.job.middleware.quorum = m;
        self
    }

    /// Marks `hosts` as byzantine: they train honestly, then corrupt every
    /// result they upload in the given mode.
    pub fn byzantine(mut self, hosts: Vec<u32>, mode: ByzantineMode) -> Self {
        self.cfg.faults.byzantine_hosts = hosts;
        self.cfg.faults.byzantine_mode = mode;
        self
    }

    /// Preempts the first `ceil(frac · cn)` hosts on their `nth`
    /// assignment, seeding the plan from the scenario seed.
    pub fn kill_fraction(mut self, frac: f64, nth: u64) -> Self {
        self.cfg.faults.kill_hosts = FaultPlan::fraction_of(self.cfg.job.cn, frac);
        self.cfg.faults.kill_on_nth_assignment = nth;
        self.cfg.faults.seed = self.seed;
        self
    }

    /// Brings killed hosts back after `delay_s` virtual seconds.
    pub fn respawn_after(mut self, delay_s: f64) -> Self {
        self.cfg.faults.respawn_after_s = Some(delay_s);
        self
    }

    /// Routes worker→server messages through the delay line: uniform
    /// delays in `[0, max_s]`, so messages overtake each other.
    pub fn delays(mut self, max_s: f64) -> Self {
        self.cfg.faults.max_msg_delay_s = max_s;
        self.cfg.faults.seed = self.seed;
        self
    }

    /// Enables the virtual-time checkpoint timer.
    pub fn checkpoint_every(mut self, every_s: f64, path: impl Into<String>) -> Self {
        self.cfg.checkpoint_every_s = Some(every_s);
        self.cfg.checkpoint_path = Some(path.into());
        self
    }

    /// Cross-field validation (config plus the sim-only knobs).
    pub fn validate(&self) -> Result<(), String> {
        self.cfg.validate()?;
        for (name, v) in [
            ("train_s", self.train_s),
            ("assim_s", self.assim_s),
            ("tick_s", self.tick_s),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(format!("invalid {name} {v}"));
            }
        }
        for (name, v) in [
            ("train_jitter_s", self.train_jitter_s),
            ("sched_jitter_s", self.sched_jitter_s),
        ] {
            if v < 0.0 || !v.is_finite() {
                return Err(format!("invalid {name} {v}"));
            }
        }
        Ok(())
    }
}

/// Everything a finished deterministic run yields: the report the threaded
/// runtime would have produced, plus the store's recorded operation
/// history.
pub struct SimOutcome {
    /// The consistency mode the run used (decides which checker applies).
    pub consistency: Consistency,
    /// The run report — byte-identical across replays of the same
    /// `(Scenario, seed)`.
    pub report: RuntimeReport,
    /// The store's per-key serialization-order operation log.
    pub history: Vec<HistoryEvent>,
    /// The run's telemetry hub: the flight recorder holds the event trace
    /// (virtual-clock timestamps, so replays dump byte-identical JSONL).
    pub telemetry: Telemetry,
    /// The in-memory ops hub, when the scenario enabled one
    /// ([`Scenario::ops`]): every endpoint a live HTTP server would serve,
    /// as pure in-memory calls over deterministic state.
    pub ops: Option<Arc<vc_ops::OpsHub>>,
    /// Codec-layer counters from the parameter service (bytes saved,
    /// deltas shipped). Kept out of [`RuntimeReport`] so `Raw` reports
    /// stay byte-identical to the pre-codec format.
    pub ps_codec_ops: vc_ps::CodecOps,
}

impl SimOutcome {
    /// Canonical JSON of the report, for byte-identity assertions.
    pub fn report_json(&self) -> String {
        serde_json::to_string(&self.report).expect("report serializes")
    }

    /// Independent recount of lost updates from the history's versions.
    pub fn lost_updates_recount(&self) -> u64 {
        count_lost_updates(&self.history)
    }

    /// Asserts the consistency mode's contract on the recorded history:
    ///
    /// - both modes: the history's independent lost-update recount must
    ///   equal the `StoreMetrics` counter exactly;
    /// - strong: the history must admit a sequential witness (and thus
    ///   zero lost updates);
    /// - eventual: clobbers are permitted — the recount cross-check above
    ///   is the whole claim.
    pub fn verify_consistency(&self) -> Result<(), String> {
        let metric = self.report.store_ops.lost_updates;
        let recount = self.lost_updates_recount();
        if recount != metric {
            return Err(format!(
                "history recounts {recount} lost updates but StoreMetrics claims {metric}"
            ));
        }
        if self.consistency == Consistency::Strong {
            check_sequential(&self.history).map_err(|e| format!("strong history rejected: {e}"))?;
            if metric != 0 {
                return Err(format!("strong run lost {metric} updates"));
            }
        }
        Ok(())
    }
}

/// A simulated worker: the same [`WorkerCore`] the threaded worker runs,
/// plus the liveness state its thread encodes implicitly and the same
/// parameter-service client + sticky shard cache. The in-memory client is
/// synchronous — a fetch is a plain call, no events and no RNG draws — so
/// adding the parameter service leaves every schedule untouched.
struct SimWorker {
    core: WorkerCore,
    state: WState,
    ps: MemClient,
    cache: ShardCache,
    /// Error-feedback residual for the worker's upload stream under a
    /// lossy codec (empty under `Raw`), plus reusable codec scratch.
    upload_residual: Vec<f32>,
    x_scratch: Vec<f32>,
    y_scratch: Vec<f32>,
    blob_scratch: Vec<u8>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum WState {
    Alive,
    AwaitingRespawn,
    Gone,
}

/// One virtual parameter-server slot of the `Pn` pool.
struct Slot {
    eval: Sequential,
    busy: Option<InFlight>,
}

/// An assimilation between begin and commit. `begun` holds the stale
/// per-shard snapshot in eventual mode; strong mode reads inside the
/// commit transactions.
struct InFlight {
    task: AssimTask,
    begun: Option<ShardSnapshot>,
}

/// The simulation's event alphabet.
enum Ev {
    /// Worker `host` wakes and requests work.
    Poll(u32),
    /// A worker→server message reaches the coordinator (possibly after a
    /// delay-line hold).
    Deliver(ToServer),
    /// Worker `host` finishes training `wu` after its virtual compute
    /// time.
    TrainDone {
        host: u32,
        wu: WuId,
        params: Vec<f32>,
    },
    /// Host `host`'s replacement instance comes up.
    Respawn(u32),
    /// Parameter-server slot `slot` commits its in-flight assimilation.
    Commit(usize),
    /// Coordinator housekeeping: timeout scan, checkpoint timer, safety
    /// net.
    Tick,
}

struct Sim {
    sc: Scenario,
    sched: StepScheduler<Ev>,
    coord: Coordinator<VirtualClock>,
    workers: Vec<SimWorker>,
    worker_rxs: Vec<Receiver<ToWorker>>,
    assim_rx: Receiver<AssimTask>,
    slots: Vec<Slot>,
    assim_queue: VecDeque<AssimTask>,
    shards: Arc<ShardSet>,
    val_eval: Arc<Dataset>,
    fstats: Arc<FaultStats>,
    /// Keeps the coordinator's inbox formally connected (never read: the
    /// sim calls `Coordinator::handle` directly).
    _server_tx: Sender<ToServer>,
}

impl Sim {
    fn run_loop(&mut self) -> Stop {
        loop {
            let Some((_, ev)) = self.sched.next() else {
                // Nothing scheduled anywhere: every actor is idle forever,
                // so the job can never finish.
                return Stop::Halted;
            };
            if let Some(stop) = self.exec(ev) {
                return stop;
            }
        }
    }

    fn exec(&mut self, ev: Ev) -> Option<Stop> {
        match ev {
            Ev::Poll(h) => {
                if self.workers[h as usize].state == WState::Alive {
                    self.send_to_server(h, ToServer::RequestWork { host: HostId(h) });
                }
                None
            }
            Ev::Deliver(msg) => {
                // Mirror the threaded event loop: deadlines are scanned
                // before each message is served.
                let now = self.sched.now();
                self.coord.server.scan_timeouts(now);
                // Only a work request is answered with a worker-directed
                // reply (Assign/NoWork); every other message produces at
                // most assimilation traffic. Remembering the addressee
                // keeps the post-handle drain O(1) instead of O(fleet).
                let reply_to = match &msg {
                    ToServer::RequestWork { host } => Some(host.0),
                    _ => None,
                };
                let stop = self.coord.handle(msg);
                self.pump(reply_to);
                stop
            }
            Ev::TrainDone { host, wu, params } => {
                if self.workers[host as usize].state == WState::Alive {
                    let delay = self.send_to_server(
                        host,
                        ToServer::Result {
                            host: HostId(host),
                            wu,
                            params,
                        },
                    );
                    if self.coord.telemetry.tracing() {
                        // The upload occupies the delay-line hold (zero
                        // without one) and ends when the message lands.
                        let now = self.sched.now().as_secs();
                        self.coord.telemetry.trace_span(
                            now + delay,
                            TraceStage::Upload,
                            wu.0,
                            u64::from(host),
                            delay,
                            Vec::new(),
                        );
                    }
                    // The threaded worker loops straight back into a poll
                    // after uploading.
                    self.sched.schedule_in(0.0, Ev::Poll(host));
                }
                None
            }
            Ev::Respawn(h) => {
                let w = &mut self.workers[h as usize];
                if w.state == WState::AwaitingRespawn {
                    w.core.respawn();
                    w.state = WState::Alive;
                    self.fstats.respawns.fetch_add(1, Ordering::Relaxed);
                    event!(
                        self.coord.telemetry,
                        Info,
                        "worker_respawn",
                        host = h,
                        life = w.core.life
                    );
                    self.sched.schedule_in(0.0, Ev::Poll(h));
                }
                None
            }
            Ev::Commit(slot) => {
                self.commit(slot);
                None
            }
            Ev::Tick => {
                let now = self.sched.now();
                self.coord.server.scan_timeouts(now);
                self.coord.maybe_timed_checkpoint();
                // Per-tick status publish, the sim's analogue of the
                // threaded event loop's throttled publish. Pure state
                // summarization: no RNG, no events, so attaching the ops
                // hub never perturbs a trajectory.
                self.coord.publish_ops(false);
                if self.coord.clock.elapsed_s() > self.coord.cfg.max_wall_s {
                    self.coord.write_checkpoint();
                    return Some(Stop::Halted);
                }
                self.sched.schedule_in(self.sc.tick_s, Ev::Tick);
                None
            }
        }
    }

    /// Sends a worker message toward the coordinator — directly, or with
    /// the delay line's uniform hold drawn from the worker's own RNG
    /// stream (the exact draw `Outbox::Delayed` makes on threads).
    /// Returns the hold, so the caller can stamp an upload span with it.
    fn send_to_server(&mut self, host: u32, msg: ToServer) -> f64 {
        let max = self.coord.cfg.faults.max_msg_delay_s;
        let delay = if max > 0.0 {
            self.fstats.delayed_msgs.fetch_add(1, Ordering::Relaxed);
            let d = self.workers[host as usize].core.rng.gen_range(0.0..=max);
            self.coord
                .telemetry
                .registry()
                .histogram_with(DELAY_LINE_DELAY_S, Histogram::latency_bounds)
                .observe(d);
            d
        } else {
            0.0
        };
        self.sched.schedule_in(delay, Ev::Deliver(msg));
        delay
    }

    /// Drains everything the coordinator just produced: assimilation tasks
    /// into the virtual `Pn` pool, replies into the worker state machines.
    ///
    /// `reply_to` is the one host the handled message could have answered
    /// (work requests only — the coordinator sends workers nothing else
    /// mid-run). Every inbox is empty between events, so draining that
    /// single channel is exhaustive and the pump costs O(1) per event
    /// instead of O(fleet).
    fn pump(&mut self, reply_to: Option<u32>) {
        while let Ok(task) = self.assim_rx.try_recv() {
            self.intake(task);
        }
        if let Some(h) = reply_to {
            while let Ok(msg) = self.worker_rxs[h as usize].try_recv() {
                self.worker_recv(h, msg);
            }
        }
    }

    fn worker_recv(&mut self, h: u32, msg: ToWorker) {
        let w = &mut self.workers[h as usize];
        match msg {
            ToWorker::Assign { wu } => {
                if w.state != WState::Alive {
                    // Reply addressed to a dead instance: dropped, and the
                    // server recovers the slot through the timeout path.
                    return;
                }
                if w.core.on_assign(&self.coord.cfg.faults) {
                    self.fstats.kills.fetch_add(1, Ordering::Relaxed);
                    event!(
                        self.coord.telemetry,
                        Info,
                        "worker_kill",
                        host = h,
                        life = w.core.life
                    );
                    match self.coord.cfg.faults.respawn_after_s {
                        Some(d) => {
                            w.state = WState::AwaitingRespawn;
                            self.sched.schedule_in(d, Ev::Respawn(h));
                        }
                        None => w.state = WState::Gone,
                    }
                    return;
                }
                // Fetch exactly the shards the manifest says moved — the
                // same `ShardCache::sync` the threaded worker runs, here
                // as a synchronous call against the in-process service.
                let snapshot = w
                    .cache
                    .sync(wu.epoch as u64, &wu.param_versions.0, &mut w.ps)
                    .expect("sim fetch: a snapshot is published for every generated epoch");
                if self.coord.telemetry.tracing() {
                    // The in-memory fetch is synchronous under virtual
                    // time: an instantaneous span marks the causal step.
                    self.coord.telemetry.trace_span(
                        self.sched.now().as_secs(),
                        TraceStage::Fetch,
                        wu.id.0,
                        u64::from(h),
                        0.0,
                        vec![("epoch", (wu.epoch as u64).into())],
                    );
                }
                let data = &self.shards.shard(wu.shard_id).data;
                let mut params = train_client_replica(
                    &self.coord.cfg.job,
                    snapshot,
                    data,
                    wu.epoch,
                    wu.shard_id,
                );
                // Under a lossy codec the upload is what survives the
                // wire: quantize the trained delta against the fetched
                // snapshot (error feedback carries the dropped mass to
                // this worker's next upload), exactly as the threaded
                // worker does.
                let codec = self.coord.cfg.codec;
                if codec.is_lossy() {
                    apply_update_roundtrip(
                        codec,
                        w.cache.params(),
                        &mut params,
                        &mut w.upload_residual,
                        &mut w.x_scratch,
                        &mut w.blob_scratch,
                        &mut w.y_scratch,
                    );
                }
                // A byzantine host does the work, then lies about it —
                // same corruption point as the threaded worker.
                if let Some(mode) = self.coord.cfg.faults.byzantine(h) {
                    mode.corrupt(h, &mut params);
                }
                let mut dur = self.sc.train_s;
                if self.sc.train_jitter_s > 0.0 {
                    dur += w.core.rng.gen_range(0.0..=self.sc.train_jitter_s);
                }
                // The virtual analogue of the threaded worker's measured
                // training time.
                self.coord
                    .telemetry
                    .registry()
                    .histogram_with(WORKER_TRAIN_S, Histogram::latency_bounds)
                    .observe(dur);
                if self.coord.telemetry.tracing() {
                    // Emitted at schedule time, stamped with the span's
                    // end: the drawn virtual compute time is known now.
                    self.coord.telemetry.trace_span(
                        self.sched.now().as_secs() + dur,
                        TraceStage::Train,
                        wu.id.0,
                        u64::from(h),
                        dur,
                        vec![
                            ("epoch", (wu.epoch as u64).into()),
                            ("shard", (wu.shard_id as u64).into()),
                        ],
                    );
                }
                self.sched.schedule_in(
                    dur,
                    Ev::TrainDone {
                        host: h,
                        wu: wu.id,
                        params,
                    },
                );
            }
            ToWorker::NoWork => {
                let poll = self.coord.cfg.poll_interval_s;
                self.sched.schedule_in(poll, Ev::Poll(h));
            }
            ToWorker::Shutdown => w.state = WState::Gone,
        }
    }

    /// Routes one accepted result to a free parameter-server slot, or
    /// queues it for the first one to finish.
    fn intake(&mut self, task: AssimTask) {
        match self.slots.iter().position(|s| s.busy.is_none()) {
            Some(i) => self.start(i, task),
            None => self.assim_queue.push_back(task),
        }
    }

    fn start(&mut self, slot: usize, task: AssimTask) {
        // Eventual mode reads its (possibly stale) snapshot when the
        // assimilation *starts*; the commit lands `assim_s` later, and
        // anything that commits in between is clobbered — the same race
        // the threaded pool runs, under scheduler control.
        let begun = match self.coord.assim.mode() {
            Consistency::Eventual => Some(self.coord.assim.begin_eventual()),
            Consistency::Strong => None,
        };
        self.slots[slot].busy = Some(InFlight { task, begun });
        self.sched.schedule_in(self.sc.assim_s, Ev::Commit(slot));
    }

    fn commit(&mut self, slot: usize) {
        let InFlight { task, begun } = self.slots[slot]
            .busy
            .take()
            .expect("commit event for an idle slot");
        let updated = match begun {
            Some(snap) => {
                self.coord
                    .assim
                    .commit_eventual(snap, &task.client, task.epoch)
                    .0
            }
            None => self.coord.assim.assimilate_strong(&task.client, task.epoch),
        };
        let s = &mut self.slots[slot];
        s.eval.set_params_flat(&updated);
        let (_, acc) = evaluate(
            &mut s.eval,
            &self.val_eval.images,
            &self.val_eval.labels,
            256,
        );
        if let Some(next) = self.assim_queue.pop_front() {
            self.start(slot, next);
        }
        // The outcome travels through the scheduler like any other message
        // so it interleaves with the rest of the traffic.
        self.sched.schedule_in(
            0.0,
            Ev::Deliver(ToServer::Assimilated {
                wu: task.wu,
                host: task.host,
                epoch: task.epoch,
                shard_id: task.shard_id,
                acc,
                accepted_at: task.accepted_at,
            }),
        );
    }
}

/// Executes one scenario deterministically and returns its outcome. The
/// entire run — every timeout, preemption, reordering and parameter value —
/// is a pure function of the scenario (including its seed).
pub fn run_scenario(sc: &Scenario) -> Result<SimOutcome, String> {
    sc.validate()?;
    let cfg = Arc::new(sc.cfg.clone());
    let job = &cfg.job;

    // --- data (same construction as Runtime::run) ----------------------
    let (train, val, test) = job.data.generate();
    let shards = Arc::new(ShardSet::split(&train, job.shards));
    let val_eval = Arc::new(val.select(&(0..job.val_eval_n).collect::<Vec<_>>()));

    // --- virtual time + telemetry ---------------------------------------
    // The telemetry hub reads the virtual clock from the very first store
    // operation, so every event timestamp and latency observation is a
    // pure function of the schedule — replays dump byte-identical traces.
    let sched = StepScheduler::new(sc.seed, sc.sched_jitter_s);
    let clock = sched.clock();
    let tel = Telemetry::silent();
    tel.set_time_source(Arc::new(clock.clone()));
    tel.set_tracing(cfg.trace);
    let ops_hub = sc.ops.then(|| Arc::new(vc_ops::OpsHub::new(tel.clone())));

    // --- recording parameter store + sharded service --------------------
    let store = Arc::new(VersionedStore::recording().with_telemetry(&tel));
    let mut init = job.model.build(job.seed).params_flat();
    if let Some(warmed) = warm_start_params(job, &shards, &init) {
        init = warmed;
    }
    let param_count = init.len();
    let assim = Arc::new(
        ShardedAssimilator::new(
            store.clone(),
            param_count,
            job.ps_shards,
            job.consistency,
            job.alpha,
        )
        .with_telemetry(&tel),
    );
    assim.seed_params(&init);
    let service = Arc::new(
        PsService::new(assim.clone())
            .with_codec(cfg.codec)
            .with_telemetry(&tel),
    );
    service.publish_snapshot(1, &init, &assim.versions());

    // --- middleware ------------------------------------------------------
    let fleet = job.fleet.build(job.cn);
    let mut server = BoincServer::new(
        job.middleware.clone(),
        fleet.iter().map(|s| (s.clone(), job.tn)).collect(),
    );
    server.set_telemetry(tel.clone());
    if cfg.codec.is_lossy() {
        // Quantization makes honest replicas of the same workunit differ
        // by a few quantization steps; exact-match quorums would reject
        // them all as disagreements.
        let (atol, rtol) = cfg.codec.quorum_tolerance();
        server.set_comparator(Box::new(vc_middleware::ToleranceComparator { atol, rtol }));
    }
    server.add_epoch_sharded(
        1,
        job.shards,
        &ShardManifest(assim.versions()),
        SimTime::ZERO,
    );

    // --- actors ----------------------------------------------------------
    let (server_tx, server_rx) = unbounded();
    let (assim_tx, assim_rx) = unbounded();
    let fstats = Arc::new(FaultStats::default());
    let mut worker_txs = Vec::new();
    let mut worker_rxs = Vec::new();
    for _ in 0..job.cn {
        let (tx, rx) = unbounded();
        worker_txs.push(tx);
        worker_rxs.push(rx);
    }
    let workers = (0..job.cn)
        .map(|h| SimWorker {
            core: WorkerCore::new(HostId(h as u32), cfg.faults.seed),
            state: WState::Alive,
            ps: MemClient::new(service.clone()),
            cache: ShardCache::new(*assim.layout()).with_codec(cfg.codec),
            upload_residual: Vec::new(),
            x_scratch: Vec::new(),
            y_scratch: Vec::new(),
            blob_scratch: Vec::new(),
        })
        .collect();
    let slots = (0..job.pn)
        .map(|_| Slot {
            eval: job.model.build(job.seed),
            busy: None,
        })
        .collect();

    let coord = Coordinator {
        cfg: cfg.clone(),
        server,
        assim: assim.clone(),
        store: store.clone(),
        clock,
        service: service.clone(),
        epoch: 1,
        done: Vec::new(),
        stats: Vec::new(),
        assimilations: 0,
        bytes: 0,
        wall_base_s: 0.0,
        param_count,
        worker_txs,
        inbox: server_rx,
        assim_tx,
        stats_faults: fstats.clone(),
        next_checkpoint_s: cfg.checkpoint_every_s,
        telemetry: tel.clone(),
        ops: ops_hub.clone(),
        last_ops_publish_s: -1.0,
    };

    let mut sim = Sim {
        sc: sc.clone(),
        sched,
        coord,
        workers,
        worker_rxs,
        assim_rx,
        slots,
        assim_queue: VecDeque::new(),
        shards,
        val_eval,
        fstats,
        _server_tx: server_tx,
    };
    for h in 0..job.cn as u32 {
        sim.sched.schedule_in(0.0, Ev::Poll(h));
    }
    sim.sched.schedule_in(sc.tick_s, Ev::Tick);

    let stop = sim.run_loop();
    let (mut report, assim) = sim.coord.finalize(stop);

    // Final full-split evaluation, as in Runtime::run.
    let (params, _) = assim.read_params();
    let mut model = cfg.job.model.build(cfg.job.seed);
    model.set_params_flat(&params);
    let (_, v) = evaluate(&mut model, &val.images, &val.labels, 256);
    let (_, t) = evaluate(&mut model, &test.images, &test.labels, 256);
    report.final_val_acc = v;
    report.final_test_acc = t;

    Ok(SimOutcome {
        consistency: job.consistency,
        report,
        history: store.take_history(),
        telemetry: tel,
        ops: ops_hub,
        ps_codec_ops: service.codec_ops(),
    })
}

/// Verifies one outcome's consistency contract. On failure the flight
/// recorder is dumped to `vc-dst-seed-<seed>.jsonl` in the temp directory —
/// the full event trace of the failing run, with virtual-clock timestamps,
/// so the panic message names a replayable artifact — then panics.
pub fn verify_seed(seed: u64, out: &SimOutcome) {
    if let Err(e) = out.verify_consistency() {
        let path = std::env::temp_dir().join(format!("vc-dst-seed-{seed}.jsonl"));
        let note = match out.telemetry.recorder().dump_to_file(&path) {
            Ok(p) => format!("; flight recorder dumped to {}", p.display()),
            Err(io) => format!("; flight recorder dump failed: {io}"),
        };
        // Also export the Chrome trace_event view so the failing run opens
        // as a waterfall in chrome://tracing / Perfetto.
        let trace_path = std::env::temp_dir().join(format!("vc-dst-seed-{seed}.trace.json"));
        let trace_note = match std::fs::write(
            &trace_path,
            vc_telemetry::chrome_trace_json(&out.telemetry.recorder().events()),
        ) {
            Ok(()) => format!("; chrome trace at {}", trace_path.display()),
            Err(io) => format!("; chrome trace export failed: {io}"),
        };
        panic!("DST seed {seed}: {e}{note}{trace_note} — replay with run_scenario(&make({seed}))");
    }
}

/// Runs `make(seed)` for every seed in the range, verifying each outcome's
/// consistency contract. Any failure panics with the seed in the message,
/// so the exact run replays locally with `run_scenario(&make(seed))`.
pub fn sweep(
    seeds: std::ops::Range<u64>,
    make: impl Fn(u64) -> Scenario,
) -> Vec<(u64, SimOutcome)> {
    seeds
        .map(|seed| {
            let out = run_scenario(&make(seed)).unwrap_or_else(|e| {
                panic!("DST seed {seed}: {e} — replay with run_scenario(&make({seed}))")
            });
            verify_seed(seed, &out);
            (seed, out)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpoint;

    fn tiny(seed: u64) -> Scenario {
        let mut sc = Scenario::new(seed).cn(3).epochs(2);
        sc.cfg.job.val_eval_n = 60;
        sc
    }

    #[test]
    fn fault_free_scenario_finishes_and_learns() {
        let out = run_scenario(&tiny(1)).unwrap();
        assert!(!out.report.halted_early);
        assert_eq!(out.report.epochs.len(), 2);
        for (i, e) in out.report.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i + 1);
            assert_eq!(e.assimilated, 8);
        }
        assert!(out.report.wall_s > 0.0, "virtual time must pass");
        assert!(out.report.final_mean_acc() > 0.15);
        out.verify_consistency().unwrap();
    }

    #[test]
    fn same_seed_is_byte_identical_different_seed_is_not() {
        let a = run_scenario(&tiny(5)).unwrap();
        let b = run_scenario(&tiny(5)).unwrap();
        assert_eq!(
            a.report_json(),
            b.report_json(),
            "replay must be bit-for-bit"
        );
        assert_eq!(a.history, b.history, "down to the store's op history");
        let c = run_scenario(&tiny(6)).unwrap();
        assert_ne!(a.report_json(), c.report_json());
    }

    #[test]
    fn preempted_fleet_recovers_through_virtual_timeouts() {
        let sc = tiny(9).cn(4).kill_fraction(0.3, 2);
        assert_eq!(sc.cfg.faults.kill_hosts.len(), 2);
        let out = run_scenario(&sc).unwrap();
        assert!(!out.report.halted_early, "survivors must finish the job");
        assert_eq!(out.report.kills, 2);
        assert!(out.report.server_metrics.timeouts > 0, "deadlines fired");
        assert!(out.report.server_metrics.reassignments > 0);
        out.verify_consistency().unwrap();
    }

    #[test]
    fn virtual_checkpoint_timer_fires() {
        let path = std::env::temp_dir().join("vc_sim_ck_timer.json");
        std::fs::remove_file(&path).ok();
        let sc = tiny(3).checkpoint_every(2.0, path.to_string_lossy());
        let out = run_scenario(&sc).unwrap();
        assert!(!out.report.halted_early);
        let ck = Checkpoint::load(&path).expect("timer must have written a checkpoint");
        assert!(ck.wall_s >= 2.0, "checkpoint stamped with virtual time");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_invalid_scenarios() {
        let mut sc = tiny(1);
        sc.train_s = 0.0;
        assert!(run_scenario(&sc).is_err());
        let sc = tiny(1).cn(2).kill_fraction(1.0, 1);
        assert!(
            run_scenario(&sc).is_err(),
            "whole-fleet kill without respawn is rejected"
        );
    }
}
