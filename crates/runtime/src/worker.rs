//! The worker (volunteer client) thread.
//!
//! Each worker owns one host identity and runs the BOINC client loop for
//! real: poll the scheduler, train the assigned shard with actual SGD
//! (through the same [`vc_asgd::train_client_replica`] the simulator
//! uses), upload the replica parameters, repeat. A worker executes one
//! subtask at a time; the server-side slot cap (`Tn`) still bounds how much
//! work can be assigned to its host record.
//!
//! Death is silent: a preempted worker simply stops participating, exactly
//! like a terminated spot instance. The server learns only when the
//! assignment's wall-clock deadline passes.
//!
//! The identity/fault-arithmetic part of the loop lives in [`WorkerCore`],
//! which the deterministic simulation (`crate::sim`) drives from its own
//! event loop — threaded and simulated workers share one notion of lives,
//! assignment counts, and per-worker RNG streams, so a fault plan means the
//! same thing in both substrates.

use crate::config::RuntimeConfig;
use crate::fault::{FaultPlan, FaultStats};
use crate::protocol::{ToServer, ToWorker};
use crate::transport::Outbox;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;
use vc_asgd::{train_client_replica_ws, JobConfig};
use vc_data::ShardSet;
use vc_middleware::HostId;
use vc_optim::{StepTimer, TrainWorkspace};
use vc_ps::codec::apply_update_roundtrip;
use vc_ps::{PsClient, ShardCache};
use vc_telemetry::{event, Histogram, Telemetry, TraceStage};

use crate::report::{
    WORKER_FETCH_S, WORKER_POLL_S, WORKER_TRAIN_S, WORKER_TRAIN_STEP_S, WORKER_UPLOAD_S,
};

/// The substrate-independent worker state: identity, life/assignment
/// counters for the fault plan, and the worker's private RNG stream.
pub struct WorkerCore {
    /// This worker's host identity.
    pub id: HostId,
    /// 0 for the original instance, +1 per respawn.
    pub life: u32,
    /// 1-based count of assignments received in the current life.
    pub assignments_this_life: u64,
    /// Per-worker RNG (message-delay draws, sim jitter). Seeded from the
    /// fault-plan seed and the host id, so streams are independent across
    /// workers but identical across substrates.
    pub rng: StdRng,
}

impl WorkerCore {
    /// A fresh worker on its first life.
    pub fn new(id: HostId, fault_seed: u64) -> Self {
        WorkerCore {
            id,
            life: 0,
            assignments_this_life: 0,
            rng: StdRng::seed_from_u64(
                fault_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(id.0)),
            ),
        }
    }

    /// Records one received assignment and returns `true` when the fault
    /// plan says this worker dies instead of executing it.
    pub fn on_assign(&mut self, plan: &FaultPlan) -> bool {
        self.assignments_this_life += 1;
        plan.should_kill(self.id.0, self.life, self.assignments_this_life)
    }

    /// Starts the replacement instance's life.
    pub fn respawn(&mut self) {
        self.life += 1;
        self.assignments_this_life = 0;
    }
}

/// Everything one worker thread needs.
pub struct WorkerCtx {
    /// This worker's host identity.
    pub id: HostId,
    /// Shared run configuration.
    pub cfg: Arc<RuntimeConfig>,
    /// The sharded training set (workers read their assigned shard).
    pub shards: Arc<ShardSet>,
    /// Replies from the coordinator.
    pub cmd_rx: Receiver<ToWorker>,
    /// Uplink to the coordinator (possibly through the delay line).
    pub outbox: Outbox,
    /// Shared fault counters.
    pub stats: Arc<FaultStats>,
    /// The run's telemetry hub (phase timings, kill/respawn events).
    pub telemetry: Telemetry,
    /// Connection to the parameter service (in-memory or TCP).
    pub ps: Box<dyn PsClient>,
    /// Sticky shard cache: only shards whose manifest version moved are
    /// re-fetched across assignments.
    pub cache: ShardCache,
}

/// The worker thread body.
pub fn worker_main(ctx: WorkerCtx) {
    let WorkerCtx {
        id,
        cfg,
        shards,
        cmd_rx,
        outbox,
        stats,
        telemetry,
        mut ps,
        mut cache,
    } = ctx;
    let job: &JobConfig = &cfg.job;
    let mut core = WorkerCore::new(id, cfg.faults.seed);
    let poll = Duration::from_secs_f64(cfg.poll_interval_s);
    let reply_timeout = Duration::from_secs_f64(cfg.reply_timeout_s);
    let poll_h = telemetry
        .registry()
        .histogram_with(WORKER_POLL_S, Histogram::latency_bounds);
    let train_h = telemetry
        .registry()
        .histogram_with(WORKER_TRAIN_S, Histogram::latency_bounds);
    let train_step_h = telemetry
        .registry()
        .histogram_with(WORKER_TRAIN_STEP_S, Histogram::latency_bounds);
    let upload_h = telemetry
        .registry()
        .histogram_with(WORKER_UPLOAD_S, Histogram::latency_bounds);
    let fetch_h = telemetry
        .registry()
        .histogram_with(WORKER_FETCH_S, Histogram::latency_bounds);
    // One workspace per worker thread: after the first subtask warms its
    // pools, steady-state training steps allocate nothing.
    let mut tws = TrainWorkspace::new();
    // Upload-codec state: the error-feedback residual for this worker's
    // upload stream plus reusable scratch (all empty under `Raw`).
    let mut upload_residual: Vec<f32> = Vec::new();
    let (mut x_scratch, mut y_scratch): (Vec<f32>, Vec<f32>) = (Vec::new(), Vec::new());
    let mut blob_scratch: Vec<u8> = Vec::new();

    loop {
        let poll_t0 = telemetry.now_s();
        if outbox
            .send(&mut core.rng, ToServer::RequestWork { host: id })
            .is_err()
        {
            return; // coordinator gone
        }
        let reply = cmd_rx.recv_timeout(reply_timeout);
        if reply.is_ok() {
            // Scheduler round-trip: request sent to reply in hand.
            poll_h.observe((telemetry.now_s() - poll_t0).max(0.0));
        }
        match reply {
            Err(RecvTimeoutError::Disconnected) | Ok(ToWorker::Shutdown) => return,
            Err(RecvTimeoutError::Timeout) => continue, // reply lost somewhere: re-poll
            Ok(ToWorker::NoWork) => std::thread::sleep(poll),
            Ok(ToWorker::Assign { wu }) => {
                if core.on_assign(&cfg.faults) {
                    if !die(&cfg, &cmd_rx, &stats, &telemetry, id, core.life) {
                        return;
                    }
                    core.respawn();
                    continue;
                }
                // Sync the sticky cache against the workunit's manifest:
                // only shards whose version moved cross the wire.
                let fetch_t0 = telemetry.now_s();
                let snapshot = match cache.sync(wu.epoch as u64, &wu.param_versions.0, ps.as_mut())
                {
                    Ok(params) => params,
                    Err(e) => {
                        // A failed fetch drops the assignment; the server
                        // recovers it through the timeout path like any
                        // lost host.
                        event!(
                            telemetry,
                            Warn,
                            "worker_fetch_failed",
                            host = id.0,
                            err = e.to_string()
                        );
                        continue;
                    }
                };
                let fetch_t1 = telemetry.now_s();
                fetch_h.observe((fetch_t1 - fetch_t0).max(0.0));
                if telemetry.tracing() {
                    telemetry.trace_span(
                        fetch_t1,
                        TraceStage::Fetch,
                        wu.id.0,
                        u64::from(id.0),
                        (fetch_t1 - fetch_t0).max(0.0),
                        vec![("epoch", (wu.epoch as u64).into())],
                    );
                }
                let data = &shards.shard(wu.shard_id).data;
                let train_t0 = telemetry.now_s();
                let step_timer = StepTimer {
                    telemetry: &telemetry,
                    histogram: &train_step_h,
                };
                let mut params = train_client_replica_ws(
                    job,
                    snapshot,
                    data,
                    wu.epoch,
                    wu.shard_id,
                    &mut tws,
                    Some(&step_timer),
                );
                let train_t1 = telemetry.now_s();
                train_h.observe((train_t1 - train_t0).max(0.0));
                if telemetry.tracing() {
                    telemetry.trace_span(
                        train_t1,
                        TraceStage::Train,
                        wu.id.0,
                        u64::from(id.0),
                        (train_t1 - train_t0).max(0.0),
                        vec![
                            ("epoch", (wu.epoch as u64).into()),
                            ("shard", (wu.shard_id as u64).into()),
                        ],
                    );
                }
                // Under a lossy codec the upload is what survives the
                // wire: quantize the trained delta against the fetched
                // snapshot; error feedback carries the dropped mass into
                // this worker's next upload.
                if cfg.codec.is_lossy() {
                    apply_update_roundtrip(
                        cfg.codec,
                        cache.params(),
                        &mut params,
                        &mut upload_residual,
                        &mut x_scratch,
                        &mut blob_scratch,
                        &mut y_scratch,
                    );
                }
                // A byzantine host does the work, then lies about it.
                if let Some(mode) = cfg.faults.byzantine(id.0) {
                    mode.corrupt(id.0, &mut params);
                }
                let upload_t0 = telemetry.now_s();
                if outbox
                    .send(
                        &mut core.rng,
                        ToServer::Result {
                            host: id,
                            wu: wu.id,
                            params,
                        },
                    )
                    .is_err()
                {
                    return;
                }
                let upload_t1 = telemetry.now_s();
                upload_h.observe((upload_t1 - upload_t0).max(0.0));
                if telemetry.tracing() {
                    telemetry.trace_span(
                        upload_t1,
                        TraceStage::Upload,
                        wu.id.0,
                        u64::from(id.0),
                        (upload_t1 - upload_t0).max(0.0),
                        Vec::new(),
                    );
                }
            }
        }
    }
}

/// Preemption: the in-hand assignment is dropped without a word. With a
/// respawn delay configured, the thread then impersonates the replacement
/// instance: it waits out the provisioning delay and discards every message
/// addressed to its dead predecessor. Returns `true` when a replacement
/// came up, `false` when the host is gone for good.
fn die(
    cfg: &RuntimeConfig,
    cmd_rx: &Receiver<ToWorker>,
    stats: &FaultStats,
    telemetry: &Telemetry,
    id: HostId,
    life: u32,
) -> bool {
    stats
        .kills
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    event!(telemetry, Info, "worker_kill", host = id.0, life = life);
    let Some(delay_s) = cfg.faults.respawn_after_s else {
        return false;
    };
    std::thread::sleep(Duration::from_secs_f64(delay_s));
    // A fresh instance has no memory of in-flight replies.
    loop {
        match cmd_rx.try_recv() {
            Ok(ToWorker::Shutdown) | Err(TryRecvError::Disconnected) => return false,
            Ok(_) => continue,
            Err(TryRecvError::Empty) => break,
        }
    }
    stats
        .respawns
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    event!(
        telemetry,
        Info,
        "worker_respawn",
        host = id.0,
        life = life + 1
    );
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_counts_assignments_and_dies_on_schedule() {
        let mut plan = FaultPlan::none();
        plan.kill_hosts = vec![3];
        plan.kill_on_nth_assignment = 2;
        let mut core = WorkerCore::new(HostId(3), plan.seed);
        assert!(!core.on_assign(&plan), "first assignment survives");
        assert!(core.on_assign(&plan), "second assignment kills");
        core.respawn();
        assert_eq!((core.life, core.assignments_this_life), (1, 0));
        assert!(!core.on_assign(&plan), "replacement instances are safe");
    }

    #[test]
    fn rng_streams_differ_by_host_but_not_by_call() {
        use rand::Rng;
        let mut a1 = WorkerCore::new(HostId(0), 42);
        let mut a2 = WorkerCore::new(HostId(0), 42);
        let mut b = WorkerCore::new(HostId(1), 42);
        let x1: f64 = a1.rng.gen_range(0.0..1.0);
        let x2: f64 = a2.rng.gen_range(0.0..1.0);
        let y: f64 = b.rng.gen_range(0.0..1.0);
        assert_eq!(
            x1.to_bits(),
            x2.to_bits(),
            "same (seed, host) → same stream"
        );
        assert_ne!(x1.to_bits(), y.to_bits(), "hosts draw independent streams");
    }
}
