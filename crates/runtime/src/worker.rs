//! The worker (volunteer client) thread.
//!
//! Each worker owns one host identity and runs the BOINC client loop for
//! real: poll the scheduler, train the assigned shard with actual SGD
//! (through the same [`vc_asgd::train_client_replica`] the simulator
//! uses), upload the replica parameters, repeat. A worker executes one
//! subtask at a time; the server-side slot cap (`Tn`) still bounds how much
//! work can be assigned to its host record.
//!
//! Death is silent: a preempted worker simply stops participating, exactly
//! like a terminated spot instance. The server learns only when the
//! assignment's wall-clock deadline passes.

use crate::config::RuntimeConfig;
use crate::fault::FaultStats;
use crate::protocol::{ToServer, ToWorker};
use crate::transport::Outbox;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;
use vc_asgd::{train_client_replica, JobConfig};
use vc_data::ShardSet;
use vc_middleware::HostId;

/// Everything one worker thread needs.
pub struct WorkerCtx {
    /// This worker's host identity.
    pub id: HostId,
    /// Shared run configuration.
    pub cfg: Arc<RuntimeConfig>,
    /// The sharded training set (workers read their assigned shard).
    pub shards: Arc<ShardSet>,
    /// Replies from the coordinator.
    pub cmd_rx: Receiver<ToWorker>,
    /// Uplink to the coordinator (possibly through the delay line).
    pub outbox: Outbox,
    /// Shared fault counters.
    pub stats: Arc<FaultStats>,
}

/// The worker thread body.
pub fn worker_main(ctx: WorkerCtx) {
    let WorkerCtx {
        id,
        cfg,
        shards,
        cmd_rx,
        outbox,
        stats,
    } = ctx;
    let job: &JobConfig = &cfg.job;
    let mut delay_rng = StdRng::seed_from_u64(
        cfg.faults
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(id.0)),
    );
    let poll = Duration::from_secs_f64(cfg.poll_interval_s);
    let reply_timeout = Duration::from_secs_f64(cfg.reply_timeout_s);
    let mut life: u32 = 0;
    let mut assignments_this_life: u64 = 0;

    loop {
        if outbox
            .send(&mut delay_rng, ToServer::RequestWork { host: id })
            .is_err()
        {
            return; // coordinator gone
        }
        match cmd_rx.recv_timeout(reply_timeout) {
            Err(RecvTimeoutError::Disconnected) | Ok(ToWorker::Shutdown) => return,
            Err(RecvTimeoutError::Timeout) => continue, // reply lost somewhere: re-poll
            Ok(ToWorker::NoWork) => std::thread::sleep(poll),
            Ok(ToWorker::Assign { wu, snapshot }) => {
                assignments_this_life += 1;
                if cfg.faults.should_kill(id.0, life, assignments_this_life) {
                    if !die(&cfg, &cmd_rx, &stats) {
                        return;
                    }
                    life += 1;
                    assignments_this_life = 0;
                    continue;
                }
                let data = &shards.shard(wu.shard_id).data;
                let params = train_client_replica(job, &snapshot, data, wu.epoch, wu.shard_id);
                if outbox
                    .send(
                        &mut delay_rng,
                        ToServer::Result {
                            host: id,
                            wu: wu.id,
                            params,
                        },
                    )
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// Preemption: the in-hand assignment is dropped without a word. With a
/// respawn delay configured, the thread then impersonates the replacement
/// instance: it waits out the provisioning delay and discards every message
/// addressed to its dead predecessor. Returns `true` when a replacement
/// came up, `false` when the host is gone for good.
fn die(cfg: &RuntimeConfig, cmd_rx: &Receiver<ToWorker>, stats: &FaultStats) -> bool {
    stats
        .kills
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let Some(delay_s) = cfg.faults.respawn_after_s else {
        return false;
    };
    std::thread::sleep(Duration::from_secs_f64(delay_s));
    // A fresh instance has no memory of in-flight replies.
    loop {
        match cmd_rx.try_recv() {
            Ok(ToWorker::Shutdown) | Err(TryRecvError::Disconnected) => return false,
            Ok(_) => continue,
            Err(TryRecvError::Empty) => break,
        }
    }
    stats
        .respawns
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    true
}
