//! Run reports, mirroring `vc-asgd`'s [`vc_asgd::EpochStats`] /
//! [`vc_asgd::JobReport`] with wall-clock seconds in place of simulated
//! hours, plus the fault-injection counters.

use serde::{Deserialize, Serialize};
use vc_middleware::ServerMetrics;

/// Per-epoch statistics of a real threaded run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuntimeEpoch {
    /// Epoch number (1-based).
    pub epoch: usize,
    /// The α this epoch's assimilations used.
    pub alpha: f32,
    /// Wall-clock seconds from job start (cumulative across resumes) when
    /// the epoch's last shard assimilated.
    pub end_wall_s: f64,
    /// Mean validation accuracy over the epoch's assimilations.
    pub mean_val_acc: f32,
    /// Minimum over the epoch's assimilations.
    pub min_val_acc: f32,
    /// Maximum over the epoch's assimilations.
    pub max_val_acc: f32,
    /// Results assimilated this epoch (always equals the shard count).
    pub assimilated: usize,
    /// Cumulative lost updates in the parameter store.
    pub lost_updates: u64,
    /// Cumulative assignment timeouts.
    pub timeouts: u64,
    /// Cumulative reassignments.
    pub reassignments: u64,
}

/// The full report of a [`crate::Runtime`] run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// Experiment label (`P{pn}C{cn}T{tn}`).
    pub label: String,
    /// Per-epoch series.
    pub epochs: Vec<RuntimeEpoch>,
    /// Validation accuracy of the final server parameters (full split).
    pub final_val_acc: f32,
    /// Test accuracy of the final server parameters.
    pub final_test_acc: f32,
    /// Total wall-clock seconds (cumulative across resumes).
    pub wall_s: f64,
    /// Worker threads the run started with.
    pub workers: usize,
    /// Middleware counters.
    pub server_metrics: ServerMetrics,
    /// Store counters `(reads, writes, transactions, lost_updates)`.
    pub store_ops: (u64, u64, u64, u64),
    /// Parameter payload bytes that crossed worker channels.
    pub bytes_transferred: u64,
    /// Workers the fault injector preempted.
    pub kills: u64,
    /// Replacement workers that came up.
    pub respawns: u64,
    /// Messages routed through the delay line.
    pub delayed_msgs: u64,
    /// True when the run stopped before completing (halt hook or the
    /// `max_wall_s` safety net) — final accuracies are still measured on
    /// whatever the server held.
    pub halted_early: bool,
}

impl RuntimeReport {
    /// Mean validation accuracy of the last completed epoch (0 when none).
    pub fn final_mean_acc(&self) -> f32 {
        self.epochs.last().map(|e| e.mean_val_acc).unwrap_or(0.0)
    }

    /// Wall-clock seconds until the epoch-mean validation accuracy first
    /// reached `target`, when it did.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.epochs
            .iter()
            .find(|e| e.mean_val_acc >= target)
            .map(|e| e.end_wall_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(n: usize, acc: f32, t: f64) -> RuntimeEpoch {
        RuntimeEpoch {
            epoch: n,
            alpha: 0.6,
            end_wall_s: t,
            mean_val_acc: acc,
            min_val_acc: acc - 0.05,
            max_val_acc: acc + 0.05,
            assimilated: 8,
            lost_updates: 0,
            timeouts: 0,
            reassignments: 0,
        }
    }

    #[test]
    fn accessors_walk_the_series() {
        let r = RuntimeReport {
            label: "P2C4T2".into(),
            epochs: vec![epoch(1, 0.2, 1.0), epoch(2, 0.45, 2.5)],
            final_val_acc: 0.45,
            final_test_acc: 0.44,
            wall_s: 2.6,
            workers: 4,
            server_metrics: ServerMetrics::default(),
            store_ops: (0, 0, 0, 0),
            bytes_transferred: 0,
            kills: 0,
            respawns: 0,
            delayed_msgs: 0,
            halted_early: false,
        };
        assert_eq!(r.final_mean_acc(), 0.45);
        assert_eq!(r.time_to_accuracy(0.4), Some(2.5));
        assert_eq!(r.time_to_accuracy(0.9), None);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<RuntimeReport>(&json).unwrap(), r);
    }
}
