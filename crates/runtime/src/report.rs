//! Run reports, mirroring `vc-asgd`'s [`vc_asgd::EpochStats`] /
//! [`vc_asgd::JobReport`] with wall-clock seconds in place of simulated
//! hours, plus the fault-injection counters.

use serde::{Deserialize, Serialize};
use vc_kvstore::{
    StoreOps, STORE_READ_S, STORE_STALENESS_VERSIONS, STORE_TRANSACT_S, STORE_WRITE_S,
};
use vc_middleware::{HostSummary, ServerMetrics, HOST_TURNAROUND_S, WU_DEADLINE_S};
use vc_ps::{PsOps, PS_MERGE_S, PS_SHARD_SKEW_VERSIONS};
use vc_telemetry::{Histogram, HistogramSnapshot, Registry};

/// Registry name of the assimilation-latency histogram (seconds from the
/// coordinator accepting a result to the blended parameters evaluated).
pub const ASSIM_LATENCY_S: &str = "assim_latency_s";
/// Registry name of the worker scheduler-poll round-trip histogram.
pub const WORKER_POLL_S: &str = "worker_poll_s";
/// Registry name of the worker subtask-training duration histogram.
pub const WORKER_TRAIN_S: &str = "worker_train_s";
/// Registry name of the worker per-optimizer-step duration histogram
/// (observed by the workspace trainer; comparable with `BENCH_train.json`).
pub const WORKER_TRAIN_STEP_S: &str = "worker_train_step_s";
/// Registry name of the worker result-upload (channel send) histogram.
pub const WORKER_UPLOAD_S: &str = "worker_upload_s";
/// Registry name of the delay-line drawn-delay histogram.
pub const DELAY_LINE_DELAY_S: &str = "delay_line_delay_s";
/// Registry name of the worker shard-fetch (cache sync) histogram.
pub const WORKER_FETCH_S: &str = "worker_fetch_s";

/// Per-epoch statistics of a real threaded run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuntimeEpoch {
    /// Epoch number (1-based).
    pub epoch: usize,
    /// The α this epoch's assimilations used.
    pub alpha: f32,
    /// Wall-clock seconds from job start (cumulative across resumes) when
    /// the epoch's last shard assimilated.
    pub end_wall_s: f64,
    /// Mean validation accuracy over the epoch's assimilations.
    pub mean_val_acc: f32,
    /// Minimum over the epoch's assimilations.
    pub min_val_acc: f32,
    /// Maximum over the epoch's assimilations.
    pub max_val_acc: f32,
    /// Results assimilated this epoch (always equals the shard count).
    pub assimilated: usize,
    /// Cumulative lost updates in the parameter store.
    pub lost_updates: u64,
    /// Cumulative assignment timeouts.
    pub timeouts: u64,
    /// Cumulative reassignments.
    pub reassignments: u64,
}

/// The full report of a [`crate::Runtime`] run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// Experiment label (`P{pn}C{cn}T{tn}`).
    pub label: String,
    /// Per-epoch series.
    pub epochs: Vec<RuntimeEpoch>,
    /// Validation accuracy of the final server parameters (full split).
    pub final_val_acc: f32,
    /// Test accuracy of the final server parameters.
    pub final_test_acc: f32,
    /// Total wall-clock seconds (cumulative across resumes).
    pub wall_s: f64,
    /// Worker threads the run started with.
    pub workers: usize,
    /// Middleware counters.
    pub server_metrics: ServerMetrics,
    /// Per-host scheduler accounting (reputation, turnaround, backoffs).
    #[serde(default)]
    pub hosts: Vec<HostSummary>,
    /// Store operation counters.
    pub store_ops: StoreOps,
    /// Latency/staleness histograms collected by the telemetry registry.
    pub telemetry: RuntimeTelemetry,
    /// Parameter-service operation counters (fetches, cache hits, wire
    /// bytes).
    #[serde(default)]
    pub ps_ops: PsOps,
    /// Parameter payload bytes that crossed worker channels plus wire
    /// bytes the parameter service moved.
    pub bytes_transferred: u64,
    /// Workers the fault injector preempted.
    pub kills: u64,
    /// Replacement workers that came up.
    pub respawns: u64,
    /// Messages routed through the delay line.
    pub delayed_msgs: u64,
    /// True when the run stopped before completing (halt hook or the
    /// `max_wall_s` safety net) — final accuracies are still measured on
    /// whatever the server held.
    pub halted_early: bool,
}

/// The histogram family a run's telemetry registry collected, embedded in
/// the report so latency percentiles survive alongside the counters.
///
/// Every field is always present — [`RuntimeTelemetry::from_registry`]
/// get-or-creates each histogram, so a run that never exercised a path
/// reports an empty histogram rather than a missing field.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RuntimeTelemetry {
    /// Seconds from result acceptance to blended-and-evaluated parameters.
    pub assim_latency_s: HistogramSnapshot,
    /// Staleness of eventual-mode writes, in `server_version − read_version`.
    pub staleness_versions: HistogramSnapshot,
    /// Parameter-store read latency, seconds.
    pub store_read_s: HistogramSnapshot,
    /// Parameter-store write latency, seconds.
    pub store_write_s: HistogramSnapshot,
    /// Parameter-store transaction latency, seconds.
    pub store_transact_s: HistogramSnapshot,
    /// Worker subtask-training duration, seconds.
    pub worker_train_s: HistogramSnapshot,
    /// Worker per-optimizer-step duration, seconds.
    pub worker_train_step_s: HistogramSnapshot,
    /// Observed host turnaround (issue → valid upload), seconds.
    #[serde(default)]
    pub host_turnaround_s: HistogramSnapshot,
    /// Deadlines the adaptive scheduler granted, seconds.
    #[serde(default)]
    pub wu_deadline_s: HistogramSnapshot,
    /// Per-shard merge latency in the parameter service, seconds.
    #[serde(default)]
    pub ps_merge_s: HistogramSnapshot,
    /// Version skew (max − min) across shard manifests at snapshot reads.
    #[serde(default)]
    pub ps_shard_skew_versions: HistogramSnapshot,
    /// Worker shard-fetch (cache sync) latency, seconds.
    #[serde(default)]
    pub worker_fetch_s: HistogramSnapshot,
}

impl RuntimeTelemetry {
    /// Snapshots the run's histograms out of `registry`, creating any the
    /// run never touched so the report shape is stable.
    pub fn from_registry(registry: &Registry) -> Self {
        let grab = |name: &str| {
            registry
                .histogram_with(name, Histogram::latency_bounds)
                .snapshot()
        };
        RuntimeTelemetry {
            assim_latency_s: grab(ASSIM_LATENCY_S),
            staleness_versions: registry
                .histogram_with(STORE_STALENESS_VERSIONS, Histogram::version_bounds)
                .snapshot(),
            store_read_s: grab(STORE_READ_S),
            store_write_s: grab(STORE_WRITE_S),
            store_transact_s: grab(STORE_TRANSACT_S),
            worker_train_s: grab(WORKER_TRAIN_S),
            worker_train_step_s: grab(WORKER_TRAIN_STEP_S),
            host_turnaround_s: grab(HOST_TURNAROUND_S),
            wu_deadline_s: grab(WU_DEADLINE_S),
            ps_merge_s: grab(PS_MERGE_S),
            ps_shard_skew_versions: registry
                .histogram_with(PS_SHARD_SKEW_VERSIONS, Histogram::version_bounds)
                .snapshot(),
            worker_fetch_s: grab(WORKER_FETCH_S),
        }
    }
}

impl RuntimeReport {
    /// Mean validation accuracy of the last completed epoch (0 when none).
    pub fn final_mean_acc(&self) -> f32 {
        self.epochs.last().map(|e| e.mean_val_acc).unwrap_or(0.0)
    }

    /// Wall-clock seconds until the epoch-mean validation accuracy first
    /// reached `target`, when it did.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.epochs
            .iter()
            .find(|e| e.mean_val_acc >= target)
            .map(|e| e.end_wall_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(n: usize, acc: f32, t: f64) -> RuntimeEpoch {
        RuntimeEpoch {
            epoch: n,
            alpha: 0.6,
            end_wall_s: t,
            mean_val_acc: acc,
            min_val_acc: acc - 0.05,
            max_val_acc: acc + 0.05,
            assimilated: 8,
            lost_updates: 0,
            timeouts: 0,
            reassignments: 0,
        }
    }

    #[test]
    fn accessors_walk_the_series() {
        let r = RuntimeReport {
            label: "P2C4T2".into(),
            epochs: vec![epoch(1, 0.2, 1.0), epoch(2, 0.45, 2.5)],
            final_val_acc: 0.45,
            final_test_acc: 0.44,
            wall_s: 2.6,
            workers: 4,
            server_metrics: ServerMetrics::default(),
            hosts: Vec::new(),
            store_ops: StoreOps::default(),
            telemetry: RuntimeTelemetry::from_registry(&Registry::default()),
            ps_ops: PsOps::default(),
            bytes_transferred: 0,
            kills: 0,
            respawns: 0,
            delayed_msgs: 0,
            halted_early: false,
        };
        assert_eq!(r.final_mean_acc(), 0.45);
        assert_eq!(r.time_to_accuracy(0.4), Some(2.5));
        assert_eq!(r.time_to_accuracy(0.9), None);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<RuntimeReport>(&json).unwrap(), r);
    }

    #[test]
    fn from_registry_materializes_every_histogram() {
        let reg = Registry::default();
        reg.histogram_with(ASSIM_LATENCY_S, Histogram::latency_bounds)
            .observe(0.002);
        let t = RuntimeTelemetry::from_registry(&reg);
        assert_eq!(t.assim_latency_s.count, 1);
        // Untouched paths still appear, as empty histograms with real bounds.
        assert_eq!(t.worker_train_s.count, 0);
        assert!(!t.worker_train_s.bounds.is_empty());
        assert!(!t.staleness_versions.bounds.is_empty());
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<RuntimeTelemetry>(&json).unwrap(), t);
    }
}
