//! The channel protocol between workers, the coordinator and the
//! assimilator pool.
//!
//! The message set deliberately mirrors BOINC's HTTP scheduler RPCs: a
//! client only ever *requests work* and *reports results*; the server only
//! ever answers the request it was asked. There is no death notification —
//! when a worker disappears, the server finds out the way the real system
//! does, through assignment timeouts.

use vc_middleware::{HostId, WorkUnit, WuId};
use vc_simnet::SimTime;

/// Worker → coordinator (and assimilator → coordinator) traffic. All
/// senders share one MPMC channel; the coordinator is the single consumer.
#[derive(Debug)]
pub enum ToServer {
    /// Scheduler RPC: `host` asks for one subtask.
    RequestWork {
        /// The polling host.
        host: HostId,
    },
    /// Upload: a trained replica's parameter vector.
    Result {
        /// The reporting host.
        host: HostId,
        /// The workunit the result answers.
        wu: WuId,
        /// The replica parameters (validated server-side).
        params: Vec<f32>,
    },
    /// A parameter server finished assimilating an accepted result.
    Assimilated {
        /// The workunit whose result was assimilated.
        wu: WuId,
        /// The host whose result won the workunit (echoed from
        /// [`AssimTask::host`], so the assimilate trace span names the
        /// volunteer that produced the update).
        host: HostId,
        /// The epoch the workunit belongs to.
        epoch: usize,
        /// The shard the workunit trained.
        shard_id: usize,
        /// Validation accuracy of the post-update server copy.
        acc: f32,
        /// When the coordinator accepted the result (echoed from
        /// [`AssimTask::accepted_at`]), so assimilation latency —
        /// acceptance to blended-and-evaluated — can be measured at the
        /// coordinator without any cross-thread clock reads.
        accepted_at: SimTime,
    },
}

/// Coordinator → worker replies, one channel per worker.
#[derive(Debug)]
pub enum ToWorker {
    /// One subtask. The parameter snapshot it trains from (Eq. (2)'s
    /// `W_{s,e-1}`) is *not* shipped in the assignment: the workunit
    /// carries a shard-version manifest (`wu.param_versions`) and the
    /// worker fetches exactly the shards its cache is missing from the
    /// parameter service.
    Assign {
        /// The assigned workunit.
        wu: WorkUnit,
    },
    /// Nothing schedulable right now; poll again after the configured
    /// interval.
    NoWork,
    /// The job is over; exit.
    Shutdown,
}

/// One accepted result queued for the assimilator pool (MPMC: any free
/// parameter-server thread picks it up).
#[derive(Debug)]
pub struct AssimTask {
    /// The workunit the result answers.
    pub wu: WuId,
    /// The host whose result was accepted (the canonical replica under
    /// quorum validation).
    pub host: HostId,
    /// The epoch the workunit belongs to.
    pub epoch: usize,
    /// The shard the workunit trained.
    pub shard_id: usize,
    /// The client replica's parameters.
    pub client: Vec<f32>,
    /// When the coordinator accepted the result (its clock's reading).
    pub accepted_at: SimTime,
}
