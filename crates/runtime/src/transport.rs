//! Worker→server transport, optionally routed through a delay line.
//!
//! With fault injection enabled, every worker message is stamped with a
//! random future delivery instant and held in a [`DelayQueue`], which
//! releases messages in *delivery-time* order. Messages with different
//! draws overtake each other, so the coordinator sees genuinely reordered
//! traffic (a result can arrive after the poll that was sent later, a
//! straggler upload after its workunit already timed out and was
//! reassigned).
//!
//! The queue is generic over its time axis: the threaded runtime drives it
//! with [`Instant`]s from a dedicated delay-line thread, the deterministic
//! simulation (`crate::sim`) with [`vc_simnet::SimTime`] stamps from the
//! virtual clock — one reordering semantics, two substrates.

use crate::fault::FaultStats;
use crate::protocol::ToServer;
use crate::report::DELAY_LINE_DELAY_S;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vc_telemetry::{Histogram, Telemetry};

/// A worker's handle for sending to the coordinator: direct, or via the
/// delay line.
pub enum Outbox {
    /// In-order delivery straight into the coordinator's inbox.
    Direct(Sender<ToServer>),
    /// Delivery through the delay line with a per-message uniform delay in
    /// `[0, max_delay_s]`.
    Delayed {
        /// Input of the delay-line thread.
        tx: Sender<(Instant, ToServer)>,
        /// Upper bound of the injected delay, seconds.
        max_delay_s: f64,
        /// Shared fault counters.
        stats: Arc<FaultStats>,
        /// The run's telemetry hub (drawn delays feed a histogram).
        telemetry: Telemetry,
    },
}

impl Outbox {
    /// Sends one message, drawing its delay from `rng` when delayed.
    /// Returns `Err` when the coordinator (or delay line) is gone — the
    /// only failure mode, so the error carries no payload.
    #[allow(clippy::result_unit_err)]
    pub fn send(&self, rng: &mut StdRng, msg: ToServer) -> Result<(), ()> {
        match self {
            Outbox::Direct(tx) => tx.send(msg).map_err(|_| ()),
            Outbox::Delayed {
                tx,
                max_delay_s,
                stats,
                telemetry,
            } => {
                let delay = rng.gen_range(0.0..=*max_delay_s);
                stats
                    .delayed_msgs
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                telemetry
                    .registry()
                    .histogram_with(DELAY_LINE_DELAY_S, Histogram::latency_bounds)
                    .observe(delay);
                tx.send((Instant::now() + Duration::from_secs_f64(delay), msg))
                    .map_err(|_| ())
            }
        }
    }
}

// The reordering core of the delay line — a min-heap of messages keyed by
// delivery time with FIFO tie-breaking — now lives in `vc-ps`, where the
// delayed in-memory transport reuses it to shuffle response frames. The
// wall-clock delay line and the deterministic simulation keep using it
// from here.
pub use vc_ps::DelayQueue;

/// The delay-line thread body: stamps incoming messages into the queue and
/// releases each when its delivery instant passes. Drains the queue after
/// the input disconnects, then exits.
pub fn delay_line_main(rx: Receiver<(Instant, ToServer)>, out: Sender<ToServer>) {
    let mut queue: DelayQueue<Instant, ToServer> = DelayQueue::new();
    let mut open = true;
    while open || !queue.is_empty() {
        // Wait for the next due delivery or the next incoming message.
        let next_due = queue.next_due();
        if open {
            let incoming = match next_due {
                Some(at) => {
                    let wait = at.saturating_duration_since(Instant::now());
                    match rx.recv_timeout(wait) {
                        Ok(m) => Some(m),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => {
                            open = false;
                            None
                        }
                    }
                }
                None => match rx.recv() {
                    Ok(m) => Some(m),
                    Err(_) => {
                        open = false;
                        None
                    }
                },
            };
            if let Some((at, msg)) = incoming {
                queue.push(at, msg);
            }
        } else if let Some(at) = next_due {
            std::thread::sleep(at.saturating_duration_since(Instant::now()));
        }
        let now = Instant::now();
        while let Some(msg) = queue.pop_due(now) {
            if out.send(msg).is_err() {
                return; // coordinator gone: drop the rest
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use rand::SeedableRng;
    use vc_middleware::HostId;

    #[test]
    fn direct_outbox_preserves_order() {
        let (tx, rx) = unbounded();
        let ob = Outbox::Direct(tx);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..5 {
            ob.send(&mut rng, ToServer::RequestWork { host: HostId(i) })
                .unwrap();
        }
        for i in 0..5 {
            match rx.recv().unwrap() {
                ToServer::RequestWork { host } => assert_eq!(host, HostId(i)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn delay_queue_releases_in_delivery_order_fifo_on_ties() {
        let mut q: DelayQueue<u64, &str> = DelayQueue::new();
        q.push(30, "c");
        q.push(10, "a1");
        q.push(10, "a2");
        q.push(20, "b");
        assert_eq!(q.next_due(), Some(10));
        assert_eq!(q.pop_due(5), None, "nothing due yet");
        assert_eq!(q.pop_due(25), Some("a1"), "ties release FIFO");
        assert_eq!(q.pop_due(25), Some("a2"));
        assert_eq!(q.pop_due(25), Some("b"));
        assert_eq!(q.pop_due(25), None, "30 not due at 25");
        assert_eq!(q.pop_due(30), Some("c"));
        assert!(q.is_empty());
    }

    #[test]
    fn delay_line_delivers_everything_by_delivery_time() {
        let (in_tx, in_rx) = unbounded();
        let (out_tx, out_rx) = unbounded();
        let line = std::thread::spawn(move || delay_line_main(in_rx, out_tx));
        let stats = Arc::new(FaultStats::default());
        let tel = Telemetry::silent();
        let ob = Outbox::Delayed {
            tx: in_tx,
            max_delay_s: 0.05,
            stats: stats.clone(),
            telemetry: tel.clone(),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let n = 64u32;
        for i in 0..n {
            ob.send(&mut rng, ToServer::RequestWork { host: HostId(i) })
                .unwrap();
        }
        drop(ob); // disconnect the input so the line drains and exits
        let mut seen = vec![false; n as usize];
        let mut reordered = false;
        let mut last = 0u32;
        for k in 0..n {
            let msg = out_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("delay line must drain every message");
            let ToServer::RequestWork { host } = msg else {
                panic!("unexpected message");
            };
            seen[host.0 as usize] = true;
            if k > 0 && host.0 < last {
                reordered = true;
            }
            last = host.0;
        }
        line.join().unwrap();
        assert!(seen.iter().all(|&s| s), "no message may be lost");
        assert!(reordered, "random delays over 64 messages must reorder");
        assert_eq!(stats.snapshot().2, n as u64);
        let snap = tel.registry().snapshot();
        let h = snap.histogram(DELAY_LINE_DELAY_S).unwrap();
        assert_eq!(h.count, n as u64, "every drawn delay is observed");
    }
}
