//! Classification loss.

use vc_tensor::Tensor;

/// Softmax + cross-entropy, fused for numerical stability.
///
/// Operates on logits `[batch, classes]` and integer labels. The fused
/// gradient is `(softmax(x) - onehot(y)) / batch`.
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Row-wise softmax with the max-subtraction trick.
    pub fn softmax(logits: &Tensor) -> Tensor {
        assert_eq!(logits.dims().len(), 2, "softmax expects [batch, classes]");
        let (b, c) = (logits.dims()[0], logits.dims()[1]);
        let src = logits.data();
        let mut out = vec![0.0f32; b * c];
        for i in 0..b {
            let row = &src[i * c..(i + 1) * c];
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for (j, &v) in row.iter().enumerate() {
                let e = (v - m).exp();
                out[i * c + j] = e;
                denom += e;
            }
            for o in &mut out[i * c..(i + 1) * c] {
                *o /= denom;
            }
        }
        Tensor::from_vec(out, &[b, c])
    }

    /// Mean cross-entropy loss over the batch.
    pub fn loss(logits: &Tensor, labels: &[usize]) -> f32 {
        let probs = Self::softmax(logits);
        let c = logits.dims()[1];
        let b = labels.len();
        assert_eq!(logits.dims()[0], b, "batch/labels length mismatch");
        let mut total = 0.0;
        for (i, &y) in labels.iter().enumerate() {
            assert!(y < c, "label {y} out of range for {c} classes");
            total -= probs.data()[i * c + y].max(1e-12).ln();
        }
        total / b as f32
    }

    /// Loss and the gradient w.r.t. the logits, in one pass.
    pub fn loss_and_grad(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let mut probs = Self::softmax(logits);
        let c = logits.dims()[1];
        let b = labels.len();
        assert_eq!(logits.dims()[0], b, "batch/labels length mismatch");
        let mut total = 0.0;
        let inv_b = 1.0 / b as f32;
        for (i, &y) in labels.iter().enumerate() {
            assert!(y < c, "label {y} out of range for {c} classes");
            let p = probs.data()[i * c + y].max(1e-12);
            total -= p.ln();
            // grad = (p - onehot) / batch
            probs.data_mut()[i * c + y] -= 1.0;
        }
        for g in probs.data_mut() {
            *g *= inv_b;
        }
        (total * inv_b, probs)
    }

    /// [`Self::loss_and_grad`] consuming the logits: the softmax and the
    /// gradient are computed in place in the logits' own buffer, so the hot
    /// loop allocates nothing. Bit-identical to the borrowing variant (same
    /// operations in the same order, just a different destination buffer).
    pub fn loss_and_grad_ws(mut logits: Tensor, labels: &[usize]) -> (f32, Tensor) {
        assert_eq!(logits.dims().len(), 2, "softmax expects [batch, classes]");
        let (b, c) = (logits.dims()[0], logits.dims()[1]);
        assert_eq!(b, labels.len(), "batch/labels length mismatch");
        let data = logits.data_mut();
        for i in 0..b {
            let row = &mut data[i * c..(i + 1) * c];
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for v in row.iter_mut() {
                let e = (*v - m).exp();
                *v = e;
                denom += e;
            }
            for v in row.iter_mut() {
                *v /= denom;
            }
        }
        let mut total = 0.0;
        let inv_b = 1.0 / b as f32;
        for (i, &y) in labels.iter().enumerate() {
            assert!(y < c, "label {y} out of range for {c} classes");
            let p = data[i * c + y].max(1e-12);
            total -= p.ln();
            data[i * c + y] -= 1.0;
        }
        for g in data.iter_mut() {
            *g *= inv_b;
        }
        (total * inv_b, logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = SoftmaxCrossEntropy::softmax(&logits);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![1001.0, 1002.0, 1003.0], &[1, 3]);
        let pa = SoftmaxCrossEntropy::softmax(&a);
        let pb = SoftmaxCrossEntropy::softmax(&b);
        for (x, y) in pa.data().iter().zip(pb.data()) {
            assert!((x - y).abs() < 1e-6);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Tensor::zeros(&[4, 10]);
        let loss = SoftmaxCrossEntropy::loss(&logits, &[0, 3, 7, 9]);
        assert!((loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.data_mut()[1] = 20.0;
        assert!(SoftmaxCrossEntropy::loss(&logits, &[1]) < 1e-4);
        assert!(SoftmaxCrossEntropy::loss(&logits, &[0]) > 10.0);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0], &[2, 3]);
        let labels = [2usize, 0];
        let (_, grad) = SoftmaxCrossEntropy::loss_and_grad(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let fd = (SoftmaxCrossEntropy::loss(&lp, &labels)
                - SoftmaxCrossEntropy::loss(&lm, &labels))
                / (2.0 * eps);
            assert!(
                (fd - grad.data()[i]).abs() < 1e-3,
                "grad {i}: fd={fd} an={}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![0.3, 0.1, -0.5, 0.9, 2.0, -2.0], &[2, 3]);
        let (_, grad) = SoftmaxCrossEntropy::loss_and_grad(&logits, &[0, 1]);
        for i in 0..2 {
            let s: f32 = grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        SoftmaxCrossEntropy::loss(&Tensor::zeros(&[1, 3]), &[3]);
    }

    #[test]
    fn consuming_variant_is_bit_identical() {
        let logits = Tensor::from_vec(vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0], &[2, 3]);
        let labels = [2usize, 0];
        let (l_ref, g_ref) = SoftmaxCrossEntropy::loss_and_grad(&logits, &labels);
        let (l_ws, g_ws) = SoftmaxCrossEntropy::loss_and_grad_ws(logits, &labels);
        assert_eq!(l_ref.to_bits(), l_ws.to_bits());
        assert_eq!(g_ref.data(), g_ws.data());
        assert_eq!(g_ref.dims(), g_ws.dims());
    }
}
