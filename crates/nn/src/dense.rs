//! Fully-connected layer.

use crate::layer::Layer;
use vc_tensor::ops::{matmul_a_bt_epi_into, matmul_at_b_epi_into, matmul_epi_into, Epilogue};
use vc_tensor::{NormalSampler, Tensor, Workspace};

/// A dense (fully-connected) layer: `y = x · W + b`, `x: [batch, in]`,
/// `W: [in, out]`, `b: [out]`.
pub struct Dense {
    w: Tensor,
    b: Tensor,
    dw: Tensor,
    db: Tensor,
    x_cache: Option<Tensor>,
    in_dim: usize,
    out_dim: usize,
    /// When set (by [`Layer::enable_relu_fusion`]), the GEMM epilogue also
    /// applies `max(0, ·)` so the following ReLU layer becomes mask-only.
    fused_relu: bool,
}

impl Dense {
    /// Builds a dense layer with He-normal weights (fan-in scaled) and zero
    /// bias.
    pub fn new(in_dim: usize, out_dim: usize, sampler: &mut NormalSampler) -> Self {
        Dense {
            w: Tensor::he_normal(&[in_dim, out_dim], in_dim, sampler),
            b: Tensor::zeros(&[out_dim]),
            dw: Tensor::zeros(&[in_dim, out_dim]),
            db: Tensor::zeros(&[out_dim]),
            x_cache: None,
            in_dim,
            out_dim,
            fused_relu: false,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Immutable view of the weight matrix (for tests/inspection).
    pub fn weights(&self) -> &Tensor {
        &self.w
    }

    fn check_input(&self, x: &Tensor) {
        assert_eq!(x.dims().len(), 2, "Dense expects [batch, features]");
        assert_eq!(
            x.dims()[1],
            self.in_dim,
            "Dense in_dim {} vs input {}",
            self.in_dim,
            x.dims()[1]
        );
    }

    /// Bias (or fused bias+ReLU) epilogue for the forward GEMM.
    fn epilogue(&self) -> Epilogue<'_> {
        if self.fused_relu {
            Epilogue::BiasRelu(self.b.data())
        } else {
            Epilogue::Bias(self.b.data())
        }
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.check_input(x);
        if train {
            self.x_cache = Some(x.clone());
        }
        let m = x.dims()[0];
        let mut y = vec![0.0f32; m * self.out_dim];
        matmul_epi_into(x, &self.w, &mut y, self.epilogue());
        Tensor::from_vec(y, &[m, self.out_dim])
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .x_cache
            .take()
            .expect("Dense::backward called without a cached forward");
        // dW += x^T · dy ; db += column-sums of dy ; dx = dy · W^T
        matmul_at_b_epi_into(&x, dy, self.dw.data_mut(), Epilogue::Accumulate);
        self.db.add_assign(&dy.sum_axis0());
        self.x_cache = Some(x);
        let m = dy.dims()[0];
        let mut dx = vec![0.0f32; m * self.in_dim];
        matmul_a_bt_epi_into(dy, &self.w, &mut dx, Epilogue::Store);
        Tensor::from_vec(dx, &[m, self.in_dim])
    }

    fn forward_ws(&mut self, x: Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        self.check_input(&x);
        // Recycle last step's cache before taking, so one warm-up step is
        // enough to make the pool self-sufficient.
        if let Some(prev) = self.x_cache.take() {
            ws.recycle(prev.into_vec());
        }
        let m = x.dims()[0];
        let mut y = ws.take(m * self.out_dim);
        matmul_epi_into(&x, &self.w, &mut y, self.epilogue());
        if train {
            self.x_cache = Some(x);
        } else {
            ws.recycle(x.into_vec());
        }
        Tensor::from_vec(y, &[m, self.out_dim])
    }

    fn backward_ws(&mut self, dy: Tensor, ws: &mut Workspace) -> Tensor {
        let x = self
            .x_cache
            .take()
            .expect("Dense::backward called without a cached forward");
        matmul_at_b_epi_into(&x, &dy, self.dw.data_mut(), Epilogue::Accumulate);
        self.x_cache = Some(x);
        // db += column sums of dy, in `sum_axis0`'s exact accumulation order
        // (zero-initialized partial sum, rows ascending) so both backward
        // paths stay bit-identical.
        let m = dy.dims()[0];
        let mut colsum = ws.take(self.out_dim);
        for r in 0..m {
            let row = &dy.data()[r * self.out_dim..(r + 1) * self.out_dim];
            for (o, v) in colsum.iter_mut().zip(row) {
                *o += v;
            }
        }
        for (d, s) in self.db.data_mut().iter_mut().zip(&colsum) {
            *d += s;
        }
        ws.recycle(colsum);
        let mut dx = ws.take(m * self.in_dim);
        matmul_a_bt_epi_into(&dy, &self.w, &mut dx, Epilogue::Store);
        ws.recycle(dy.into_vec());
        Tensor::from_vec(dx, &[m, self.in_dim])
    }

    fn enable_relu_fusion(&mut self) -> bool {
        self.fused_relu = true;
        true
    }

    fn param_len(&self) -> usize {
        self.w.numel() + self.b.numel()
    }

    fn collect_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.data());
        out.extend_from_slice(self.b.data());
    }

    fn load_params(&mut self, src: &[f32]) -> usize {
        let nw = self.w.numel();
        let nb = self.b.numel();
        self.w.data_mut().copy_from_slice(&src[..nw]);
        self.b.data_mut().copy_from_slice(&src[nw..nw + nb]);
        nw + nb
    }

    fn collect_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.dw.data());
        out.extend_from_slice(self.db.data());
    }

    fn zero_grads(&mut self) {
        self.dw.map_inplace(|_| 0.0);
        self.db.map_inplace(|_| 0.0);
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        assert_eq!(in_dims.len(), 2);
        vec![in_dims[0], self.out_dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use vc_tensor::approx_eq;

    fn layer(i: usize, o: usize, seed: u64) -> Dense {
        let mut s = NormalSampler::seed_from(seed);
        Dense::new(i, o, &mut s)
    }

    #[test]
    fn forward_known_values() {
        let mut d = layer(2, 2, 1);
        d.load_params(&[1.0, 2.0, 3.0, 4.0, 0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = d.forward(&x, false);
        // y = [1*1+1*3 + 0.5, 1*2+1*4 - 0.5]
        assert!(approx_eq(
            &y,
            &Tensor::from_vec(vec![4.5, 5.5], &[1, 2]),
            1e-6
        ));
    }

    #[test]
    fn param_roundtrip() {
        let d = layer(3, 4, 2);
        let mut p = Vec::new();
        d.collect_params(&mut p);
        assert_eq!(p.len(), d.param_len());
        let mut d2 = layer(3, 4, 99);
        assert_eq!(d2.load_params(&p), p.len());
        let mut p2 = Vec::new();
        d2.collect_params(&mut p2);
        assert_eq!(p, p2);
    }

    #[test]
    fn gradcheck_inputs() {
        let mut d = layer(4, 3, 3);
        let mut s = NormalSampler::seed_from(10);
        let x = Tensor::randn(&[2, 4], 0.0, 1.0, &mut s);
        gradcheck::check_input_grad(&mut d, &x, 1e-2);
    }

    #[test]
    fn gradcheck_params() {
        let mut d = layer(3, 2, 4);
        let mut s = NormalSampler::seed_from(11);
        let x = Tensor::randn(&[2, 3], 0.0, 1.0, &mut s);
        gradcheck::check_param_grad(&mut d, &x, 1e-2);
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut d = layer(2, 2, 5);
        let x = Tensor::ones(&[1, 2]);
        let dy = Tensor::ones(&[1, 2]);
        d.forward(&x, true);
        d.backward(&dy);
        let mut g1 = Vec::new();
        d.collect_grads(&mut g1);
        d.forward(&x, true);
        d.backward(&dy);
        let mut g2 = Vec::new();
        d.collect_grads(&mut g2);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((b - 2.0 * a).abs() < 1e-5, "accumulation {a} {b}");
        }
        d.zero_grads();
        let mut g3 = Vec::new();
        d.collect_grads(&mut g3);
        assert!(g3.iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "without a cached forward")]
    fn backward_requires_forward() {
        let mut d = layer(2, 2, 6);
        d.backward(&Tensor::ones(&[1, 2]));
    }

    #[test]
    fn out_dims_reports_batch() {
        let d = layer(8, 5, 7);
        assert_eq!(d.out_dims(&[32, 8]), vec![32, 5]);
    }
}
