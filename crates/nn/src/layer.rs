//! The [`Layer`] trait: the contract every network component implements.

use vc_tensor::Tensor;

/// A differentiable network component.
///
/// Layers own their parameters *and* their gradients: `backward` accumulates
/// into layer-local gradient buffers, and the model aggregates them into the
/// flat vectors that the optimizers and the distributed schemes exchange.
///
/// `Send` is required so entire models can be moved into rayon tasks — the
/// simulated volunteer fleet trains one independent model replica per
/// subtask, in parallel.
pub trait Layer: Send {
    /// Computes the layer output. When `train` is true the layer may cache
    /// activations for `backward` and use batch statistics (BatchNorm);
    /// when false it must be a pure function of its parameters.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Propagates the output gradient `dy` to an input gradient, and
    /// accumulates parameter gradients into layer-local buffers. Must be
    /// called after a `forward(.., true)` on the same input.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Number of scalar parameters this layer owns (including buffers that
    /// must travel with the weights, e.g. BatchNorm running statistics —
    /// the paper ships the complete `.h5` state, so do we).
    fn param_len(&self) -> usize {
        0
    }

    /// Appends this layer's parameters to `out` in a fixed order.
    fn collect_params(&self, _out: &mut Vec<f32>) {}

    /// Reads `param_len()` values from the front of `src`, returning the
    /// number consumed. Order must mirror `collect_params`.
    fn load_params(&mut self, _src: &[f32]) -> usize {
        0
    }

    /// Appends this layer's parameter gradients to `out`; same order and
    /// length as `collect_params` (buffers contribute zeros).
    fn collect_grads(&self, _out: &mut Vec<f32>) {}

    /// Clears accumulated gradients.
    fn zero_grads(&mut self) {}

    /// Human-readable layer kind, for summaries and error messages.
    fn name(&self) -> &'static str;

    /// Output shape for a given input shape, used by the model builder to
    /// validate specs before allocating parameters.
    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize>;
}

/// A boxed layer, as stored by [`crate::Sequential`].
pub type BoxedLayer = Box<dyn Layer>;

#[cfg(test)]
mod tests {
    use super::*;

    /// A do-nothing layer to exercise trait defaults.
    struct Identity;
    impl Layer for Identity {
        fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
            x.clone()
        }
        fn backward(&mut self, dy: &Tensor) -> Tensor {
            dy.clone()
        }
        fn name(&self) -> &'static str {
            "identity"
        }
        fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
            in_dims.to_vec()
        }
    }

    #[test]
    fn defaults_are_paramless() {
        let mut l = Identity;
        assert_eq!(l.param_len(), 0);
        let mut v = Vec::new();
        l.collect_params(&mut v);
        l.collect_grads(&mut v);
        assert!(v.is_empty());
        assert_eq!(l.load_params(&[1.0, 2.0]), 0);
        l.zero_grads();
    }

    #[test]
    fn boxed_layer_is_usable() {
        let mut l: BoxedLayer = Box::new(Identity);
        let x = Tensor::ones(&[2, 2]);
        let y = l.forward(&x, false);
        assert_eq!(y.data(), x.data());
        assert_eq!(l.name(), "identity");
    }
}
