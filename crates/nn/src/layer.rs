//! The [`Layer`] trait: the contract every network component implements.

use vc_tensor::{Tensor, Workspace};

/// A differentiable network component.
///
/// Layers own their parameters *and* their gradients: `backward` accumulates
/// into layer-local gradient buffers, and the model aggregates them into the
/// flat vectors that the optimizers and the distributed schemes exchange.
///
/// `Send` is required so entire models can be moved into rayon tasks — the
/// simulated volunteer fleet trains one independent model replica per
/// subtask, in parallel.
///
/// ## Workspace path
///
/// [`forward_ws`](Layer::forward_ws) / [`backward_ws`](Layer::backward_ws)
/// are the allocation-free variants the training hot loop uses: tensors move
/// *by value* through the layer chain, each layer draws its output buffer
/// from the replica's [`Workspace`] and recycles the buffers it consumed.
/// The defaults fall back to the borrowing `forward`/`backward`, so custom
/// layers stay correct without opting in; the layers on the paper-CNN hot
/// path (conv, dense, relu, pooling, flatten) all override them. Both paths
/// compute bit-identical values.
pub trait Layer: Send {
    /// Computes the layer output. When `train` is true the layer may cache
    /// activations for `backward` and use batch statistics (BatchNorm);
    /// when false it must be a pure function of its parameters.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Propagates the output gradient `dy` to an input gradient, and
    /// accumulates parameter gradients into layer-local buffers. Must be
    /// called after a `forward(.., true)` on the same input.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Workspace variant of [`forward`](Layer::forward): consumes the input
    /// tensor and recycles its storage once no longer needed.
    fn forward_ws(&mut self, x: Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let y = self.forward(&x, train);
        ws.recycle(x.into_vec());
        y
    }

    /// Workspace variant of [`backward`](Layer::backward): consumes the
    /// output gradient and recycles its storage once no longer needed.
    fn backward_ws(&mut self, dy: Tensor, ws: &mut Workspace) -> Tensor {
        let dx = self.backward(&dy);
        ws.recycle(dy.into_vec());
        dx
    }

    /// Asks the layer to fuse a ReLU into its output epilogue (the
    /// bias+activation epilogue of the blocked GEMM). Returns `true` when
    /// the layer supports it and has switched it on; the following ReLU
    /// layer must then be told via [`set_fused_upstream`]
    /// (Layer::set_fused_upstream). Default: unsupported.
    fn enable_relu_fusion(&mut self) -> bool {
        false
    }

    /// True for ReLU layers — the fusion peephole's target. Fusing is
    /// bit-exact: `relu(x) > 0 ⇔ x > 0`, so the downstream mask and values
    /// are unchanged.
    fn is_relu(&self) -> bool {
        false
    }

    /// Informs a ReLU layer that its upstream neighbour already applies the
    /// rectification, so its forward becomes a mask-only pass-through.
    fn set_fused_upstream(&mut self) {}

    /// Number of scalar parameters this layer owns (including buffers that
    /// must travel with the weights, e.g. BatchNorm running statistics —
    /// the paper ships the complete `.h5` state, so do we).
    fn param_len(&self) -> usize {
        0
    }

    /// Appends this layer's parameters to `out` in a fixed order.
    fn collect_params(&self, _out: &mut Vec<f32>) {}

    /// Reads `param_len()` values from the front of `src`, returning the
    /// number consumed. Order must mirror `collect_params`.
    fn load_params(&mut self, _src: &[f32]) -> usize {
        0
    }

    /// Appends this layer's parameter gradients to `out`; same order and
    /// length as `collect_params` (buffers contribute zeros).
    fn collect_grads(&self, _out: &mut Vec<f32>) {}

    /// Clears accumulated gradients.
    fn zero_grads(&mut self) {}

    /// Human-readable layer kind, for summaries and error messages.
    fn name(&self) -> &'static str;

    /// Output shape for a given input shape, used by the model builder to
    /// validate specs before allocating parameters.
    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize>;
}

/// A boxed layer, as stored by [`crate::Sequential`].
pub type BoxedLayer = Box<dyn Layer>;

#[cfg(test)]
mod tests {
    use super::*;

    /// A do-nothing layer to exercise trait defaults.
    struct Identity;
    impl Layer for Identity {
        fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
            x.clone()
        }
        fn backward(&mut self, dy: &Tensor) -> Tensor {
            dy.clone()
        }
        fn name(&self) -> &'static str {
            "identity"
        }
        fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
            in_dims.to_vec()
        }
    }

    #[test]
    fn defaults_are_paramless() {
        let mut l = Identity;
        assert_eq!(l.param_len(), 0);
        let mut v = Vec::new();
        l.collect_params(&mut v);
        l.collect_grads(&mut v);
        assert!(v.is_empty());
        assert_eq!(l.load_params(&[1.0, 2.0]), 0);
        l.zero_grads();
    }

    #[test]
    fn boxed_layer_is_usable() {
        let mut l: BoxedLayer = Box::new(Identity);
        let x = Tensor::ones(&[2, 2]);
        let y = l.forward(&x, false);
        assert_eq!(y.data(), x.data());
        assert_eq!(l.name(), "identity");
    }

    #[test]
    fn ws_defaults_fall_back_and_recycle() {
        let mut l = Identity;
        let mut ws = Workspace::new();
        let y = l.forward_ws(Tensor::ones(&[2, 3]), true, &mut ws);
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(ws.pooled(), 1, "consumed input must be recycled");
        let dy = l.backward_ws(y, &mut ws);
        assert_eq!(dy.dims(), &[2, 3]);
        assert!(!l.enable_relu_fusion());
        assert!(!l.is_relu());
    }
}
