//! # vc-nn
//!
//! A from-scratch neural-network library: the deep-learning substrate the
//! paper runs on TensorFlow, rebuilt in Rust for the `vc-dl` reproduction.
//!
//! The paper trains a 552-layer ResNetV2 (4.97 M parameters) on CIFAR10. The
//! VC-ASGD scheme it contributes, however, is *model-agnostic*: it exchanges
//! flat parameter vectors between clients and parameter servers. This crate
//! therefore provides exactly what the distributed layer needs:
//!
//! * [`Layer`] — forward/backward passes with layer-owned gradient storage;
//! * concrete layers: [`Dense`], [`Conv2d`], [`MaxPool2`], [`AvgPoolGlobal`],
//!   [`Relu`], [`BatchNorm`], [`Flatten`], [`Residual`] blocks;
//! * [`Sequential`] — a model as a layer pipeline, with flat-parameter
//!   get/set ([`Sequential::params_flat`] / [`Sequential::set_params_flat`])
//!   used as the `W` vectors of the paper's Eq. (1);
//! * [`SoftmaxCrossEntropy`] — the classification loss and its gradient;
//! * [`spec`] — a serde model description (the paper ships architecture as a
//!   269 KB `.json` file; ours plays the same role) plus builders for the
//!   three reference models: `mlp`, `small_cnn`, and `resnet_lite`.
//!
//! Every backward pass is validated against finite differences in the test
//! suite.

pub mod act_extra;
pub mod activation;
pub mod conv;
pub mod dense;
pub mod dropout;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod norm;
pub mod pool;
pub mod residual;
pub mod spec;

pub use act_extra::{LeakyRelu, Sigmoid, Tanh};
pub use activation::Relu;
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use layer::Layer;
pub use loss::SoftmaxCrossEntropy;
pub use model::Sequential;
pub use norm::BatchNorm;
pub use pool::{AvgPoolGlobal, Flatten, MaxPool2};
pub use residual::Residual;
pub use spec::{LayerSpec, ModelSpec};

/// Serializes tests that flip the process-global `conv_direct` toggle
/// against tests that assert workspace-pool hit rates: a mid-run path
/// flip is bit-identical but changes which buffer *sizes* a step takes,
/// which would register as a (spurious) pool miss. Lock-poisoning from a
/// failed test is ignored — the lock only orders execution.
#[cfg(test)]
pub(crate) static CONV_PATH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.
    use crate::layer::Layer;
    use vc_tensor::Tensor;

    /// Checks d(sum of outputs)/d(inputs) of `layer` against central
    /// differences. Uses `train = true` so cached state matches backward.
    pub fn check_input_grad<L: Layer>(layer: &mut L, x: &Tensor, tol: f32) {
        let y = layer.forward(x, true);
        let dy = Tensor::ones(y.dims());
        let dx = layer.backward(&dy);
        let eps = 1e-2f32;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = layer.forward(&xp, true).sum();
            let fm = layer.forward(&xm, true).sum();
            let fd = (fp - fm) / (2.0 * eps);
            let an = dx.data()[i];
            assert!(
                (fd - an).abs() < tol * (1.0 + fd.abs().max(an.abs())),
                "input grad {i}: fd={fd} analytic={an}"
            );
        }
    }

    /// Checks d(sum of outputs)/d(params) against central differences.
    pub fn check_param_grad<L: Layer>(layer: &mut L, x: &Tensor, tol: f32) {
        let y = layer.forward(x, true);
        let dy = Tensor::ones(y.dims());
        layer.zero_grads();
        layer.backward(&dy);
        let mut grads = Vec::new();
        layer.collect_grads(&mut grads);
        let mut params = Vec::new();
        layer.collect_params(&mut params);
        let eps = 1e-2f32;
        for i in 0..params.len() {
            let mut pp = params.clone();
            pp[i] += eps;
            layer.load_params(&pp);
            let fp = layer.forward(x, true).sum();
            let mut pm = params.clone();
            pm[i] -= eps;
            layer.load_params(&pm);
            let fm = layer.forward(x, true).sum();
            let fd = (fp - fm) / (2.0 * eps);
            let an = grads[i];
            assert!(
                (fd - an).abs() < tol * (1.0 + fd.abs().max(an.abs())),
                "param grad {i}: fd={fd} analytic={an}"
            );
        }
        layer.load_params(&params);
    }
}
