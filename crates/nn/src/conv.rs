//! 2-D convolution via im2col lowering.

use crate::layer::Layer;
use vc_tensor::ops::{col2im, im2col, matmul, matmul_a_bt, matmul_at_b, ConvGeom};
use vc_tensor::{NormalSampler, Tensor};

/// A 2-D convolution over `[batch, in_ch, h, w]` inputs producing
/// `[batch, out_ch, oh, ow]`.
///
/// The kernel is stored flattened as `[out_ch, in_ch * kh * kw]` so both the
/// forward pass and the weight gradient are single matmuls against the
/// im2col matrix — the same lowering TensorFlow and cuDNN use for small
/// kernels.
pub struct Conv2d {
    kernel: Tensor,
    bias: Tensor,
    dkernel: Tensor,
    dbias: Tensor,
    in_ch: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    cache: Option<ConvCache>,
}

struct ConvCache {
    cols: Tensor,
    geom: ConvGeom,
    batch: usize,
}

impl Conv2d {
    /// Builds a convolution with He-normal kernels (fan-in = `in_ch·kh·kw`).
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        sampler: &mut NormalSampler,
    ) -> Self {
        let fan_in = in_ch * k * k;
        Conv2d {
            kernel: Tensor::he_normal(&[out_ch, fan_in], fan_in, sampler),
            bias: Tensor::zeros(&[out_ch]),
            dkernel: Tensor::zeros(&[out_ch, fan_in]),
            dbias: Tensor::zeros(&[out_ch]),
            in_ch,
            out_ch,
            kh: k,
            kw: k,
            stride,
            pad,
            cache: None,
        }
    }

    fn geom_for(&self, h: usize, w: usize) -> ConvGeom {
        ConvGeom {
            h,
            w,
            kh: self.kh,
            kw: self.kw,
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// Permutes `[batch*oh*ow, out_ch]` (im2col output order) into the image
    /// layout `[batch, out_ch, oh, ow]`.
    fn rows_to_images(flat: &Tensor, batch: usize, out_ch: usize, oh: usize, ow: usize) -> Tensor {
        let src = flat.data();
        let mut out = vec![0.0f32; batch * out_ch * oh * ow];
        for b in 0..batch {
            for p in 0..oh * ow {
                let row = (b * oh * ow + p) * out_ch;
                for c in 0..out_ch {
                    out[((b * out_ch + c) * oh * ow) + p] = src[row + c];
                }
            }
        }
        Tensor::from_vec(out, &[batch, out_ch, oh, ow])
    }

    /// Inverse of [`Self::rows_to_images`].
    fn images_to_rows(img: &Tensor) -> Tensor {
        let dims = img.dims();
        let (batch, ch, oh, ow) = (dims[0], dims[1], dims[2], dims[3]);
        let src = img.data();
        let mut out = vec![0.0f32; batch * oh * ow * ch];
        for b in 0..batch {
            for c in 0..ch {
                for p in 0..oh * ow {
                    out[(b * oh * ow + p) * ch + c] = src[(b * ch + c) * oh * ow + p];
                }
            }
        }
        Tensor::from_vec(out, &[batch * oh * ow, ch])
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let dims = x.dims();
        assert_eq!(dims.len(), 4, "Conv2d expects [batch, ch, h, w]");
        assert_eq!(dims[1], self.in_ch, "Conv2d channel mismatch");
        let (batch, h, w) = (dims[0], dims[2], dims[3]);
        let geom = self.geom_for(h, w);
        let cols = im2col(x, self.in_ch, geom);
        // [rows, patch] x [out_ch, patch]^T -> [rows, out_ch]
        let flat = matmul_a_bt(&cols, &self.kernel).add_row_broadcast(&self.bias);
        let y = Self::rows_to_images(&flat, batch, self.out_ch, geom.out_h(), geom.out_w());
        if train {
            self.cache = Some(ConvCache { cols, geom, batch });
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("Conv2d::backward called without a cached forward");
        let dy_rows = Self::images_to_rows(dy); // [rows, out_ch]
                                                // dK = dy_rows^T · cols -> [out_ch, patch]
        self.dkernel.add_assign(&matmul_at_b(&dy_rows, &cache.cols));
        self.dbias.add_assign(&dy_rows.sum_axis0());
        // dcols = dy_rows · K -> [rows, patch]
        let dcols = matmul(&dy_rows, &self.kernel);
        col2im(&dcols, cache.batch, self.in_ch, cache.geom)
    }

    fn param_len(&self) -> usize {
        self.kernel.numel() + self.bias.numel()
    }

    fn collect_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.kernel.data());
        out.extend_from_slice(self.bias.data());
    }

    fn load_params(&mut self, src: &[f32]) -> usize {
        let nk = self.kernel.numel();
        let nb = self.bias.numel();
        self.kernel.data_mut().copy_from_slice(&src[..nk]);
        self.bias.data_mut().copy_from_slice(&src[nk..nk + nb]);
        nk + nb
    }

    fn collect_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.dkernel.data());
        out.extend_from_slice(self.dbias.data());
    }

    fn zero_grads(&mut self) {
        self.dkernel.map_inplace(|_| 0.0);
        self.dbias.map_inplace(|_| 0.0);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        assert_eq!(in_dims.len(), 4);
        let geom = self.geom_for(in_dims[2], in_dims[3]);
        vec![in_dims[0], self.out_ch, geom.out_h(), geom.out_w()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;

    fn conv(in_ch: usize, out_ch: usize, k: usize, stride: usize, pad: usize) -> Conv2d {
        let mut s = NormalSampler::seed_from(21);
        Conv2d::new(in_ch, out_ch, k, stride, pad, &mut s)
    }

    #[test]
    fn forward_shape() {
        let mut c = conv(3, 8, 3, 1, 1);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = c.forward(&x, false);
        assert_eq!(y.dims(), &[2, 8, 16, 16]);
        assert_eq!(c.out_dims(&[2, 3, 16, 16]), vec![2, 8, 16, 16]);
    }

    #[test]
    fn strided_forward_shape() {
        let mut c = conv(1, 4, 3, 2, 1);
        let y = c.forward(&Tensor::zeros(&[1, 1, 8, 8]), false);
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 conv, single channel, kernel weight 1, bias 0 = identity.
        let mut c = conv(1, 1, 1, 1, 0);
        c.load_params(&[1.0, 0.0]);
        let mut s = NormalSampler::seed_from(3);
        let x = Tensor::randn(&[2, 1, 4, 4], 0.0, 1.0, &mut s);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn bias_broadcasts_per_channel() {
        let mut c = conv(1, 2, 1, 1, 0);
        c.load_params(&[0.0, 0.0, 1.5, -2.0]); // zero kernels, biases 1.5 / -2.0
        let y = c.forward(&Tensor::zeros(&[1, 1, 2, 2]), false);
        let d = y.data();
        assert!(d[..4].iter().all(|&v| v == 1.5));
        assert!(d[4..].iter().all(|&v| v == -2.0));
    }

    #[test]
    fn gradcheck_inputs() {
        let mut c = conv(2, 3, 3, 1, 1);
        let mut s = NormalSampler::seed_from(31);
        let x = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, &mut s);
        gradcheck::check_input_grad(&mut c, &x, 2e-2);
    }

    #[test]
    fn gradcheck_params() {
        let mut c = conv(1, 2, 2, 1, 0);
        let mut s = NormalSampler::seed_from(32);
        let x = Tensor::randn(&[2, 1, 3, 3], 0.0, 1.0, &mut s);
        gradcheck::check_param_grad(&mut c, &x, 2e-2);
    }

    #[test]
    fn gradcheck_strided() {
        let mut c = conv(1, 1, 3, 2, 1);
        let mut s = NormalSampler::seed_from(33);
        let x = Tensor::randn(&[1, 1, 5, 5], 0.0, 1.0, &mut s);
        gradcheck::check_input_grad(&mut c, &x, 2e-2);
    }

    #[test]
    fn row_image_permutations_are_inverse() {
        let mut s = NormalSampler::seed_from(34);
        let img = Tensor::randn(&[2, 3, 4, 5], 0.0, 1.0, &mut s);
        let rows = Conv2d::images_to_rows(&img);
        let back = Conv2d::rows_to_images(&rows, 2, 3, 4, 5);
        assert_eq!(back.data(), img.data());
    }

    #[test]
    fn param_roundtrip() {
        let c = conv(2, 4, 3, 1, 1);
        let mut p = Vec::new();
        c.collect_params(&mut p);
        assert_eq!(p.len(), c.param_len());
        assert_eq!(c.param_len(), 4 * 2 * 9 + 4);
    }
}
