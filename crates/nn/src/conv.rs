//! 2-D convolution via im2col lowering.

use crate::layer::Layer;
use vc_tensor::ops::{
    col2im_into, im2col, im2col_into, matmul_a_bt_epi_into, matmul_at_b_epi_into, matmul_epi_into,
    ConvGeom, Epilogue,
};
use vc_tensor::{NormalSampler, Tensor, Workspace};

/// A 2-D convolution over `[batch, in_ch, h, w]` inputs producing
/// `[batch, out_ch, oh, ow]`.
///
/// The kernel is stored flattened as `[out_ch, in_ch * kh * kw]` so both the
/// forward pass and the weight gradient are single matmuls against the
/// im2col matrix — the same lowering TensorFlow and cuDNN use for small
/// kernels.
pub struct Conv2d {
    kernel: Tensor,
    bias: Tensor,
    dkernel: Tensor,
    dbias: Tensor,
    in_ch: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    cache: Option<ConvCache>,
    /// When set (by [`Layer::enable_relu_fusion`]), the GEMM epilogue also
    /// applies `max(0, ·)` so the following ReLU layer becomes mask-only.
    fused_relu: bool,
}

struct ConvCache {
    cols: Tensor,
    geom: ConvGeom,
    batch: usize,
}

impl Conv2d {
    /// Builds a convolution with He-normal kernels (fan-in = `in_ch·kh·kw`).
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        sampler: &mut NormalSampler,
    ) -> Self {
        let fan_in = in_ch * k * k;
        Conv2d {
            kernel: Tensor::he_normal(&[out_ch, fan_in], fan_in, sampler),
            bias: Tensor::zeros(&[out_ch]),
            dkernel: Tensor::zeros(&[out_ch, fan_in]),
            dbias: Tensor::zeros(&[out_ch]),
            in_ch,
            out_ch,
            kh: k,
            kw: k,
            stride,
            pad,
            cache: None,
            fused_relu: false,
        }
    }

    fn geom_for(&self, h: usize, w: usize) -> ConvGeom {
        ConvGeom {
            h,
            w,
            kh: self.kh,
            kw: self.kw,
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// Permutes `[batch*oh*ow, out_ch]` (im2col output order) into the image
    /// layout `[batch, out_ch, oh, ow]`, writing into `out`.
    fn rows_to_images_into(
        src: &[f32],
        batch: usize,
        out_ch: usize,
        oh: usize,
        ow: usize,
        out: &mut [f32],
    ) {
        debug_assert_eq!(out.len(), batch * out_ch * oh * ow);
        for b in 0..batch {
            for p in 0..oh * ow {
                let row = (b * oh * ow + p) * out_ch;
                for c in 0..out_ch {
                    out[((b * out_ch + c) * oh * ow) + p] = src[row + c];
                }
            }
        }
    }

    /// Inverse of [`Self::rows_to_images_into`].
    fn images_to_rows_into(img: &Tensor, out: &mut [f32]) {
        let dims = img.dims();
        let (batch, ch, oh, ow) = (dims[0], dims[1], dims[2], dims[3]);
        debug_assert_eq!(out.len(), batch * oh * ow * ch);
        let src = img.data();
        for b in 0..batch {
            for c in 0..ch {
                for p in 0..oh * ow {
                    out[(b * oh * ow + p) * ch + c] = src[(b * ch + c) * oh * ow + p];
                }
            }
        }
    }

    /// Test/inspection wrapper over [`Self::images_to_rows_into`].
    #[cfg(test)]
    fn images_to_rows(img: &Tensor) -> Tensor {
        let dims = img.dims();
        let (batch, ch, oh, ow) = (dims[0], dims[1], dims[2], dims[3]);
        let mut out = vec![0.0f32; batch * oh * ow * ch];
        Self::images_to_rows_into(img, &mut out);
        Tensor::from_vec(out, &[batch * oh * ow, ch])
    }

    /// Test/inspection wrapper over [`Self::rows_to_images_into`].
    #[cfg(test)]
    fn rows_to_images(flat: &Tensor, batch: usize, out_ch: usize, oh: usize, ow: usize) -> Tensor {
        let mut out = vec![0.0f32; batch * out_ch * oh * ow];
        Self::rows_to_images_into(flat.data(), batch, out_ch, oh, ow, &mut out);
        Tensor::from_vec(out, &[batch, out_ch, oh, ow])
    }

    /// Bias (or fused bias+ReLU) epilogue for the forward GEMM.
    fn epilogue(&self) -> Epilogue<'_> {
        if self.fused_relu {
            Epilogue::BiasRelu(self.bias.data())
        } else {
            Epilogue::Bias(self.bias.data())
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let dims = x.dims();
        assert_eq!(dims.len(), 4, "Conv2d expects [batch, ch, h, w]");
        assert_eq!(dims[1], self.in_ch, "Conv2d channel mismatch");
        let (batch, h, w) = (dims[0], dims[2], dims[3]);
        let geom = self.geom_for(h, w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let rows = batch * oh * ow;
        let cols = im2col(x, self.in_ch, geom);
        // [rows, patch] x [out_ch, patch]^T -> [rows, out_ch], bias fused
        let mut flat = vec![0.0f32; rows * self.out_ch];
        matmul_a_bt_epi_into(&cols, &self.kernel, &mut flat, self.epilogue());
        let mut y = vec![0.0f32; batch * self.out_ch * oh * ow];
        Self::rows_to_images_into(&flat, batch, self.out_ch, oh, ow, &mut y);
        if train {
            self.cache = Some(ConvCache { cols, geom, batch });
        }
        Tensor::from_vec(y, &[batch, self.out_ch, oh, ow])
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Conv2d::backward called without a cached forward");
        let (oh, ow) = (cache.geom.out_h(), cache.geom.out_w());
        let rows = cache.batch * oh * ow;
        let patch = self.in_ch * self.kh * self.kw;
        let mut dy_rows = vec![0.0f32; rows * self.out_ch];
        Self::images_to_rows_into(dy, &mut dy_rows);
        let dy_rows = Tensor::from_vec(dy_rows, &[rows, self.out_ch]);
        // dK += dy_rows^T · cols -> [out_ch, patch]
        matmul_at_b_epi_into(
            &dy_rows,
            &cache.cols,
            self.dkernel.data_mut(),
            Epilogue::Accumulate,
        );
        self.dbias.add_assign(&dy_rows.sum_axis0());
        // dcols = dy_rows · K -> [rows, patch]
        let mut dcols = vec![0.0f32; rows * patch];
        matmul_epi_into(&dy_rows, &self.kernel, &mut dcols, Epilogue::Store);
        let dcols = Tensor::from_vec(dcols, &[rows, patch]);
        let mut dx = vec![0.0f32; cache.batch * self.in_ch * cache.geom.h * cache.geom.w];
        col2im_into(&dcols, cache.batch, self.in_ch, cache.geom, &mut dx);
        let dims = [cache.batch, self.in_ch, cache.geom.h, cache.geom.w];
        self.cache = Some(cache);
        Tensor::from_vec(dx, &dims)
    }

    fn forward_ws(&mut self, x: Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let dims = x.dims();
        assert_eq!(dims.len(), 4, "Conv2d expects [batch, ch, h, w]");
        assert_eq!(dims[1], self.in_ch, "Conv2d channel mismatch");
        let (batch, h, w) = (dims[0], dims[2], dims[3]);
        let geom = self.geom_for(h, w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let rows = batch * oh * ow;
        let patch = self.in_ch * self.kh * self.kw;
        // Recycle last step's cache before taking, so one warm-up step is
        // enough to make the pool self-sufficient.
        if let Some(prev) = self.cache.take() {
            ws.recycle(prev.cols.into_vec());
        }
        let mut cols_buf = ws.take(rows * patch);
        im2col_into(&x, self.in_ch, geom, &mut cols_buf);
        let cols = Tensor::from_vec(cols_buf, &[rows, patch]);
        ws.recycle(x.into_vec());
        let mut flat = ws.take(rows * self.out_ch);
        matmul_a_bt_epi_into(&cols, &self.kernel, &mut flat, self.epilogue());
        let mut y = ws.take(batch * self.out_ch * oh * ow);
        Self::rows_to_images_into(&flat, batch, self.out_ch, oh, ow, &mut y);
        ws.recycle(flat);
        if train {
            self.cache = Some(ConvCache { cols, geom, batch });
        } else {
            ws.recycle(cols.into_vec());
        }
        Tensor::from_vec(y, &[batch, self.out_ch, oh, ow])
    }

    fn backward_ws(&mut self, dy: Tensor, ws: &mut Workspace) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Conv2d::backward called without a cached forward");
        let (oh, ow) = (cache.geom.out_h(), cache.geom.out_w());
        let rows = cache.batch * oh * ow;
        let patch = self.in_ch * self.kh * self.kw;
        let mut dy_rows_buf = ws.take(rows * self.out_ch);
        Self::images_to_rows_into(&dy, &mut dy_rows_buf);
        ws.recycle(dy.into_vec());
        let dy_rows = Tensor::from_vec(dy_rows_buf, &[rows, self.out_ch]);
        matmul_at_b_epi_into(
            &dy_rows,
            &cache.cols,
            self.dkernel.data_mut(),
            Epilogue::Accumulate,
        );
        // dbias += column sums of dy_rows, in `sum_axis0`'s accumulation
        // order so both backward paths stay bit-identical.
        let mut colsum = ws.take(self.out_ch);
        for r in 0..rows {
            let row = &dy_rows.data()[r * self.out_ch..(r + 1) * self.out_ch];
            for (o, v) in colsum.iter_mut().zip(row) {
                *o += v;
            }
        }
        for (d, s) in self.dbias.data_mut().iter_mut().zip(&colsum) {
            *d += s;
        }
        ws.recycle(colsum);
        let mut dcols = ws.take(rows * patch);
        matmul_epi_into(&dy_rows, &self.kernel, &mut dcols, Epilogue::Store);
        ws.recycle(dy_rows.into_vec());
        let dcols = Tensor::from_vec(dcols, &[rows, patch]);
        let mut dx = ws.take(cache.batch * self.in_ch * cache.geom.h * cache.geom.w);
        col2im_into(&dcols, cache.batch, self.in_ch, cache.geom, &mut dx);
        ws.recycle(dcols.into_vec());
        let dims = [cache.batch, self.in_ch, cache.geom.h, cache.geom.w];
        self.cache = Some(cache);
        Tensor::from_vec(dx, &dims)
    }

    fn enable_relu_fusion(&mut self) -> bool {
        self.fused_relu = true;
        true
    }

    fn param_len(&self) -> usize {
        self.kernel.numel() + self.bias.numel()
    }

    fn collect_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.kernel.data());
        out.extend_from_slice(self.bias.data());
    }

    fn load_params(&mut self, src: &[f32]) -> usize {
        let nk = self.kernel.numel();
        let nb = self.bias.numel();
        self.kernel.data_mut().copy_from_slice(&src[..nk]);
        self.bias.data_mut().copy_from_slice(&src[nk..nk + nb]);
        nk + nb
    }

    fn collect_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.dkernel.data());
        out.extend_from_slice(self.dbias.data());
    }

    fn zero_grads(&mut self) {
        self.dkernel.map_inplace(|_| 0.0);
        self.dbias.map_inplace(|_| 0.0);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        assert_eq!(in_dims.len(), 4);
        let geom = self.geom_for(in_dims[2], in_dims[3]);
        vec![in_dims[0], self.out_ch, geom.out_h(), geom.out_w()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;

    fn conv(in_ch: usize, out_ch: usize, k: usize, stride: usize, pad: usize) -> Conv2d {
        let mut s = NormalSampler::seed_from(21);
        Conv2d::new(in_ch, out_ch, k, stride, pad, &mut s)
    }

    #[test]
    fn forward_shape() {
        let mut c = conv(3, 8, 3, 1, 1);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = c.forward(&x, false);
        assert_eq!(y.dims(), &[2, 8, 16, 16]);
        assert_eq!(c.out_dims(&[2, 3, 16, 16]), vec![2, 8, 16, 16]);
    }

    #[test]
    fn strided_forward_shape() {
        let mut c = conv(1, 4, 3, 2, 1);
        let y = c.forward(&Tensor::zeros(&[1, 1, 8, 8]), false);
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 conv, single channel, kernel weight 1, bias 0 = identity.
        let mut c = conv(1, 1, 1, 1, 0);
        c.load_params(&[1.0, 0.0]);
        let mut s = NormalSampler::seed_from(3);
        let x = Tensor::randn(&[2, 1, 4, 4], 0.0, 1.0, &mut s);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn bias_broadcasts_per_channel() {
        let mut c = conv(1, 2, 1, 1, 0);
        c.load_params(&[0.0, 0.0, 1.5, -2.0]); // zero kernels, biases 1.5 / -2.0
        let y = c.forward(&Tensor::zeros(&[1, 1, 2, 2]), false);
        let d = y.data();
        assert!(d[..4].iter().all(|&v| v == 1.5));
        assert!(d[4..].iter().all(|&v| v == -2.0));
    }

    #[test]
    fn gradcheck_inputs() {
        let mut c = conv(2, 3, 3, 1, 1);
        let mut s = NormalSampler::seed_from(31);
        let x = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, &mut s);
        gradcheck::check_input_grad(&mut c, &x, 2e-2);
    }

    #[test]
    fn gradcheck_params() {
        let mut c = conv(1, 2, 2, 1, 0);
        let mut s = NormalSampler::seed_from(32);
        let x = Tensor::randn(&[2, 1, 3, 3], 0.0, 1.0, &mut s);
        gradcheck::check_param_grad(&mut c, &x, 2e-2);
    }

    #[test]
    fn gradcheck_strided() {
        let mut c = conv(1, 1, 3, 2, 1);
        let mut s = NormalSampler::seed_from(33);
        let x = Tensor::randn(&[1, 1, 5, 5], 0.0, 1.0, &mut s);
        gradcheck::check_input_grad(&mut c, &x, 2e-2);
    }

    #[test]
    fn row_image_permutations_are_inverse() {
        let mut s = NormalSampler::seed_from(34);
        let img = Tensor::randn(&[2, 3, 4, 5], 0.0, 1.0, &mut s);
        let rows = Conv2d::images_to_rows(&img);
        let back = Conv2d::rows_to_images(&rows, 2, 3, 4, 5);
        assert_eq!(back.data(), img.data());
    }

    #[test]
    fn param_roundtrip() {
        let c = conv(2, 4, 3, 1, 1);
        let mut p = Vec::new();
        c.collect_params(&mut p);
        assert_eq!(p.len(), c.param_len());
        assert_eq!(c.param_len(), 4 * 2 * 9 + 4);
    }
}
