//! 2-D convolution via im2col lowering, with a direct (implicit-GEMM)
//! fast path for 3×3 stride-1 kernels.
//!
//! Both the plain and workspace entry points dispatch per call: when
//! [`conv_direct::enabled`] and the geometry is 3×3 stride-1, forward and
//! backward run `vc_tensor::conv_direct`'s fused kernels and never
//! materialize the im2col column matrix; every other geometry takes the
//! lowered route. Both paths are bit-identical by construction — see the
//! `conv_direct` module docs for the FMA-chain argument and
//! `ws_direct_path_matches_im2col_bitwise` below for the layer-level
//! check — so the dispatch (and the runtime toggle) can never perturb a
//! training trajectory.

use crate::layer::Layer;
use vc_tensor::conv_direct::{
    self, conv3x3_backward_dk_into, conv3x3_backward_dx_into, conv3x3_forward_into,
};
use vc_tensor::ops::{
    col2im_into, im2col, im2col_into, matmul_a_bt_epi_into, matmul_at_b_epi_into, matmul_epi_into,
    ConvGeom, Epilogue,
};
use vc_tensor::{NormalSampler, Tensor, Workspace};

/// A 2-D convolution over `[batch, in_ch, h, w]` inputs producing
/// `[batch, out_ch, oh, ow]`.
///
/// The kernel is stored flattened as `[out_ch, in_ch * kh * kw]` so both the
/// forward pass and the weight gradient are single matmuls against the
/// im2col matrix — the same lowering TensorFlow and cuDNN use for small
/// kernels.
pub struct Conv2d {
    kernel: Tensor,
    bias: Tensor,
    dkernel: Tensor,
    dbias: Tensor,
    in_ch: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    cache: Option<ConvCache>,
    /// When set (by [`Layer::enable_relu_fusion`]), the GEMM epilogue also
    /// applies `max(0, ·)` so the following ReLU layer becomes mask-only.
    fused_relu: bool,
}

/// What the training forward stashed for backward. The im2col path keeps
/// the materialized column matrix; the direct 3×3 path keeps the input
/// images themselves (its dK kernel re-materializes one L1-sized band of
/// patch rows at a time, so the `[rows, patch]` matrix never exists).
/// Backward dispatches
/// on this variant — not on the live [`conv_direct::enabled`] toggle — so
/// flipping the path between forward and backward can never mix
/// representations.
enum ConvCache {
    Cols {
        cols: Tensor,
        geom: ConvGeom,
        batch: usize,
    },
    Input {
        x: Tensor,
        geom: ConvGeom,
        batch: usize,
    },
}

impl ConvCache {
    /// Consumes the cache, returning its backing buffer for recycling.
    fn into_vec(self) -> Vec<f32> {
        match self {
            ConvCache::Cols { cols, .. } => cols.into_vec(),
            ConvCache::Input { x, .. } => x.into_vec(),
        }
    }
}

impl Conv2d {
    /// Builds a convolution with He-normal kernels (fan-in = `in_ch·kh·kw`).
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        sampler: &mut NormalSampler,
    ) -> Self {
        let fan_in = in_ch * k * k;
        Conv2d {
            kernel: Tensor::he_normal(&[out_ch, fan_in], fan_in, sampler),
            bias: Tensor::zeros(&[out_ch]),
            dkernel: Tensor::zeros(&[out_ch, fan_in]),
            dbias: Tensor::zeros(&[out_ch]),
            in_ch,
            out_ch,
            kh: k,
            kw: k,
            stride,
            pad,
            cache: None,
            fused_relu: false,
        }
    }

    fn geom_for(&self, h: usize, w: usize) -> ConvGeom {
        ConvGeom {
            h,
            w,
            kh: self.kh,
            kw: self.kw,
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// Permutes `[batch*oh*ow, out_ch]` (im2col output order) into the image
    /// layout `[batch, out_ch, oh, ow]`, writing into `out`.
    fn rows_to_images_into(
        src: &[f32],
        batch: usize,
        out_ch: usize,
        oh: usize,
        ow: usize,
        out: &mut [f32],
    ) {
        debug_assert_eq!(out.len(), batch * out_ch * oh * ow);
        for b in 0..batch {
            for p in 0..oh * ow {
                let row = (b * oh * ow + p) * out_ch;
                for c in 0..out_ch {
                    out[((b * out_ch + c) * oh * ow) + p] = src[row + c];
                }
            }
        }
    }

    /// Inverse of [`Self::rows_to_images_into`].
    fn images_to_rows_into(img: &Tensor, out: &mut [f32]) {
        let dims = img.dims();
        let (batch, ch, oh, ow) = (dims[0], dims[1], dims[2], dims[3]);
        debug_assert_eq!(out.len(), batch * oh * ow * ch);
        let src = img.data();
        for b in 0..batch {
            for c in 0..ch {
                for p in 0..oh * ow {
                    out[(b * oh * ow + p) * ch + c] = src[(b * ch + c) * oh * ow + p];
                }
            }
        }
    }

    /// Test/inspection wrapper over [`Self::images_to_rows_into`].
    #[cfg(test)]
    fn images_to_rows(img: &Tensor) -> Tensor {
        let dims = img.dims();
        let (batch, ch, oh, ow) = (dims[0], dims[1], dims[2], dims[3]);
        let mut out = vec![0.0f32; batch * oh * ow * ch];
        Self::images_to_rows_into(img, &mut out);
        Tensor::from_vec(out, &[batch * oh * ow, ch])
    }

    /// Test/inspection wrapper over [`Self::rows_to_images_into`].
    #[cfg(test)]
    fn rows_to_images(flat: &Tensor, batch: usize, out_ch: usize, oh: usize, ow: usize) -> Tensor {
        let mut out = vec![0.0f32; batch * out_ch * oh * ow];
        Self::rows_to_images_into(flat.data(), batch, out_ch, oh, ow, &mut out);
        Tensor::from_vec(out, &[batch, out_ch, oh, ow])
    }

    /// Bias (or fused bias+ReLU) epilogue for the forward GEMM.
    fn epilogue(&self) -> Epilogue<'_> {
        if self.fused_relu {
            Epilogue::BiasRelu(self.bias.data())
        } else {
            Epilogue::Bias(self.bias.data())
        }
    }

    /// Direct-path backward shared by [`Layer::backward`] and
    /// [`Layer::backward_ws`]: dK, dbias and dx via the fused 3×3 kernels,
    /// bit-identical to the im2col route (see `conv_direct`'s module docs).
    /// All scratch (`dk_scratch`, `colsum`, `dx_scratch`, `dx`) is
    /// caller-provided so the workspace path stays zero-allocation.
    // Takes one slice per scratch buffer by design — bundling them into a
    // struct would just move the argument list one level down.
    #[allow(clippy::too_many_arguments)]
    fn backward_direct(
        &mut self,
        dy: &Tensor,
        x: &Tensor,
        geom: ConvGeom,
        dk_scratch: &mut [f32],
        colsum: &mut [f32],
        dx_scratch: &mut [f32],
        dx: &mut [f32],
    ) {
        conv3x3_backward_dk_into(dy, x, geom, self.dkernel.data_mut(), dk_scratch);
        // dbias += per-channel sums of dy. Each channel's chain runs over
        // (batch, pixel) ascending — exactly row-ascending order over the
        // `[rows, out_ch]` dy matrix, so this matches both `sum_axis0`
        // (plain backward) and the ws path's column-sum loop bit for bit.
        let ohw = geom.out_h() * geom.out_w();
        let batch = dy.dims()[0];
        let dyd = dy.data();
        for (oc, s) in colsum.iter_mut().enumerate() {
            for b in 0..batch {
                let plane = &dyd[(b * self.out_ch + oc) * ohw..][..ohw];
                for v in plane {
                    *s += v;
                }
            }
        }
        for (d, s) in self.dbias.data_mut().iter_mut().zip(colsum.iter()) {
            *d += s;
        }
        conv3x3_backward_dx_into(dy, &self.kernel, self.in_ch, geom, dx, dx_scratch);
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let dims = x.dims();
        assert_eq!(dims.len(), 4, "Conv2d expects [batch, ch, h, w]");
        assert_eq!(dims[1], self.in_ch, "Conv2d channel mismatch");
        let (batch, h, w) = (dims[0], dims[2], dims[3]);
        let geom = self.geom_for(h, w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        if conv_direct::enabled() && conv_direct::supports(&geom) {
            let mut y = vec![0.0f32; batch * self.out_ch * oh * ow];
            let mut stage = vec![0.0f32; conv_direct::fwd_scratch_len(batch, self.in_ch, geom)];
            conv3x3_forward_into(x, &self.kernel, geom, &mut y, self.epilogue(), &mut stage);
            if train {
                self.cache = Some(ConvCache::Input {
                    x: x.clone(),
                    geom,
                    batch,
                });
            }
            return Tensor::from_vec(y, &[batch, self.out_ch, oh, ow]);
        }
        let rows = batch * oh * ow;
        let cols = im2col(x, self.in_ch, geom);
        // [rows, patch] x [out_ch, patch]^T -> [rows, out_ch], bias fused
        let mut flat = vec![0.0f32; rows * self.out_ch];
        matmul_a_bt_epi_into(&cols, &self.kernel, &mut flat, self.epilogue());
        let mut y = vec![0.0f32; batch * self.out_ch * oh * ow];
        Self::rows_to_images_into(&flat, batch, self.out_ch, oh, ow, &mut y);
        if train {
            self.cache = Some(ConvCache::Cols { cols, geom, batch });
        }
        Tensor::from_vec(y, &[batch, self.out_ch, oh, ow])
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Conv2d::backward called without a cached forward");
        match cache {
            ConvCache::Input { x, geom, batch } => {
                let mut dk_scratch =
                    vec![0.0f32; conv_direct::dk_scratch_len(self.in_ch, self.out_ch, geom)];
                let mut colsum = vec![0.0f32; self.out_ch];
                let mut dx_scratch =
                    vec![0.0f32; conv_direct::dx_scratch_len(batch, self.in_ch, self.out_ch)];
                let mut dx = vec![0.0f32; batch * self.in_ch * geom.h * geom.w];
                self.backward_direct(
                    dy,
                    &x,
                    geom,
                    &mut dk_scratch,
                    &mut colsum,
                    &mut dx_scratch,
                    &mut dx,
                );
                let dims = [batch, self.in_ch, geom.h, geom.w];
                self.cache = Some(ConvCache::Input { x, geom, batch });
                Tensor::from_vec(dx, &dims)
            }
            ConvCache::Cols { cols, geom, batch } => {
                let (oh, ow) = (geom.out_h(), geom.out_w());
                let rows = batch * oh * ow;
                let patch = self.in_ch * self.kh * self.kw;
                let mut dy_rows = vec![0.0f32; rows * self.out_ch];
                Self::images_to_rows_into(dy, &mut dy_rows);
                let dy_rows = Tensor::from_vec(dy_rows, &[rows, self.out_ch]);
                // dK += dy_rows^T · cols -> [out_ch, patch]
                matmul_at_b_epi_into(
                    &dy_rows,
                    &cols,
                    self.dkernel.data_mut(),
                    Epilogue::Accumulate,
                );
                self.dbias.add_assign(&dy_rows.sum_axis0());
                // dcols = dy_rows · K -> [rows, patch]
                let mut dcols = vec![0.0f32; rows * patch];
                matmul_epi_into(&dy_rows, &self.kernel, &mut dcols, Epilogue::Store);
                let dcols = Tensor::from_vec(dcols, &[rows, patch]);
                let mut dx = vec![0.0f32; batch * self.in_ch * geom.h * geom.w];
                col2im_into(&dcols, batch, self.in_ch, geom, &mut dx);
                let dims = [batch, self.in_ch, geom.h, geom.w];
                self.cache = Some(ConvCache::Cols { cols, geom, batch });
                Tensor::from_vec(dx, &dims)
            }
        }
    }

    fn forward_ws(&mut self, x: Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let dims = x.dims();
        assert_eq!(dims.len(), 4, "Conv2d expects [batch, ch, h, w]");
        assert_eq!(dims[1], self.in_ch, "Conv2d channel mismatch");
        let (batch, h, w) = (dims[0], dims[2], dims[3]);
        let geom = self.geom_for(h, w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let rows = batch * oh * ow;
        let patch = self.in_ch * self.kh * self.kw;
        // Recycle last step's cache before taking, so one warm-up step is
        // enough to make the pool self-sufficient.
        if let Some(prev) = self.cache.take() {
            ws.recycle(prev.into_vec());
        }
        if conv_direct::enabled() && conv_direct::supports(&geom) {
            // Direct 3×3 path: no column matrix at all. The training cache
            // is the input itself, which backward's fused kernels read.
            let mut y = ws.take(batch * self.out_ch * oh * ow);
            let mut stage = ws.take(conv_direct::fwd_scratch_len(batch, self.in_ch, geom));
            conv3x3_forward_into(&x, &self.kernel, geom, &mut y, self.epilogue(), &mut stage);
            ws.recycle(stage);
            if train {
                self.cache = Some(ConvCache::Input { x, geom, batch });
            } else {
                ws.recycle(x.into_vec());
            }
            return Tensor::from_vec(y, &[batch, self.out_ch, oh, ow]);
        }
        let mut cols_buf = ws.take(rows * patch);
        im2col_into(&x, self.in_ch, geom, &mut cols_buf);
        let cols = Tensor::from_vec(cols_buf, &[rows, patch]);
        ws.recycle(x.into_vec());
        let mut flat = ws.take(rows * self.out_ch);
        matmul_a_bt_epi_into(&cols, &self.kernel, &mut flat, self.epilogue());
        let mut y = ws.take(batch * self.out_ch * oh * ow);
        Self::rows_to_images_into(&flat, batch, self.out_ch, oh, ow, &mut y);
        ws.recycle(flat);
        if train {
            self.cache = Some(ConvCache::Cols { cols, geom, batch });
        } else {
            ws.recycle(cols.into_vec());
        }
        Tensor::from_vec(y, &[batch, self.out_ch, oh, ow])
    }

    fn backward_ws(&mut self, dy: Tensor, ws: &mut Workspace) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("Conv2d::backward called without a cached forward");
        match cache {
            ConvCache::Input { x, geom, batch } => {
                let mut dk_scratch =
                    ws.take(conv_direct::dk_scratch_len(self.in_ch, self.out_ch, geom));
                let mut colsum = ws.take(self.out_ch);
                let mut dx_scratch =
                    ws.take(conv_direct::dx_scratch_len(batch, self.in_ch, self.out_ch));
                let mut dx = ws.take(batch * self.in_ch * geom.h * geom.w);
                self.backward_direct(
                    &dy,
                    &x,
                    geom,
                    &mut dk_scratch,
                    &mut colsum,
                    &mut dx_scratch,
                    &mut dx,
                );
                ws.recycle(dk_scratch);
                ws.recycle(colsum);
                ws.recycle(dx_scratch);
                ws.recycle(dy.into_vec());
                let dims = [batch, self.in_ch, geom.h, geom.w];
                self.cache = Some(ConvCache::Input { x, geom, batch });
                Tensor::from_vec(dx, &dims)
            }
            ConvCache::Cols { cols, geom, batch } => {
                let (oh, ow) = (geom.out_h(), geom.out_w());
                let rows = batch * oh * ow;
                let patch = self.in_ch * self.kh * self.kw;
                let mut dy_rows_buf = ws.take(rows * self.out_ch);
                Self::images_to_rows_into(&dy, &mut dy_rows_buf);
                ws.recycle(dy.into_vec());
                let dy_rows = Tensor::from_vec(dy_rows_buf, &[rows, self.out_ch]);
                matmul_at_b_epi_into(
                    &dy_rows,
                    &cols,
                    self.dkernel.data_mut(),
                    Epilogue::Accumulate,
                );
                // dbias += column sums of dy_rows, in `sum_axis0`'s
                // accumulation order so both backward paths stay
                // bit-identical.
                let mut colsum = ws.take(self.out_ch);
                for r in 0..rows {
                    let row = &dy_rows.data()[r * self.out_ch..(r + 1) * self.out_ch];
                    for (o, v) in colsum.iter_mut().zip(row) {
                        *o += v;
                    }
                }
                for (d, s) in self.dbias.data_mut().iter_mut().zip(&colsum) {
                    *d += s;
                }
                ws.recycle(colsum);
                let mut dcols = ws.take(rows * patch);
                matmul_epi_into(&dy_rows, &self.kernel, &mut dcols, Epilogue::Store);
                ws.recycle(dy_rows.into_vec());
                let dcols = Tensor::from_vec(dcols, &[rows, patch]);
                let mut dx = ws.take(batch * self.in_ch * geom.h * geom.w);
                col2im_into(&dcols, batch, self.in_ch, geom, &mut dx);
                ws.recycle(dcols.into_vec());
                let dims = [batch, self.in_ch, geom.h, geom.w];
                self.cache = Some(ConvCache::Cols { cols, geom, batch });
                Tensor::from_vec(dx, &dims)
            }
        }
    }

    fn enable_relu_fusion(&mut self) -> bool {
        self.fused_relu = true;
        true
    }

    fn param_len(&self) -> usize {
        self.kernel.numel() + self.bias.numel()
    }

    fn collect_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.kernel.data());
        out.extend_from_slice(self.bias.data());
    }

    fn load_params(&mut self, src: &[f32]) -> usize {
        let nk = self.kernel.numel();
        let nb = self.bias.numel();
        self.kernel.data_mut().copy_from_slice(&src[..nk]);
        self.bias.data_mut().copy_from_slice(&src[nk..nk + nb]);
        nk + nb
    }

    fn collect_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.dkernel.data());
        out.extend_from_slice(self.dbias.data());
    }

    fn zero_grads(&mut self) {
        self.dkernel.map_inplace(|_| 0.0);
        self.dbias.map_inplace(|_| 0.0);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        assert_eq!(in_dims.len(), 4);
        let geom = self.geom_for(in_dims[2], in_dims[3]);
        vec![in_dims[0], self.out_ch, geom.out_h(), geom.out_w()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;

    fn conv(in_ch: usize, out_ch: usize, k: usize, stride: usize, pad: usize) -> Conv2d {
        let mut s = NormalSampler::seed_from(21);
        Conv2d::new(in_ch, out_ch, k, stride, pad, &mut s)
    }

    #[test]
    fn forward_shape() {
        let mut c = conv(3, 8, 3, 1, 1);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = c.forward(&x, false);
        assert_eq!(y.dims(), &[2, 8, 16, 16]);
        assert_eq!(c.out_dims(&[2, 3, 16, 16]), vec![2, 8, 16, 16]);
    }

    #[test]
    fn strided_forward_shape() {
        let mut c = conv(1, 4, 3, 2, 1);
        let y = c.forward(&Tensor::zeros(&[1, 1, 8, 8]), false);
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 conv, single channel, kernel weight 1, bias 0 = identity.
        let mut c = conv(1, 1, 1, 1, 0);
        c.load_params(&[1.0, 0.0]);
        let mut s = NormalSampler::seed_from(3);
        let x = Tensor::randn(&[2, 1, 4, 4], 0.0, 1.0, &mut s);
        let y = c.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn bias_broadcasts_per_channel() {
        let mut c = conv(1, 2, 1, 1, 0);
        c.load_params(&[0.0, 0.0, 1.5, -2.0]); // zero kernels, biases 1.5 / -2.0
        let y = c.forward(&Tensor::zeros(&[1, 1, 2, 2]), false);
        let d = y.data();
        assert!(d[..4].iter().all(|&v| v == 1.5));
        assert!(d[4..].iter().all(|&v| v == -2.0));
    }

    #[test]
    fn gradcheck_inputs() {
        let mut c = conv(2, 3, 3, 1, 1);
        let mut s = NormalSampler::seed_from(31);
        let x = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, &mut s);
        gradcheck::check_input_grad(&mut c, &x, 2e-2);
    }

    #[test]
    fn gradcheck_params() {
        let mut c = conv(1, 2, 2, 1, 0);
        let mut s = NormalSampler::seed_from(32);
        let x = Tensor::randn(&[2, 1, 3, 3], 0.0, 1.0, &mut s);
        gradcheck::check_param_grad(&mut c, &x, 2e-2);
    }

    #[test]
    fn gradcheck_strided() {
        let mut c = conv(1, 1, 3, 2, 1);
        let mut s = NormalSampler::seed_from(33);
        let x = Tensor::randn(&[1, 1, 5, 5], 0.0, 1.0, &mut s);
        gradcheck::check_input_grad(&mut c, &x, 2e-2);
    }

    #[test]
    fn row_image_permutations_are_inverse() {
        let mut s = NormalSampler::seed_from(34);
        let img = Tensor::randn(&[2, 3, 4, 5], 0.0, 1.0, &mut s);
        let rows = Conv2d::images_to_rows(&img);
        let back = Conv2d::rows_to_images(&rows, 2, 3, 4, 5);
        assert_eq!(back.data(), img.data());
    }

    #[test]
    fn param_roundtrip() {
        let c = conv(2, 4, 3, 1, 1);
        let mut p = Vec::new();
        c.collect_params(&mut p);
        assert_eq!(p.len(), c.param_len());
        assert_eq!(c.param_len(), 4 * 2 * 9 + 4);
    }

    /// Runs two full ws training steps (forward + backward, so the
    /// recycle-previous-cache path executes) and returns the bits of the
    /// last output, last dx and the accumulated grads.
    fn ws_step_bits(direct: bool) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        conv_direct::set_enabled(direct);
        let mut c = conv(2, 5, 3, 1, 1);
        c.enable_relu_fusion();
        let mut s = NormalSampler::seed_from(77);
        let xs = Tensor::randn(&[2, 2, 6, 6], 0.0, 1.0, &mut s);
        let dys = Tensor::randn(&[2, 5, 6, 6], 0.0, 1.0, &mut s);
        let mut ws = Workspace::new();
        let mut y = Tensor::zeros(&[1]);
        let mut dx = Tensor::zeros(&[1]);
        for _ in 0..2 {
            let x = Tensor::from_vec(xs.data().to_vec(), &[2, 2, 6, 6]);
            y = c.forward_ws(x, true, &mut ws);
            let dy = Tensor::from_vec(dys.data().to_vec(), &[2, 5, 6, 6]);
            dx = c.backward_ws(dy, &mut ws);
        }
        let mut grads = Vec::new();
        c.collect_grads(&mut grads);
        conv_direct::clear_forced();
        (
            y.data().iter().map(|v| v.to_bits()).collect(),
            dx.data().iter().map(|v| v.to_bits()).collect(),
            grads.iter().map(|v| v.to_bits()).collect(),
        )
    }

    #[test]
    fn ws_direct_path_matches_im2col_bitwise() {
        let _g = crate::CONV_PATH_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let direct = ws_step_bits(true);
        let lowered = ws_step_bits(false);
        assert_eq!(
            direct, lowered,
            "direct vs im2col ws training step must be bit-identical"
        );
    }

    /// Unsupported geometry (stride 2) must fall back to im2col even with
    /// the direct path forced on — `conv3x3_forward_into` asserts on its
    /// geometry, so misrouting would panic rather than silently diverge.
    #[test]
    fn direct_toggle_skips_unsupported_geometry() {
        let _g = crate::CONV_PATH_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        conv_direct::set_enabled(true);
        let mut c = conv(1, 2, 3, 2, 1);
        let mut s = NormalSampler::seed_from(78);
        let x = Tensor::randn(&[1, 1, 8, 8], 0.0, 1.0, &mut s);
        let mut ws = Workspace::new();
        let y_ws = c.forward_ws(
            Tensor::from_vec(x.data().to_vec(), &[1, 1, 8, 8]),
            true,
            &mut ws,
        );
        let dy = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, &mut s);
        let dx_ws = c.backward_ws(Tensor::from_vec(dy.data().to_vec(), &[1, 2, 4, 4]), &mut ws);
        conv_direct::clear_forced();
        let mut c2 = conv(1, 2, 3, 2, 1);
        let y = c2.forward(&x, true);
        let dx = c2.backward(&dy);
        assert_eq!(y.data(), y_ws.data());
        assert_eq!(dx.data(), dx_ws.data());
    }

    /// The backward dispatch keys on the cached variant, so flipping the
    /// toggle between forward and backward is benign.
    #[test]
    fn toggle_flip_between_forward_and_backward_is_safe() {
        let _g = crate::CONV_PATH_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        conv_direct::set_enabled(true);
        let mut c = conv(1, 3, 3, 1, 1);
        let mut s = NormalSampler::seed_from(79);
        let x = Tensor::randn(&[1, 1, 5, 5], 0.0, 1.0, &mut s);
        let dy = Tensor::randn(&[1, 3, 5, 5], 0.0, 1.0, &mut s);
        let mut ws = Workspace::new();
        let _ = c.forward_ws(
            Tensor::from_vec(x.data().to_vec(), &[1, 1, 5, 5]),
            true,
            &mut ws,
        );
        conv_direct::set_enabled(false); // flipped mid-step
        let dx_a = c.backward_ws(Tensor::from_vec(dy.data().to_vec(), &[1, 3, 5, 5]), &mut ws);
        conv_direct::clear_forced();
        let mut c2 = conv(1, 3, 3, 1, 1);
        let _ = c2.forward(&x, true);
        let dx_b = c2.backward(&dy);
        assert_eq!(dx_a.data(), dx_b.data());
    }
}
