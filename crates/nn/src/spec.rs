//! Declarative model specifications.
//!
//! The paper distributes the model architecture to clients as a 269 KB
//! `.json` file alongside the parameter `.h5` file. [`ModelSpec`] plays the
//! same role here: a serde-serializable description from which every client
//! builds an identical [`Sequential`] and into which the server's flat
//! parameter vector can be loaded.

use crate::activation::Relu;
use crate::conv::Conv2d;
use crate::dense::Dense;
use crate::layer::Layer;
use crate::model::Sequential;
use crate::norm::BatchNorm;
use crate::pool::{AvgPoolGlobal, Flatten, MaxPool2};
use crate::residual::Residual;
use serde::{Deserialize, Serialize};
use vc_tensor::NormalSampler;

/// One layer in a [`ModelSpec`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Fully connected `in -> out`.
    Dense { input: usize, output: usize },
    /// 2-D convolution.
    Conv {
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
    },
    /// ReLU activation.
    Relu,
    /// 2×2 max pooling, stride 2.
    MaxPool2,
    /// Global average pooling.
    AvgPoolGlobal,
    /// Flatten to `[batch, features]`.
    Flatten,
    /// Batch normalization over `ch` channels.
    BatchNorm { ch: usize },
    /// Inverted dropout with drop probability `p` (seeded per build).
    Dropout { p: f32 },
    /// Hyperbolic tangent activation.
    Tanh,
    /// Logistic sigmoid activation.
    Sigmoid,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu { slope: f32 },
    /// Residual block wrapping an inner pipeline.
    Residual { body: Vec<LayerSpec> },
}

/// A complete model description: input shape (`[ch, h, w]` for images or
/// `[features]` for flat inputs) and an ordered layer list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable name, e.g. `"resnet-lite"`.
    pub name: String,
    /// Per-sample input dimensions (batch axis excluded).
    pub input: Vec<usize>,
    /// Number of output classes (the final layer must produce this width).
    pub classes: usize,
    /// Layer pipeline.
    pub layers: Vec<LayerSpec>,
}

impl ModelSpec {
    /// Serializes to the JSON wire format (the paper's `.json` model file).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ModelSpec serialization cannot fail")
    }

    /// Parses the JSON wire format.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Size in bytes of the serialized spec; drives the simulated download
    /// of the model file.
    pub fn json_len(&self) -> usize {
        self.to_json().len()
    }

    /// Instantiates the model with seeded He-normal initialization. Two
    /// calls with the same seed produce bit-identical parameters on every
    /// client — the paper achieves this by shipping an initial `.h5`.
    pub fn build(&self, seed: u64) -> Sequential {
        let mut sampler = NormalSampler::seed_from(seed);
        let mut model = Sequential::new();
        for l in &self.layers {
            model.push_boxed(build_layer(l, &mut sampler));
        }
        // Validate the pipeline end-to-end with a probe batch dimension.
        let mut dims = vec![1usize];
        dims.extend_from_slice(&self.input);
        let out = model.out_dims(&dims);
        assert_eq!(
            out,
            vec![1, self.classes],
            "spec `{}` produces output {:?}, expected [1, {}]",
            self.name,
            out,
            self.classes
        );
        model
    }
}

fn build_layer(spec: &LayerSpec, sampler: &mut NormalSampler) -> Box<dyn Layer> {
    match spec {
        LayerSpec::Dense { input, output } => Box::new(Dense::new(*input, *output, sampler)),
        LayerSpec::Conv {
            in_ch,
            out_ch,
            k,
            stride,
            pad,
        } => Box::new(Conv2d::new(*in_ch, *out_ch, *k, *stride, *pad, sampler)),
        LayerSpec::Relu => Box::new(Relu::new()),
        LayerSpec::MaxPool2 => Box::new(MaxPool2::new()),
        LayerSpec::AvgPoolGlobal => Box::new(AvgPoolGlobal::new()),
        LayerSpec::Flatten => Box::new(Flatten::new()),
        LayerSpec::BatchNorm { ch } => Box::new(BatchNorm::new(*ch, 0.9)),
        LayerSpec::Dropout { p } => {
            // Derive the layer seed from the sampler stream so two builds
            // with the same model seed drop the same units.
            let seed = (sampler.sample().to_bits() as u64) << 16;
            Box::new(crate::dropout::Dropout::new(*p, seed))
        }
        LayerSpec::Tanh => Box::new(crate::act_extra::Tanh::new()),
        LayerSpec::Sigmoid => Box::new(crate::act_extra::Sigmoid::new()),
        LayerSpec::LeakyRelu { slope } => Box::new(crate::act_extra::LeakyRelu::new(*slope)),
        LayerSpec::Residual { body } => {
            let mut inner = Sequential::new();
            for l in body {
                inner.push_boxed(build_layer(l, sampler));
            }
            Box::new(Residual::new(inner))
        }
    }
}

/// A small multilayer perceptron over flattened images — the cheapest model,
/// used by fast tests and the quickstart example.
pub fn mlp(input: &[usize], hidden: usize, classes: usize) -> ModelSpec {
    let features: usize = input.iter().product();
    ModelSpec {
        name: "mlp".into(),
        input: input.to_vec(),
        classes,
        layers: vec![
            LayerSpec::Flatten,
            LayerSpec::Dense {
                input: features,
                output: hidden,
            },
            LayerSpec::Relu,
            LayerSpec::Dense {
                input: hidden,
                output: classes,
            },
        ],
    }
}

/// A compact convolutional network for `[ch, h, w]` images with h, w
/// divisible by 4: two conv+pool stages and a dense head. This is the
/// workhorse model of the experiment harness.
pub fn small_cnn(input: &[usize], classes: usize) -> ModelSpec {
    assert_eq!(input.len(), 3, "small_cnn expects [ch, h, w]");
    let (ch, h, w) = (input[0], input[1], input[2]);
    assert!(
        h % 4 == 0 && w % 4 == 0,
        "small_cnn needs h, w divisible by 4"
    );
    let flat = 32 * (h / 4) * (w / 4);
    ModelSpec {
        name: "small-cnn".into(),
        input: input.to_vec(),
        classes,
        layers: vec![
            LayerSpec::Conv {
                in_ch: ch,
                out_ch: 16,
                k: 3,
                stride: 1,
                pad: 1,
            },
            LayerSpec::Relu,
            LayerSpec::MaxPool2,
            LayerSpec::Conv {
                in_ch: 16,
                out_ch: 32,
                k: 3,
                stride: 1,
                pad: 1,
            },
            LayerSpec::Relu,
            LayerSpec::MaxPool2,
            LayerSpec::Flatten,
            LayerSpec::Dense {
                input: flat,
                output: 64,
            },
            LayerSpec::Relu,
            LayerSpec::Dense {
                input: 64,
                output: classes,
            },
        ],
    }
}

/// A residual network in the ResNetV2 style (BN→ReLU→Conv pre-activation
/// blocks) scaled down from the paper's 552-layer model: a stem conv,
/// `blocks` residual blocks per stage across two stages, and a
/// global-average-pool head.
pub fn resnet_lite(input: &[usize], blocks: usize, classes: usize) -> ModelSpec {
    assert_eq!(input.len(), 3, "resnet_lite expects [ch, h, w]");
    let (ch, h, w) = (input[0], input[1], input[2]);
    assert!(h % 2 == 0 && w % 2 == 0, "resnet_lite needs even h, w");
    let width = 16;

    let res_block = |c: usize| LayerSpec::Residual {
        body: vec![
            LayerSpec::BatchNorm { ch: c },
            LayerSpec::Relu,
            LayerSpec::Conv {
                in_ch: c,
                out_ch: c,
                k: 3,
                stride: 1,
                pad: 1,
            },
            LayerSpec::BatchNorm { ch: c },
            LayerSpec::Relu,
            LayerSpec::Conv {
                in_ch: c,
                out_ch: c,
                k: 3,
                stride: 1,
                pad: 1,
            },
        ],
    };

    let mut layers = vec![LayerSpec::Conv {
        in_ch: ch,
        out_ch: width,
        k: 3,
        stride: 1,
        pad: 1,
    }];
    for _ in 0..blocks {
        layers.push(res_block(width));
    }
    // Downsample + widen for stage 2.
    layers.push(LayerSpec::MaxPool2);
    layers.push(LayerSpec::Conv {
        in_ch: width,
        out_ch: 2 * width,
        k: 1,
        stride: 1,
        pad: 0,
    });
    for _ in 0..blocks {
        layers.push(res_block(2 * width));
    }
    layers.push(LayerSpec::BatchNorm { ch: 2 * width });
    layers.push(LayerSpec::Relu);
    layers.push(LayerSpec::AvgPoolGlobal);
    layers.push(LayerSpec::Dense {
        input: 2 * width,
        output: classes,
    });

    ModelSpec {
        name: format!("resnet-lite-{blocks}"),
        input: input.to_vec(),
        classes,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_tensor::Tensor;

    #[test]
    fn mlp_builds_and_runs() {
        let spec = mlp(&[3, 8, 8], 32, 10);
        let mut m = spec.build(1);
        let y = m.predict(&Tensor::zeros(&[2, 3, 8, 8]));
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn small_cnn_builds_and_runs() {
        let spec = small_cnn(&[3, 16, 16], 10);
        let mut m = spec.build(2);
        let y = m.predict(&Tensor::zeros(&[2, 3, 16, 16]));
        assert_eq!(y.dims(), &[2, 10]);
        assert!(m.param_count() > 10_000, "{}", m.param_count());
    }

    #[test]
    fn resnet_lite_builds_and_runs() {
        let spec = resnet_lite(&[3, 8, 8], 2, 10);
        let mut m = spec.build(3);
        let y = m.predict(&Tensor::zeros(&[2, 3, 8, 8]));
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn json_roundtrip() {
        let spec = resnet_lite(&[3, 16, 16], 2, 10);
        let json = spec.to_json();
        let back = ModelSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(spec.json_len(), json.len());
    }

    #[test]
    fn same_seed_same_params() {
        let spec = small_cnn(&[3, 8, 8], 4);
        let a = spec.build(42).params_flat();
        let b = spec.build(42).params_flat();
        assert_eq!(a, b);
        let c = spec.build(43).params_flat();
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "expected [1, 10]")]
    fn build_rejects_inconsistent_spec() {
        let mut spec = mlp(&[4], 8, 10);
        // Sabotage the head width.
        if let Some(LayerSpec::Dense { output, .. }) = spec.layers.last_mut() {
            *output = 7;
        }
        spec.build(1);
    }

    #[test]
    fn paramless_layers_serialize_compactly() {
        let json = serde_json::to_string(&LayerSpec::Relu).unwrap();
        assert_eq!(json, "\"Relu\"");
    }

    #[test]
    fn resnet_param_count_grows_with_blocks() {
        let p1 = resnet_lite(&[3, 8, 8], 1, 10).build(1).param_count();
        let p3 = resnet_lite(&[3, 8, 8], 3, 10).build(1).param_count();
        assert!(p3 > p1);
    }
}
