//! Additional activations: sigmoid, tanh and leaky ReLU.
//!
//! The reference models use plain ReLU; these exist for library
//! completeness and for the activation ablation.

use crate::layer::Layer;
use vc_tensor::Tensor;

/// Logistic sigmoid `y = 1/(1+e^{-x})`, elementwise.
pub struct Sigmoid {
    y_cache: Option<Tensor>,
}

impl Sigmoid {
    /// Builds the layer.
    pub fn new() -> Self {
        Sigmoid { y_cache: None }
    }
}

impl Default for Sigmoid {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        if train {
            self.y_cache = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let y = self
            .y_cache
            .as_ref()
            .expect("Sigmoid::backward called without a cached forward");
        // dy * y * (1 - y)
        dy.zip_with(y, |g, yv| g * yv * (1.0 - yv))
    }

    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }
}

/// Hyperbolic tangent, elementwise.
pub struct Tanh {
    y_cache: Option<Tensor>,
}

impl Tanh {
    /// Builds the layer.
    pub fn new() -> Self {
        Tanh { y_cache: None }
    }
}

impl Default for Tanh {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = x.map(f32::tanh);
        if train {
            self.y_cache = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let y = self
            .y_cache
            .as_ref()
            .expect("Tanh::backward called without a cached forward");
        dy.zip_with(y, |g, yv| g * (1.0 - yv * yv))
    }

    fn name(&self) -> &'static str {
        "tanh"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }
}

/// Leaky ReLU: `y = x` for positive inputs, `slope·x` otherwise.
pub struct LeakyRelu {
    slope: f32,
    x_cache: Option<Tensor>,
}

impl LeakyRelu {
    /// Builds the layer with the given negative-side slope (e.g. 0.01).
    pub fn new(slope: f32) -> Self {
        assert!((0.0..1.0).contains(&slope), "slope {slope} outside [0, 1)");
        LeakyRelu {
            slope,
            x_cache: None,
        }
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.x_cache = Some(x.clone());
        }
        let s = self.slope;
        x.map(|v| if v > 0.0 { v } else { s * v })
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .x_cache
            .as_ref()
            .expect("LeakyRelu::backward called without a cached forward");
        let s = self.slope;
        dy.zip_with(x, |g, xv| if xv > 0.0 { g } else { s * g })
    }

    fn name(&self) -> &'static str {
        "leaky_relu"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use vc_tensor::NormalSampler;

    fn probe(seed: u64) -> Tensor {
        let mut s = NormalSampler::seed_from(seed);
        Tensor::randn(&[3, 4], 0.0, 1.0, &mut s)
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let mut l = Sigmoid::new();
        let y = l.forward(&Tensor::from_vec(vec![-100.0, 0.0, 100.0], &[3]), false);
        assert!(y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn sigmoid_gradcheck() {
        gradcheck::check_input_grad(&mut Sigmoid::new(), &probe(1), 1e-2);
    }

    #[test]
    fn tanh_is_odd_and_bounded() {
        let mut l = Tanh::new();
        let y = l.forward(&Tensor::from_vec(vec![-2.0, 0.0, 2.0], &[3]), false);
        assert!((y.data()[0] + y.data()[2]).abs() < 1e-6);
        assert_eq!(y.data()[1], 0.0);
        assert!(y.data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn tanh_gradcheck() {
        gradcheck::check_input_grad(&mut Tanh::new(), &probe(2), 1e-2);
    }

    #[test]
    fn leaky_relu_leaks() {
        let mut l = LeakyRelu::new(0.1);
        let y = l.forward(&Tensor::from_vec(vec![-10.0, 10.0], &[2]), false);
        assert_eq!(y.data(), &[-1.0, 10.0]);
    }

    #[test]
    fn leaky_relu_gradcheck_off_kink() {
        let x = probe(3).map(|v| {
            if v.abs() < 0.2 {
                0.5_f32.copysign(v)
            } else {
                v
            }
        });
        gradcheck::check_input_grad(&mut LeakyRelu::new(0.05), &x, 1e-2);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn leaky_relu_rejects_bad_slope() {
        LeakyRelu::new(1.5);
    }
}
