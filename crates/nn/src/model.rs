//! The [`Sequential`] model container.

use crate::layer::{BoxedLayer, Layer};
use vc_tensor::{Tensor, Workspace};

/// A model as an ordered pipeline of layers.
///
/// `Sequential` itself implements [`Layer`], which lets [`crate::Residual`]
/// blocks nest arbitrary sub-pipelines. Its flat-parameter accessors are the
/// bridge to the distributed layer: [`Sequential::params_flat`] produces the
/// `W` vector of the paper's Eq. (1) and [`Sequential::set_params_flat`]
/// installs a server copy received over the (simulated) network.
pub struct Sequential {
    layers: Vec<BoxedLayer>,
    /// Whether the ReLU-fusion peephole has run over this pipeline.
    fused: bool,
}

impl Sequential {
    /// An empty pipeline.
    pub fn new() -> Self {
        Sequential {
            layers: Vec::new(),
            fused: false,
        }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: BoxedLayer) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the pipeline has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total number of scalar parameters (the paper's model has 4,972,746).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_len()).sum()
    }

    /// Copies all parameters into one flat vector.
    pub fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.params_flat_into(&mut out);
        out
    }

    /// [`Self::params_flat`] into a reused vector: cleared, then filled.
    pub fn params_flat_into(&self, out: &mut Vec<f32>) {
        out.clear();
        for l in &self.layers {
            l.collect_params(out);
        }
    }

    /// Installs a flat parameter vector. Panics when the length disagrees
    /// with `param_count()` — a corrupted blob must never half-load.
    pub fn set_params_flat(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "parameter vector length {} does not match model ({})",
            params.len(),
            self.param_count()
        );
        let mut off = 0;
        for l in &mut self.layers {
            off += l.load_params(&params[off..]);
        }
        debug_assert_eq!(off, params.len());
    }

    /// Copies all accumulated gradients into one flat vector (same layout as
    /// [`Self::params_flat`]).
    pub fn grads_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.grads_flat_into(&mut out);
        out
    }

    /// [`Self::grads_flat`] into a reused vector: cleared, then filled. After
    /// the first call the vector's capacity suffices, so the per-step
    /// gradient gather in the workspace trainer allocates nothing.
    pub fn grads_flat_into(&self, out: &mut Vec<f32>) {
        out.clear();
        for l in &self.layers {
            l.collect_grads(out);
        }
    }

    /// Clears gradients in every layer.
    pub fn zero_grads_all(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    /// Runs the pipeline in inference mode.
    pub fn predict(&mut self, x: &Tensor) -> Tensor {
        Layer::forward(self, x, false)
    }

    /// Fuses each ReLU that directly follows a fusion-capable layer (dense,
    /// conv) into that layer's GEMM epilogue. Bit-exact: the downstream
    /// values and masks are unchanged (`relu(x) > 0 ⇔ x > 0`); the fused
    /// pipeline just skips one full pass over each activation. Idempotent;
    /// called automatically by the workspace training path.
    pub fn fuse_relu(&mut self) {
        if self.fused {
            return;
        }
        self.fused = true;
        for i in 0..self.layers.len().saturating_sub(1) {
            if self.layers[i + 1].is_relu() && self.layers[i].enable_relu_fusion() {
                self.layers[i + 1].set_fused_upstream();
            }
        }
    }

    /// Workspace-path forward over the whole pipeline (training-mode
    /// tensors move by value; buffers recycle through `ws`).
    pub fn forward_pipeline_ws(&mut self, x: Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let mut cur = x;
        for l in &mut self.layers {
            cur = l.forward_ws(cur, train, ws);
        }
        cur
    }

    /// Workspace-path backward over the whole pipeline; the returned input
    /// gradient's buffer also comes from `ws`.
    pub fn backward_pipeline_ws(&mut self, dy: Tensor, ws: &mut Workspace) -> Tensor {
        let mut cur = dy;
        for l in self.layers.iter_mut().rev() {
            cur = l.backward_ws(cur, ws);
        }
        cur
    }

    /// One-line summary of the architecture, e.g. `conv2d→relu→…`.
    pub fn summary(&self) -> String {
        self.layers
            .iter()
            .map(|l| l.name())
            .collect::<Vec<_>>()
            .join("→")
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        // Feed the borrowed input straight to the first layer instead of
        // cloning it at entry; only layer outputs move through the chain.
        let Some((first, rest)) = self.layers.split_first_mut() else {
            return x.clone();
        };
        let mut cur = first.forward(x, train);
        for l in rest {
            cur = l.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let Some((last, front)) = self.layers.split_last_mut() else {
            return dy.clone();
        };
        let mut cur = last.backward(dy);
        for l in front.iter_mut().rev() {
            cur = l.backward(&cur);
        }
        cur
    }

    fn forward_ws(&mut self, x: Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        self.forward_pipeline_ws(x, train, ws)
    }

    fn backward_ws(&mut self, dy: Tensor, ws: &mut Workspace) -> Tensor {
        self.backward_pipeline_ws(dy, ws)
    }

    fn param_len(&self) -> usize {
        self.param_count()
    }

    fn collect_params(&self, out: &mut Vec<f32>) {
        for l in &self.layers {
            l.collect_params(out);
        }
    }

    fn load_params(&mut self, src: &[f32]) -> usize {
        let mut off = 0;
        for l in &mut self.layers {
            off += l.load_params(&src[off..]);
        }
        off
    }

    fn collect_grads(&self, out: &mut Vec<f32>) {
        for l in &self.layers {
            l.collect_grads(out);
        }
    }

    fn zero_grads(&mut self) {
        self.zero_grads_all();
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        let mut dims = in_dims.to_vec();
        for l in &self.layers {
            dims = l.out_dims(&dims);
        }
        dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use crate::loss::SoftmaxCrossEntropy;
    use vc_tensor::NormalSampler;

    fn tiny_model(seed: u64) -> Sequential {
        let mut s = NormalSampler::seed_from(seed);
        Sequential::new()
            .push(Dense::new(4, 8, &mut s))
            .push(Relu::new())
            .push(Dense::new(8, 3, &mut s))
    }

    #[test]
    fn forward_shapes_compose() {
        let mut m = tiny_model(1);
        let y = m.predict(&Tensor::zeros(&[5, 4]));
        assert_eq!(y.dims(), &[5, 3]);
        assert_eq!(m.out_dims(&[5, 4]), vec![5, 3]);
    }

    #[test]
    fn flat_params_roundtrip() {
        let m = tiny_model(2);
        let p = m.params_flat();
        assert_eq!(p.len(), m.param_count());
        assert_eq!(p.len(), 4 * 8 + 8 + 8 * 3 + 3);
        let mut m2 = tiny_model(3);
        m2.set_params_flat(&p);
        assert_eq!(m2.params_flat(), p);
    }

    #[test]
    fn identical_params_give_identical_outputs() {
        let mut a = tiny_model(4);
        let mut b = tiny_model(5);
        b.set_params_flat(&a.params_flat());
        let mut s = NormalSampler::seed_from(6);
        let x = Tensor::randn(&[3, 4], 0.0, 1.0, &mut s);
        assert_eq!(a.predict(&x).data(), b.predict(&x).data());
    }

    #[test]
    #[should_panic(expected = "does not match model")]
    fn rejects_wrong_length_vector() {
        tiny_model(7).set_params_flat(&[0.0; 3]);
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        // The end-to-end sanity check: backprop through the whole pipeline
        // must reduce the training loss for a small step.
        let mut m = tiny_model(8);
        let mut s = NormalSampler::seed_from(9);
        let x = Tensor::randn(&[16, 4], 0.0, 1.0, &mut s);
        let labels: Vec<usize> = (0..16).map(|i| i % 3).collect();

        let logits = m.forward(&x, true);
        let (loss0, dlogits) = SoftmaxCrossEntropy::loss_and_grad(&logits, &labels);
        m.zero_grads_all();
        m.backward(&dlogits);
        let mut p = m.params_flat();
        let g = m.grads_flat();
        for (pi, gi) in p.iter_mut().zip(&g) {
            *pi -= 0.1 * gi;
        }
        m.set_params_flat(&p);
        let logits1 = m.forward(&x, true);
        let loss1 = SoftmaxCrossEntropy::loss(&logits1, &labels);
        assert!(loss1 < loss0, "loss {loss0} -> {loss1}");
    }

    #[test]
    fn grads_flat_matches_param_layout() {
        let mut m = tiny_model(10);
        let x = Tensor::ones(&[2, 4]);
        let y = m.forward(&x, true);
        m.zero_grads_all();
        m.backward(&Tensor::ones(y.dims()));
        assert_eq!(m.grads_flat().len(), m.param_count());
    }

    #[test]
    fn summary_names_layers() {
        assert_eq!(tiny_model(11).summary(), "dense→relu→dense");
    }

    #[test]
    fn ws_pipeline_with_fusion_is_bitwise_identical() {
        // The steady-state pool assertion below is sensitive to the conv
        // path toggling mid-test (different path → different buffer
        // sizes → spurious miss), so hold the toggle lock.
        let _g = crate::CONV_PATH_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        use crate::conv::Conv2d;
        use crate::pool::{Flatten, MaxPool2};

        let build = |seed| {
            let mut s = NormalSampler::seed_from(seed);
            Sequential::new()
                .push(Conv2d::new(1, 4, 3, 1, 1, &mut s))
                .push(Relu::new())
                .push(MaxPool2::new())
                .push(Flatten::new())
                .push(Dense::new(4 * 4 * 4, 8, &mut s))
                .push(Relu::new())
                .push(Dense::new(8, 3, &mut s))
        };
        let mut plain = build(40);
        let mut fused = build(41);
        fused.set_params_flat(&plain.params_flat());
        fused.fuse_relu();

        let mut s = NormalSampler::seed_from(42);
        let x = Tensor::randn(&[2, 1, 8, 8], 0.0, 1.0, &mut s);
        let labels = [1usize, 2];
        let mut ws = Workspace::new();

        // Plain borrowing path on the unfused model.
        let logits_p = plain.forward(&x, true);
        let (loss_p, dy_p) = SoftmaxCrossEntropy::loss_and_grad(&logits_p, &labels);
        plain.zero_grads_all();
        plain.backward(&dy_p);

        // Workspace path on the fused model must be bit-identical.
        let logits_w = fused.forward_pipeline_ws(x.clone(), true, &mut ws);
        assert_eq!(logits_p.data(), logits_w.data());
        let (loss_w, dy_w) = SoftmaxCrossEntropy::loss_and_grad_ws(logits_w, &labels);
        assert_eq!(loss_p.to_bits(), loss_w.to_bits());
        fused.zero_grads_all();
        let _ = fused.backward_pipeline_ws(dy_w, &mut ws);
        assert_eq!(plain.grads_flat(), fused.grads_flat());

        // Steady state: a second ws step must not miss the buffer pool.
        let (_, misses_warm) = ws.stats();
        let logits2 = fused.forward_pipeline_ws(x.clone(), true, &mut ws);
        let (_, dy2) = SoftmaxCrossEntropy::loss_and_grad_ws(logits2, &labels);
        let _ = fused.backward_pipeline_ws(dy2, &mut ws);
        let (_, misses_steady) = ws.stats();
        assert_eq!(misses_warm, misses_steady, "steady-state step allocated");
    }

    #[test]
    fn fused_predict_matches_unfused_predict() {
        let mut plain = tiny_model(50);
        let mut fused = tiny_model(51);
        fused.set_params_flat(&plain.params_flat());
        fused.fuse_relu();
        let mut s = NormalSampler::seed_from(52);
        let x = Tensor::randn(&[3, 4], 0.0, 1.0, &mut s);
        assert_eq!(plain.predict(&x).data(), fused.predict(&x).data());
    }
}
