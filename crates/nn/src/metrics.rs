//! Evaluation metrics.

use crate::loss::SoftmaxCrossEntropy;
use crate::model::Sequential;
use vc_tensor::Tensor;

/// Top-1 accuracy of logits `[batch, classes]` against integer labels.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.dims().len(), 2);
    let (b, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(b, labels.len(), "batch/labels length mismatch");
    if b == 0 {
        return 0.0;
    }
    let mut correct = 0;
    for (i, &y) in labels.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == y {
            correct += 1;
        }
    }
    correct as f32 / b as f32
}

/// Evaluates a model over a dataset in mini-batches, returning
/// `(mean loss, accuracy)`. `images` is `[n, ...]`, flattened per batch.
pub fn evaluate(
    model: &mut Sequential,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> (f32, f32) {
    let n = images.dims()[0];
    assert_eq!(n, labels.len());
    if n == 0 {
        return (0.0, 0.0);
    }
    let sample_len: usize = images.dims()[1..].iter().product();
    let mut total_loss = 0.0;
    let mut total_correct = 0.0;
    let mut start = 0;
    while start < n {
        let end = (start + batch_size).min(n);
        let bs = end - start;
        let mut dims = vec![bs];
        dims.extend_from_slice(&images.dims()[1..]);
        let batch = Tensor::from_vec(
            images.data()[start * sample_len..end * sample_len].to_vec(),
            &dims,
        );
        let logits = model.predict(&batch);
        total_loss += SoftmaxCrossEntropy::loss(&logits, &labels[start..end]) * bs as f32;
        total_correct += accuracy(&logits, &labels[start..end]) * bs as f32;
        start = end;
    }
    (total_loss / n as f32, total_correct / n as f32)
}

/// A confusion matrix for `classes` classes; `m[i][j]` counts samples of
/// true class `i` predicted as `j`.
pub fn confusion_matrix(logits: &Tensor, labels: &[usize], classes: usize) -> Vec<Vec<usize>> {
    let c = logits.dims()[1];
    let mut m = vec![vec![0usize; classes]; classes];
    for (i, &y) in labels.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        m[y][best] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use vc_tensor::NormalSampler;

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.9, 1.1], &[3, 2]);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 1.0);
    }

    #[test]
    fn accuracy_empty_batch_is_zero() {
        assert_eq!(accuracy(&Tensor::zeros(&[0, 3]), &[]), 0.0);
    }

    #[test]
    fn evaluate_batches_cover_everything() {
        let mut s = NormalSampler::seed_from(1);
        let mut m = Sequential::new().push(Dense::new(4, 3, &mut s));
        let images = Tensor::randn(&[10, 4], 0.0, 1.0, &mut s);
        let labels: Vec<usize> = (0..10).map(|i| i % 3).collect();
        // Whole-set eval must equal batched eval regardless of batch size.
        let (l1, a1) = evaluate(&mut m, &images, &labels, 10);
        let (l3, a3) = evaluate(&mut m, &images, &labels, 3);
        assert!((l1 - l3).abs() < 1e-5);
        assert!((a1 - a3).abs() < 1e-6);
    }

    #[test]
    fn confusion_matrix_diagonal_counts_correct() {
        let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0, 2.0, 0.0], &[3, 2]);
        let m = confusion_matrix(&logits, &[0, 1, 1], 2);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[0][1], 0);
    }
}
