//! Activation functions.

use crate::layer::Layer;
use vc_tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`, applied elementwise to any shape.
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Builds a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("Relu::backward called without a cached forward");
        assert_eq!(mask.len(), dy.numel(), "Relu mask/grad length mismatch");
        let data = dy
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, dy.dims())
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use vc_tensor::NormalSampler;

    #[test]
    fn clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(r.forward(&x, false).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_gates_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[2]);
        r.forward(&x, true);
        let dx = r.backward(&Tensor::from_vec(vec![5.0, 7.0], &[2]));
        assert_eq!(dx.data(), &[0.0, 7.0]);
    }

    #[test]
    fn gradcheck_off_kink() {
        // Keep inputs away from 0 where ReLU is non-differentiable.
        let mut r = Relu::new();
        let mut s = NormalSampler::seed_from(1);
        let x = Tensor::randn(&[2, 5], 0.0, 1.0, &mut s).map(|v| {
            if v.abs() < 0.2 {
                0.5_f32.copysign(v)
            } else {
                v
            }
        });
        gradcheck::check_input_grad(&mut r, &x, 1e-2);
    }

    #[test]
    fn preserves_shape() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::ones(&[2, 3, 4, 5]), false);
        assert_eq!(y.dims(), &[2, 3, 4, 5]);
        assert_eq!(r.out_dims(&[7, 9]), vec![7, 9]);
    }
}
