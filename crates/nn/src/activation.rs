//! Activation functions.

use crate::layer::Layer;
use vc_tensor::{Tensor, Workspace};

/// Rectified linear unit: `y = max(0, x)`, applied elementwise to any shape.
///
/// When the preceding layer fuses the rectification into its GEMM epilogue
/// (see [`Layer::enable_relu_fusion`]), this layer degenerates into a
/// mask-only pass-through: the incoming values are already `max(0, ·)`, and
/// because `relu(x) > 0 ⇔ x > 0` the backward mask computed from them is
/// bit-identical to the unfused one.
pub struct Relu {
    mask: Option<Vec<bool>>,
    fused_upstream: bool,
}

impl Relu {
    /// Builds a ReLU layer.
    pub fn new() -> Self {
        Relu {
            mask: None,
            fused_upstream: false,
        }
    }

    /// Records `x > 0` per element into the reused mask buffer.
    fn record_mask(&mut self, x: &Tensor) {
        let mask = self.mask.get_or_insert_with(Vec::new);
        mask.clear();
        mask.extend(x.data().iter().map(|&v| v > 0.0));
    }
}

impl Default for Relu {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.record_mask(x);
        }
        if self.fused_upstream {
            // Upstream epilogue already rectified; values pass unchanged.
            x.clone()
        } else {
            x.map(|v| v.max(0.0))
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("Relu::backward called without a cached forward");
        assert_eq!(mask.len(), dy.numel(), "Relu mask/grad length mismatch");
        let data = dy
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, dy.dims())
    }

    fn forward_ws(&mut self, mut x: Tensor, train: bool, _ws: &mut Workspace) -> Tensor {
        if train {
            self.record_mask(&x);
        }
        if !self.fused_upstream {
            for v in x.data_mut() {
                *v = v.max(0.0);
            }
        }
        x
    }

    fn backward_ws(&mut self, mut dy: Tensor, _ws: &mut Workspace) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("Relu::backward called without a cached forward");
        assert_eq!(mask.len(), dy.numel(), "Relu mask/grad length mismatch");
        for (g, &m) in dy.data_mut().iter_mut().zip(mask) {
            if !m {
                *g = 0.0;
            }
        }
        dy
    }

    fn is_relu(&self) -> bool {
        true
    }

    fn set_fused_upstream(&mut self) {
        self.fused_upstream = true;
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use vc_tensor::NormalSampler;

    #[test]
    fn clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(r.forward(&x, false).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_gates_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[2]);
        r.forward(&x, true);
        let dx = r.backward(&Tensor::from_vec(vec![5.0, 7.0], &[2]));
        assert_eq!(dx.data(), &[0.0, 7.0]);
    }

    #[test]
    fn gradcheck_off_kink() {
        // Keep inputs away from 0 where ReLU is non-differentiable.
        let mut r = Relu::new();
        let mut s = NormalSampler::seed_from(1);
        let x = Tensor::randn(&[2, 5], 0.0, 1.0, &mut s).map(|v| {
            if v.abs() < 0.2 {
                0.5_f32.copysign(v)
            } else {
                v
            }
        });
        gradcheck::check_input_grad(&mut r, &x, 1e-2);
    }

    #[test]
    fn preserves_shape() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::ones(&[2, 3, 4, 5]), false);
        assert_eq!(y.dims(), &[2, 3, 4, 5]);
        assert_eq!(r.out_dims(&[7, 9]), vec![7, 9]);
    }
}
