//! Residual (skip-connection) blocks, the structural motif of the paper's
//! ResNetV2 model.

use crate::layer::Layer;
use crate::model::Sequential;
use vc_tensor::Tensor;

/// A residual block: `y = F(x) + x`, where `F` is an inner [`Sequential`]
/// whose output shape must equal its input shape.
///
/// The gradient splits across the two paths: `dx = F'(dy) + dy`.
pub struct Residual {
    body: Sequential,
}

impl Residual {
    /// Wraps a body pipeline. The shape constraint is checked at forward
    /// time (and by `out_dims` during model building).
    pub fn new(body: Sequential) -> Self {
        Residual { body }
    }

    /// Access to the inner pipeline.
    pub fn body(&self) -> &Sequential {
        &self.body
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let fx = self.body.forward(x, train);
        assert_eq!(
            fx.dims(),
            x.dims(),
            "residual body changed shape {:?} -> {:?}",
            x.dims(),
            fx.dims()
        );
        fx.add(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.body.backward(dy).add(dy)
    }

    fn param_len(&self) -> usize {
        self.body.param_len()
    }

    fn collect_params(&self, out: &mut Vec<f32>) {
        self.body.collect_params(out);
    }

    fn load_params(&mut self, src: &[f32]) -> usize {
        self.body.load_params(src)
    }

    fn collect_grads(&self, out: &mut Vec<f32>) {
        self.body.collect_grads(out);
    }

    fn zero_grads(&mut self) {
        self.body.zero_grads();
    }

    fn name(&self) -> &'static str {
        "residual"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        let out = self.body.out_dims(in_dims);
        assert_eq!(
            out, in_dims,
            "residual body must preserve shape ({in_dims:?} -> {out:?})"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::conv::Conv2d;
    use crate::gradcheck;
    use crate::norm::BatchNorm;
    use vc_tensor::{NormalSampler, Tensor};

    fn block(seed: u64) -> Residual {
        let mut s = NormalSampler::seed_from(seed);
        Residual::new(
            Sequential::new()
                .push(BatchNorm::new(2, 0.9))
                .push(Relu::new())
                .push(Conv2d::new(2, 2, 3, 1, 1, &mut s)),
        )
    }

    #[test]
    fn zero_body_is_identity() {
        let mut s = NormalSampler::seed_from(1);
        let mut r = Residual::new(Sequential::new().push(Conv2d::new(1, 1, 3, 1, 1, &mut s)));
        let zeros = vec![0.0; r.param_len()];
        r.load_params(&zeros);
        let x = Tensor::randn(&[1, 1, 4, 4], 0.0, 1.0, &mut s);
        let y = r.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn skip_path_adds_input() {
        let mut r = block(2);
        let x = Tensor::ones(&[2, 2, 4, 4]);
        let fx = {
            let mut body_only = block(2);
            // strip the skip by calling the body through params equality
            body_only.body.forward(&x, false)
        };
        let y = r.forward(&x, false);
        for ((yv, fv), xv) in y.data().iter().zip(fx.data()).zip(x.data()) {
            assert!((yv - (fv + xv)).abs() < 1e-6);
        }
    }

    #[test]
    fn gradcheck_inputs() {
        let mut r = block(3);
        let mut s = NormalSampler::seed_from(4);
        let x = Tensor::randn(&[2, 2, 2, 2], 0.0, 1.0, &mut s);
        gradcheck::check_input_grad(&mut r, &x, 5e-2);
    }

    #[test]
    fn params_delegate_to_body() {
        let r = block(5);
        let mut p = Vec::new();
        r.collect_params(&mut p);
        assert_eq!(p.len(), r.param_len());
        assert_eq!(r.param_len(), r.body().param_count());
    }

    #[test]
    #[should_panic(expected = "changed shape")]
    fn rejects_shape_changing_body() {
        let mut s = NormalSampler::seed_from(6);
        let mut r = Residual::new(Sequential::new().push(Conv2d::new(1, 2, 3, 1, 1, &mut s)));
        r.forward(&Tensor::zeros(&[1, 1, 4, 4]), false);
    }
}
