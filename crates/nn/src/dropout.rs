//! Dropout regularization.
//!
//! The paper deliberately trains *without* dropout ("to keep our model
//! simple", §IV-A); the layer exists so the ablation benches can quantify
//! what that choice costs, and because a general-purpose library needs it.

use crate::layer::Layer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_tensor::Tensor;

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so inference is a
/// pure identity.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Builds a dropout layer with drop probability `p` in `[0, 1)` and a
    /// deterministic seed (volunteer replicas must be reproducible).
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability {p} outside [0, 1)"
        );
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// The configured drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..x.numel())
            .map(|_| {
                if self.rng.gen::<f32>() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let data = x.data().iter().zip(&mask).map(|(&v, &m)| v * m).collect();
        self.mask = Some(mask);
        Tensor::from_vec(data, x.dims())
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        match &self.mask {
            None => dy.clone(),
            Some(mask) => {
                assert_eq!(mask.len(), dy.numel(), "Dropout mask/grad mismatch");
                let data = dy.data().iter().zip(mask).map(|(&g, &m)| g * m).collect();
                Tensor::from_vec(data, dy.dims())
            }
        }
    }

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        assert_eq!(d.forward(&x, false).data(), x.data());
    }

    #[test]
    fn training_zeroes_about_p_fraction() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let rate = zeros as f32 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
        // Survivors are scaled so the expectation is preserved.
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_gates_with_the_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[64]);
        let y = d.forward(&x, true);
        let dy = Tensor::ones(&[64]);
        let dx = d.backward(&dy);
        // Gradient flows exactly where activations survived.
        for (o, g) in y.data().iter().zip(dx.data()) {
            assert_eq!(*o == 0.0, *g == 0.0);
        }
    }

    #[test]
    fn p_zero_is_transparent_even_in_training() {
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::from_vec(vec![5.0, 6.0], &[2]);
        assert_eq!(d.forward(&x, true).data(), x.data());
        assert_eq!(d.backward(&x).data(), x.data());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn rejects_p_one() {
        Dropout::new(1.0, 5);
    }
}
