//! Batch normalization.

use crate::layer::Layer;
use vc_tensor::Tensor;

/// Numerical floor added to the variance before taking the square root.
const BN_EPS: f32 = 1e-5;

/// Batch normalization over the channel axis.
///
/// Accepts `[batch, ch]` (after a dense layer) or `[batch, ch, h, w]`
/// (after a convolution); statistics are computed per channel over all other
/// axes. Owns learnable `gamma`/`beta` and running mean/variance buffers.
///
/// The running buffers are included in the parameter vector: the paper ships
/// the complete `.h5` model state between clients and the server, so the
/// VC-ASGD blend averages them along with the weights.
pub struct BatchNorm {
    ch: usize,
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    dgamma: Tensor,
    dbeta: Tensor,
    cache: Option<BnCache>,
}

struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    in_dims: Vec<usize>,
}

impl BatchNorm {
    /// Builds a batch-norm layer for `ch` channels with the given running-
    /// statistics momentum (the fraction of the *old* running value kept per
    /// batch; 0.9 is the common default).
    pub fn new(ch: usize, momentum: f32) -> Self {
        BatchNorm {
            ch,
            momentum,
            gamma: Tensor::ones(&[ch]),
            beta: Tensor::zeros(&[ch]),
            running_mean: Tensor::zeros(&[ch]),
            running_var: Tensor::ones(&[ch]),
            dgamma: Tensor::zeros(&[ch]),
            dbeta: Tensor::zeros(&[ch]),
            cache: None,
        }
    }

    /// Iterates channel planes: yields (channel, start, len, plane stride)
    /// describing where channel c's values live in the flat buffer.
    fn plane_geometry(dims: &[usize]) -> (usize, usize, usize) {
        // Returns (batch, ch, spatial) where spatial = product of trailing axes.
        match dims.len() {
            2 => (dims[0], dims[1], 1),
            4 => (dims[0], dims[1], dims[2] * dims[3]),
            r => panic!("BatchNorm expects rank 2 or 4 input, got rank {r}"),
        }
    }

    /// Per-channel reduction `f` over all (batch, spatial) positions.
    fn reduce_per_channel(data: &[f32], dims: &[usize], mut f: impl FnMut(usize, f32)) {
        let (b, ch, sp) = Self::plane_geometry(dims);
        for bi in 0..b {
            for c in 0..ch {
                let base = (bi * ch + c) * sp;
                for s in 0..sp {
                    f(c, data[base + s]);
                }
            }
        }
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let dims = x.dims().to_vec();
        let (b, ch, sp) = Self::plane_geometry(&dims);
        assert_eq!(ch, self.ch, "BatchNorm channel mismatch");
        let n = (b * sp) as f32;

        let (mean, var) = if train {
            let mut mean = vec![0.0f32; ch];
            Self::reduce_per_channel(x.data(), &dims, |c, v| mean[c] += v);
            for m in &mut mean {
                *m /= n;
            }
            let mut var = vec![0.0f32; ch];
            Self::reduce_per_channel(x.data(), &dims, |c, v| {
                var[c] += (v - mean[c]) * (v - mean[c])
            });
            for v in &mut var {
                *v /= n;
            }
            // Update running statistics.
            for (rm, &m) in self.running_mean.data_mut().iter_mut().zip(&mean) {
                *rm = self.momentum * *rm + (1.0 - self.momentum) * m;
            }
            for (rv, &v) in self.running_var.data_mut().iter_mut().zip(&var) {
                *rv = self.momentum * *rv + (1.0 - self.momentum) * v;
            }
            (mean, var)
        } else {
            (
                self.running_mean.data().to_vec(),
                self.running_var.data().to_vec(),
            )
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + BN_EPS).sqrt()).collect();
        let src = x.data();
        let mut x_hat = vec![0.0f32; src.len()];
        let mut out = vec![0.0f32; src.len()];
        for bi in 0..b {
            for c in 0..ch {
                let base = (bi * ch + c) * sp;
                let g = self.gamma.data()[c];
                let be = self.beta.data()[c];
                for s in 0..sp {
                    let xh = (src[base + s] - mean[c]) * inv_std[c];
                    x_hat[base + s] = xh;
                    out[base + s] = g * xh + be;
                }
            }
        }
        if train {
            self.cache = Some(BnCache {
                x_hat: Tensor::from_vec(x_hat, &dims),
                inv_std,
                in_dims: dims.clone(),
            });
        }
        Tensor::from_vec(out, &dims)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm::backward called without a cached forward");
        let dims = &cache.in_dims;
        let (b, ch, sp) = Self::plane_geometry(dims);
        let n = (b * sp) as f32;
        let dyd = dy.data();
        let xh = cache.x_hat.data();

        // Per-channel sums needed by the closed-form gradient.
        let mut sum_dy = vec![0.0f32; ch];
        let mut sum_dy_xh = vec![0.0f32; ch];
        for bi in 0..b {
            for c in 0..ch {
                let base = (bi * ch + c) * sp;
                for s in 0..sp {
                    sum_dy[c] += dyd[base + s];
                    sum_dy_xh[c] += dyd[base + s] * xh[base + s];
                }
            }
        }
        for c in 0..ch {
            self.dbeta.data_mut()[c] += sum_dy[c];
            self.dgamma.data_mut()[c] += sum_dy_xh[c];
        }

        let mut dx = vec![0.0f32; dyd.len()];
        for bi in 0..b {
            for c in 0..ch {
                let base = (bi * ch + c) * sp;
                let g = self.gamma.data()[c];
                let k = g * cache.inv_std[c];
                for s in 0..sp {
                    let i = base + s;
                    dx[i] = k * (dyd[i] - sum_dy[c] / n - xh[i] * sum_dy_xh[c] / n);
                }
            }
        }
        Tensor::from_vec(dx, dims)
    }

    fn param_len(&self) -> usize {
        4 * self.ch
    }

    fn collect_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.gamma.data());
        out.extend_from_slice(self.beta.data());
        out.extend_from_slice(self.running_mean.data());
        out.extend_from_slice(self.running_var.data());
    }

    fn load_params(&mut self, src: &[f32]) -> usize {
        let c = self.ch;
        self.gamma.data_mut().copy_from_slice(&src[..c]);
        self.beta.data_mut().copy_from_slice(&src[c..2 * c]);
        self.running_mean
            .data_mut()
            .copy_from_slice(&src[2 * c..3 * c]);
        self.running_var
            .data_mut()
            .copy_from_slice(&src[3 * c..4 * c]);
        4 * c
    }

    fn collect_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.dgamma.data());
        out.extend_from_slice(self.dbeta.data());
        // Buffers are not optimized: contribute zero gradient.
        out.resize(out.len() + 2 * self.ch, 0.0);
    }

    fn zero_grads(&mut self) {
        self.dgamma.map_inplace(|_| 0.0);
        self.dbeta.map_inplace(|_| 0.0);
    }

    fn name(&self) -> &'static str {
        "batchnorm"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        in_dims.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use vc_tensor::NormalSampler;

    #[test]
    fn train_output_is_normalized() {
        let mut bn = BatchNorm::new(2, 0.9);
        let mut s = NormalSampler::seed_from(1);
        let x = Tensor::randn(&[8, 2, 4, 4], 3.0, 2.0, &mut s);
        let y = bn.forward(&x, true);
        // Each channel of y should have ~zero mean and ~unit variance.
        let (b, ch, sp) = (8, 2, 16);
        for c in 0..ch {
            let mut vals = Vec::new();
            for bi in 0..b {
                let base = (bi * ch + c) * sp;
                vals.extend_from_slice(&y.data()[base..base + sp]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new(1, 0.0); // momentum 0: running = last batch
        let mut s = NormalSampler::seed_from(2);
        let x = Tensor::randn(&[64, 1], 5.0, 3.0, &mut s);
        bn.forward(&x, true);
        // In eval mode the same batch should now also normalize to ~N(0,1).
        let y = bn.forward(&x, false);
        let mean = y.mean();
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn rank2_and_rank4_agree() {
        // A [batch, ch] input must behave as [batch, ch, 1, 1].
        let mut bn2 = BatchNorm::new(3, 0.9);
        let mut bn4 = BatchNorm::new(3, 0.9);
        let mut s = NormalSampler::seed_from(3);
        let x2 = Tensor::randn(&[6, 3], 0.0, 1.0, &mut s);
        let x4 = x2.clone().reshape(&[6, 3, 1, 1]);
        let y2 = bn2.forward(&x2, true);
        let y4 = bn4.forward(&x4, true);
        assert_eq!(y2.data(), y4.data());
    }

    #[test]
    fn gradcheck_inputs() {
        let mut bn = BatchNorm::new(2, 0.9);
        let mut s = NormalSampler::seed_from(4);
        let x = Tensor::randn(&[4, 2, 2, 2], 0.0, 1.0, &mut s);
        gradcheck::check_input_grad(&mut bn, &x, 3e-2);
    }

    #[test]
    fn gradcheck_params() {
        let mut bn = BatchNorm::new(3, 0.9);
        let mut s = NormalSampler::seed_from(5);
        let x = Tensor::randn(&[5, 3], 0.0, 1.0, &mut s);
        gradcheck::check_param_grad(&mut bn, &x, 3e-2);
    }

    #[test]
    fn param_vector_carries_buffers() {
        let mut bn = BatchNorm::new(2, 0.5);
        let mut s = NormalSampler::seed_from(6);
        let x = Tensor::randn(&[16, 2], 1.0, 1.0, &mut s);
        bn.forward(&x, true);
        let mut p = Vec::new();
        bn.collect_params(&mut p);
        assert_eq!(p.len(), 8);
        // Running mean (slots 4..6) moved toward the batch mean of ~1.0.
        assert!(p[4] > 0.2, "running mean {}", p[4]);
        // Restoring into a fresh layer reproduces eval outputs exactly.
        let mut bn2 = BatchNorm::new(2, 0.5);
        bn2.load_params(&p);
        let y1 = bn.forward(&x, false);
        let y2 = bn2.forward(&x, false);
        assert_eq!(y1.data(), y2.data());
    }

    #[test]
    #[should_panic(expected = "rank 2 or 4")]
    fn rejects_rank3() {
        let mut bn = BatchNorm::new(2, 0.9);
        bn.forward(&Tensor::zeros(&[2, 2, 2]), false);
    }
}
