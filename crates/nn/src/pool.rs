//! Pooling and reshaping layers.

use crate::layer::Layer;
use vc_tensor::{Shape, Tensor, Workspace};

/// 2×2 max pooling with stride 2 over `[batch, ch, h, w]`. Requires even
/// spatial extents (the reference models are built that way).
pub struct MaxPool2 {
    /// Flat source index of each window maximum; reused across steps.
    argmax: Vec<usize>,
    in_shape: Option<Shape>,
}

impl MaxPool2 {
    /// Builds the pooling layer.
    pub fn new() -> Self {
        MaxPool2 {
            argmax: Vec::new(),
            in_shape: None,
        }
    }

    /// The pooling kernel: fills `out` and, when `arg` is given, the argmax
    /// indices (resized to match `out`).
    fn run(
        src: &[f32],
        b: usize,
        c: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
        mut arg: Option<&mut Vec<usize>>,
    ) {
        let (oh, ow) = (h / 2, w / 2);
        if let Some(a) = arg.as_deref_mut() {
            a.clear();
            a.resize(out.len(), 0);
        }
        for bc in 0..b * c {
            let plane = &src[bc * h * w..(bc + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best_idx = (2 * oy) * w + 2 * ox;
                    let mut best = plane[best_idx];
                    for (dy, dx) in [(0, 1), (1, 0), (1, 1)] {
                        let idx = (2 * oy + dy) * w + 2 * ox + dx;
                        if plane[idx] > best {
                            best = plane[idx];
                            best_idx = idx;
                        }
                    }
                    let o = bc * oh * ow + oy * ow + ox;
                    out[o] = best;
                    if let Some(a) = arg.as_deref_mut() {
                        a[o] = bc * h * w + best_idx;
                    }
                }
            }
        }
    }

    fn checked_dims(x: &Tensor) -> (usize, usize, usize, usize) {
        let dims = x.dims();
        assert_eq!(dims.len(), 4, "MaxPool2 expects [batch, ch, h, w]");
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        assert!(h % 2 == 0 && w % 2 == 0, "MaxPool2 needs even h, w");
        (b, c, h, w)
    }

    fn scatter_backward(&self, dy: &Tensor, dx: &mut [f32]) {
        for (g, &src_idx) in dy.data().iter().zip(&self.argmax) {
            dx[src_idx] += g;
        }
    }
}

impl Default for MaxPool2 {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (b, c, h, w) = Self::checked_dims(x);
        let (oh, ow) = (h / 2, w / 2);
        let mut out = vec![0.0f32; b * c * oh * ow];
        if train {
            Self::run(x.data(), b, c, h, w, &mut out, Some(&mut self.argmax));
            self.in_shape = Some(*x.shape());
        } else {
            Self::run(x.data(), b, c, h, w, &mut out, None);
        }
        Tensor::from_vec(out, &[b, c, oh, ow])
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let in_shape = self
            .in_shape
            .expect("MaxPool2::backward called without a cached forward");
        let mut dx = vec![0.0f32; in_shape.numel()];
        self.scatter_backward(dy, &mut dx);
        Tensor::from_vec(dx, in_shape.dims())
    }

    fn forward_ws(&mut self, x: Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let (b, c, h, w) = Self::checked_dims(&x);
        let (oh, ow) = (h / 2, w / 2);
        let mut out = ws.take(b * c * oh * ow);
        if train {
            Self::run(x.data(), b, c, h, w, &mut out, Some(&mut self.argmax));
            self.in_shape = Some(*x.shape());
        } else {
            Self::run(x.data(), b, c, h, w, &mut out, None);
        }
        ws.recycle(x.into_vec());
        Tensor::from_vec(out, &[b, c, oh, ow])
    }

    fn backward_ws(&mut self, dy: Tensor, ws: &mut Workspace) -> Tensor {
        let in_shape = self
            .in_shape
            .expect("MaxPool2::backward called without a cached forward");
        let mut dx = ws.take(in_shape.numel()); // zero-filled by take
        self.scatter_backward(&dy, &mut dx);
        ws.recycle(dy.into_vec());
        Tensor::from_vec(dx, in_shape.dims())
    }

    fn name(&self) -> &'static str {
        "maxpool2"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        assert_eq!(in_dims.len(), 4);
        vec![in_dims[0], in_dims[1], in_dims[2] / 2, in_dims[3] / 2]
    }
}

/// Global average pooling: `[batch, ch, h, w] -> [batch, ch]`, the ResNetV2
/// head reduction.
pub struct AvgPoolGlobal {
    in_shape: Option<Shape>,
}

impl AvgPoolGlobal {
    /// Builds the pooling layer.
    pub fn new() -> Self {
        AvgPoolGlobal { in_shape: None }
    }

    fn mean_planes(x: &Tensor, out: &mut [f32]) {
        let dims = x.dims();
        let (b, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let area = (h * w) as f32;
        let src = x.data();
        for bc in 0..b * c {
            out[bc] = src[bc * h * w..(bc + 1) * h * w].iter().sum::<f32>() / area;
        }
    }

    fn spread_backward(dy: &Tensor, h: usize, w: usize, dx: &mut [f32]) {
        let area = (h * w) as f32;
        for (bc, &g) in dy.data().iter().enumerate() {
            let v = g / area;
            for p in &mut dx[bc * h * w..(bc + 1) * h * w] {
                *p = v;
            }
        }
    }
}

impl Default for AvgPoolGlobal {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for AvgPoolGlobal {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let dims = x.dims();
        assert_eq!(dims.len(), 4, "AvgPoolGlobal expects [batch, ch, h, w]");
        let (b, c) = (dims[0], dims[1]);
        let mut out = vec![0.0f32; b * c];
        Self::mean_planes(x, &mut out);
        if train {
            self.in_shape = Some(*x.shape());
        }
        Tensor::from_vec(out, &[b, c])
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let in_shape = self
            .in_shape
            .expect("AvgPoolGlobal::backward called without a cached forward");
        let dims = in_shape.dims();
        let mut dx = vec![0.0f32; in_shape.numel()];
        Self::spread_backward(dy, dims[2], dims[3], &mut dx);
        Tensor::from_vec(dx, dims)
    }

    fn forward_ws(&mut self, x: Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let dims = x.dims();
        assert_eq!(dims.len(), 4, "AvgPoolGlobal expects [batch, ch, h, w]");
        let (b, c) = (dims[0], dims[1]);
        let mut out = ws.take(b * c);
        Self::mean_planes(&x, &mut out);
        if train {
            self.in_shape = Some(*x.shape());
        }
        ws.recycle(x.into_vec());
        Tensor::from_vec(out, &[b, c])
    }

    fn backward_ws(&mut self, dy: Tensor, ws: &mut Workspace) -> Tensor {
        let in_shape = self
            .in_shape
            .expect("AvgPoolGlobal::backward called without a cached forward");
        let mut dx = ws.take(in_shape.numel());
        {
            let dims = in_shape.dims();
            Self::spread_backward(&dy, dims[2], dims[3], &mut dx);
        }
        ws.recycle(dy.into_vec());
        Tensor::from_vec(dx, in_shape.dims())
    }

    fn name(&self) -> &'static str {
        "avgpool_global"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        assert_eq!(in_dims.len(), 4);
        vec![in_dims[0], in_dims[1]]
    }
}

/// Flattens `[batch, ...]` to `[batch, prod(...)]`.
pub struct Flatten {
    in_shape: Option<Shape>,
}

impl Flatten {
    /// Builds the reshaping layer.
    pub fn new() -> Self {
        Flatten { in_shape: None }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let dims = x.dims();
        assert!(dims.len() >= 2, "Flatten expects a batch axis");
        let batch = dims[0];
        let rest: usize = dims[1..].iter().product();
        if train {
            self.in_shape = Some(*x.shape());
        }
        x.clone().reshape(&[batch, rest])
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let in_shape = self
            .in_shape
            .expect("Flatten::backward called without a cached forward");
        dy.clone().reshape(in_shape.dims())
    }

    fn forward_ws(&mut self, x: Tensor, train: bool, _ws: &mut Workspace) -> Tensor {
        let dims = x.dims();
        assert!(dims.len() >= 2, "Flatten expects a batch axis");
        let batch = dims[0];
        let rest: usize = dims[1..].iter().product();
        if train {
            self.in_shape = Some(*x.shape());
        }
        // Reshape of an owned tensor moves the buffer: no copy, no alloc.
        x.reshape(&[batch, rest])
    }

    fn backward_ws(&mut self, dy: Tensor, _ws: &mut Workspace) -> Tensor {
        let in_shape = self
            .in_shape
            .expect("Flatten::backward called without a cached forward");
        dy.reshape(in_shape.dims())
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn out_dims(&self, in_dims: &[usize]) -> Vec<usize> {
        vec![in_dims[0], in_dims[1..].iter().product()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use vc_tensor::NormalSampler;

    #[test]
    fn maxpool_picks_window_max() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, -1.0, 0.0, 0.5,
            ],
            &[1, 1, 4, 4],
        );
        let y = p.forward(&x, false);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        p.forward(&x, true);
        let dx = p.backward(&Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]));
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn maxpool_gradcheck() {
        let mut p = MaxPool2::new();
        let mut s = NormalSampler::seed_from(2);
        // distinct values keep argmax stable under the probe epsilon
        let x = Tensor::randn(&[1, 2, 4, 4], 0.0, 10.0, &mut s);
        gradcheck::check_input_grad(&mut p, &x, 1e-2);
    }

    #[test]
    fn avgpool_means_planes() {
        let mut p = AvgPoolGlobal::new();
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
            &[1, 2, 2, 2],
        );
        let y = p.forward(&x, false);
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 10.0]);
    }

    #[test]
    fn avgpool_gradcheck() {
        let mut p = AvgPoolGlobal::new();
        let mut s = NormalSampler::seed_from(3);
        let x = Tensor::randn(&[2, 3, 2, 2], 0.0, 1.0, &mut s);
        gradcheck::check_input_grad(&mut p, &x, 1e-2);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4]);
        let y = f.forward(&x, true);
        assert_eq!(y.dims(), &[2, 12]);
        let dx = f.backward(&y);
        assert_eq!(dx.dims(), &[2, 3, 4]);
    }

    #[test]
    fn ws_paths_match_plain_paths() {
        let mut s = NormalSampler::seed_from(5);
        let x = Tensor::randn(&[2, 3, 4, 4], 0.0, 1.0, &mut s);
        let dy_small = Tensor::randn(&[2, 3, 2, 2], 0.0, 1.0, &mut s);
        let mut ws = Workspace::new();

        let mut p = MaxPool2::new();
        let y_plain = p.forward(&x, true);
        let dx_plain = p.backward(&dy_small);
        let y_ws = p.forward_ws(x.clone(), true, &mut ws);
        let dx_ws = p.backward_ws(dy_small.clone(), &mut ws);
        assert_eq!(y_plain.data(), y_ws.data());
        assert_eq!(dx_plain.data(), dx_ws.data());

        let mut a = AvgPoolGlobal::new();
        let dy_flat = Tensor::randn(&[2, 3], 0.0, 1.0, &mut s);
        let y_plain = a.forward(&x, true);
        let dx_plain = a.backward(&dy_flat);
        let y_ws = a.forward_ws(x.clone(), true, &mut ws);
        let dx_ws = a.backward_ws(dy_flat.clone(), &mut ws);
        assert_eq!(y_plain.data(), y_ws.data());
        assert_eq!(dx_plain.data(), dx_ws.data());

        let mut f = Flatten::new();
        let y_ws = f.forward_ws(x.clone(), true, &mut ws);
        assert_eq!(y_ws.dims(), &[2, 48]);
        let dx_ws = f.backward_ws(y_ws, &mut ws);
        assert_eq!(dx_ws.dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn out_dims_agree_with_forward() {
        let mut p = MaxPool2::new();
        let x = Tensor::zeros(&[2, 5, 8, 6]);
        assert_eq!(
            p.forward(&x, false).dims(),
            p.out_dims(&[2, 5, 8, 6]).as_slice()
        );
        let mut a = AvgPoolGlobal::new();
        assert_eq!(
            a.forward(&x, false).dims(),
            a.out_dims(&[2, 5, 8, 6]).as_slice()
        );
        let mut f = Flatten::new();
        assert_eq!(
            f.forward(&x, false).dims(),
            f.out_dims(&[2, 5, 8, 6]).as_slice()
        );
    }
}
