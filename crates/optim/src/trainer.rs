//! Mini-batch training loop shared by client subtasks and baselines.

use crate::clip::clip_by_global_norm;
use crate::Optimizer;
use rand::seq::SliceRandom;
use rand::Rng;
use vc_nn::{Layer, Sequential, SoftmaxCrossEntropy};
use vc_tensor::Tensor;

/// Statistics from one pass of [`train_minibatch`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainBatchStats {
    /// Mean training loss over all processed batches.
    pub mean_loss: f32,
    /// Number of optimizer steps taken.
    pub steps: usize,
    /// Number of samples seen (with repetition across local epochs).
    pub samples: usize,
}

/// Trains `model` in place for `local_epochs` passes over `(images, labels)`
/// with shuffled mini-batches, clipping gradients at `clip_norm` (pass
/// `f32::INFINITY` to disable). This is precisely what a volunteer client
/// executes for one training subtask.
#[allow(clippy::too_many_arguments)]
pub fn train_minibatch<R: Rng>(
    model: &mut Sequential,
    opt: &mut Optimizer,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    local_epochs: usize,
    clip_norm: f32,
    rng: &mut R,
) -> TrainBatchStats {
    let n = images.dims()[0];
    assert_eq!(n, labels.len(), "images/labels length mismatch");
    assert!(batch_size > 0, "batch_size must be positive");
    let sample_len: usize = images.dims()[1..].iter().product();

    let mut order: Vec<usize> = (0..n).collect();
    let mut total_loss = 0.0;
    let mut steps = 0usize;
    let mut samples = 0usize;

    let mut params = model.params_flat();
    for _ in 0..local_epochs {
        order.shuffle(rng);
        for chunk in order.chunks(batch_size) {
            // Gather the shuffled batch.
            let mut batch_data = Vec::with_capacity(chunk.len() * sample_len);
            let mut batch_labels = Vec::with_capacity(chunk.len());
            for &idx in chunk {
                batch_data
                    .extend_from_slice(&images.data()[idx * sample_len..(idx + 1) * sample_len]);
                batch_labels.push(labels[idx]);
            }
            let mut dims = vec![chunk.len()];
            dims.extend_from_slice(&images.dims()[1..]);
            let batch = Tensor::from_vec(batch_data, &dims);

            let logits = model.forward(&batch, true);
            let (loss, dlogits) = SoftmaxCrossEntropy::loss_and_grad(&logits, &batch_labels);
            model.zero_grads_all();
            model.backward(&dlogits);
            let mut grads = model.grads_flat();
            if clip_norm.is_finite() {
                clip_by_global_norm(&mut grads, clip_norm);
            }
            opt.step(&mut params, &grads);
            model.set_params_flat(&params);

            total_loss += loss;
            steps += 1;
            samples += chunk.len();
        }
    }

    TrainBatchStats {
        mean_loss: if steps == 0 {
            0.0
        } else {
            total_loss / steps as f32
        },
        steps,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OptimizerSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vc_nn::metrics::evaluate;
    use vc_nn::spec::mlp;
    use vc_tensor::NormalSampler;

    /// Two linearly separable Gaussian blobs.
    fn blobs(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut s = NormalSampler::seed_from(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let cx = if class == 0 { -2.0 } else { 2.0 };
            data.push(s.sample() * 0.5 + cx);
            data.push(s.sample() * 0.5);
            labels.push(class);
        }
        (Tensor::from_vec(data, &[n, 2]), labels)
    }

    #[test]
    fn learns_separable_blobs() {
        let spec = mlp(&[2], 16, 2);
        let mut model = spec.build(1);
        let mut opt = OptimizerSpec::Adam {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
        .build(model.param_count());
        let (x, y) = blobs(200, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let stats = train_minibatch(&mut model, &mut opt, &x, &y, 32, 10, 5.0, &mut rng);
        assert!(stats.steps > 0);
        assert_eq!(stats.samples, 2000);
        let (_, acc) = evaluate(&mut model, &x, &y, 64);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn loss_decreases_across_epochs() {
        let spec = mlp(&[2], 8, 2);
        let mut model = spec.build(4);
        let mut opt = OptimizerSpec::Sgd { lr: 0.1 }.build(model.param_count());
        let (x, y) = blobs(100, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let first = train_minibatch(&mut model, &mut opt, &x, &y, 16, 1, f32::INFINITY, &mut rng);
        for _ in 0..5 {
            train_minibatch(&mut model, &mut opt, &x, &y, 16, 1, f32::INFINITY, &mut rng);
        }
        let last = train_minibatch(&mut model, &mut opt, &x, &y, 16, 1, f32::INFINITY, &mut rng);
        assert!(last.mean_loss < first.mean_loss);
    }

    #[test]
    fn deterministic_given_seeds() {
        let spec = mlp(&[2], 8, 2);
        let run = || {
            let mut model = spec.build(7);
            let mut opt = OptimizerSpec::paper_adam().build(model.param_count());
            let (x, y) = blobs(50, 8);
            let mut rng = StdRng::seed_from_u64(9);
            train_minibatch(&mut model, &mut opt, &x, &y, 10, 2, 1.0, &mut rng);
            model.params_flat()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn handles_batch_larger_than_dataset() {
        let spec = mlp(&[2], 4, 2);
        let mut model = spec.build(10);
        let mut opt = OptimizerSpec::Sgd { lr: 0.01 }.build(model.param_count());
        let (x, y) = blobs(5, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let stats = train_minibatch(&mut model, &mut opt, &x, &y, 64, 1, 1.0, &mut rng);
        assert_eq!(stats.steps, 1);
        assert_eq!(stats.samples, 5);
    }
}
