//! Mini-batch training loop shared by client subtasks and baselines.

use crate::clip::clip_by_global_norm;
use crate::Optimizer;
use rand::seq::SliceRandom;
use rand::Rng;
use vc_nn::{Layer, Sequential, SoftmaxCrossEntropy};
use vc_telemetry::{Histogram, Telemetry};
use vc_tensor::{Tensor, Workspace};

/// Statistics from one pass of [`train_minibatch`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainBatchStats {
    /// Mean training loss over all processed batches.
    pub mean_loss: f32,
    /// Number of optimizer steps taken.
    pub steps: usize,
    /// Number of samples seen (with repetition across local epochs).
    pub samples: usize,
}

/// Per-replica reusable training state: the tensor [`Workspace`] plus the
/// flat parameter/gradient vectors, the shuffle order and the label batch.
/// Hold one per worker thread (or simulated client) and pass it to every
/// [`train_minibatch_ws`] call; after the first step warms the pools, the
/// steady-state training loop performs zero heap allocations.
#[derive(Default)]
pub struct TrainWorkspace {
    /// Buffer pool for activations, columns and gradients.
    pub ws: Workspace,
    grads: Vec<f32>,
    params: Vec<f32>,
    order: Vec<usize>,
    batch_labels: Vec<usize>,
}

impl TrainWorkspace {
    /// An empty workspace; the first training step fills the pools.
    pub fn new() -> Self {
        TrainWorkspace::default()
    }

    /// `(takes, misses)` of the underlying buffer pool — see
    /// [`Workspace::stats`].
    pub fn pool_stats(&self) -> (u64, u64) {
        self.ws.stats()
    }
}

/// Per-step timing sink for [`train_minibatch_ws`]: each optimizer step's
/// wall-clock duration (from the telemetry hub's time source, so virtual
/// clocks work too) is observed into `histogram`. This keeps the per-step
/// numbers in `BENCH_train.json` and the runtime's phase histograms in
/// `BENCH_runtime.json` directly comparable.
pub struct StepTimer<'a> {
    /// The run's telemetry hub (provides the clock).
    pub telemetry: &'a Telemetry,
    /// Destination histogram, e.g. the runtime's `worker_train_step_s`.
    pub histogram: &'a Histogram,
}

/// Trains `model` in place for `local_epochs` passes over `(images, labels)`
/// with shuffled mini-batches, clipping gradients at `clip_norm` (pass
/// `f32::INFINITY` to disable). This is precisely what a volunteer client
/// executes for one training subtask.
#[allow(clippy::too_many_arguments)]
pub fn train_minibatch<R: Rng>(
    model: &mut Sequential,
    opt: &mut Optimizer,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    local_epochs: usize,
    clip_norm: f32,
    rng: &mut R,
) -> TrainBatchStats {
    let n = images.dims()[0];
    assert_eq!(n, labels.len(), "images/labels length mismatch");
    assert!(batch_size > 0, "batch_size must be positive");
    let sample_len: usize = images.dims()[1..].iter().product();

    let mut order: Vec<usize> = (0..n).collect();
    let mut total_loss = 0.0;
    let mut steps = 0usize;
    let mut samples = 0usize;

    let mut params = model.params_flat();
    for _ in 0..local_epochs {
        order.shuffle(rng);
        for chunk in order.chunks(batch_size) {
            // Gather the shuffled batch.
            let mut batch_data = Vec::with_capacity(chunk.len() * sample_len);
            let mut batch_labels = Vec::with_capacity(chunk.len());
            for &idx in chunk {
                batch_data
                    .extend_from_slice(&images.data()[idx * sample_len..(idx + 1) * sample_len]);
                batch_labels.push(labels[idx]);
            }
            let mut dims = vec![chunk.len()];
            dims.extend_from_slice(&images.dims()[1..]);
            let batch = Tensor::from_vec(batch_data, &dims);

            let logits = model.forward(&batch, true);
            let (loss, dlogits) = SoftmaxCrossEntropy::loss_and_grad(&logits, &batch_labels);
            model.zero_grads_all();
            model.backward(&dlogits);
            let mut grads = model.grads_flat();
            if clip_norm.is_finite() {
                clip_by_global_norm(&mut grads, clip_norm);
            }
            opt.step(&mut params, &grads);
            model.set_params_flat(&params);

            total_loss += loss;
            steps += 1;
            samples += chunk.len();
        }
    }

    TrainBatchStats {
        mean_loss: if steps == 0 {
            0.0
        } else {
            total_loss / steps as f32
        },
        steps,
        samples,
    }
}

/// [`train_minibatch`] through the zero-allocation workspace path: tensors
/// move by value through the layer chain drawing buffers from `tws`, the
/// ReLU activations are fused into the GEMM epilogues, and the flat
/// parameter/gradient vectors are reused across steps. Bit-identical to
/// [`train_minibatch`] for the same inputs and RNG — the fused kernels
/// perform the same floating-point operations in the same order — so the
/// two variants are interchangeable mid-run.
///
/// When `timer` is given, each optimizer step's duration is observed into
/// its histogram.
#[allow(clippy::too_many_arguments)]
pub fn train_minibatch_ws<R: Rng>(
    model: &mut Sequential,
    opt: &mut Optimizer,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    local_epochs: usize,
    clip_norm: f32,
    rng: &mut R,
    tws: &mut TrainWorkspace,
    timer: Option<&StepTimer<'_>>,
) -> TrainBatchStats {
    let n = images.dims()[0];
    assert_eq!(n, labels.len(), "images/labels length mismatch");
    assert!(batch_size > 0, "batch_size must be positive");
    let rank = images.dims().len();
    let sample_len: usize = images.dims()[1..].iter().product();

    tws.order.clear();
    tws.order.extend(0..n);
    let mut total_loss = 0.0;
    let mut steps = 0usize;
    let mut samples = 0usize;

    model.fuse_relu();
    model.params_flat_into(&mut tws.params);
    for _ in 0..local_epochs {
        tws.order.shuffle(rng);
        // `order` is borrowed across the step, so split it off the rest of
        // the workspace fields.
        let TrainWorkspace {
            ws,
            grads,
            params,
            order,
            batch_labels,
        } = tws;
        for chunk in order.chunks(batch_size) {
            let t0 = timer.map(|t| t.telemetry.now_s());
            // Gather the shuffled batch into pooled storage.
            let mut batch_data = ws.take(chunk.len() * sample_len);
            batch_labels.clear();
            for (bi, &idx) in chunk.iter().enumerate() {
                batch_data[bi * sample_len..(bi + 1) * sample_len]
                    .copy_from_slice(&images.data()[idx * sample_len..(idx + 1) * sample_len]);
                batch_labels.push(labels[idx]);
            }
            let mut dims = [0usize; 4];
            dims[0] = chunk.len();
            dims[1..rank].copy_from_slice(&images.dims()[1..]);
            let batch = Tensor::from_vec(batch_data, &dims[..rank]);

            let logits = model.forward_pipeline_ws(batch, true, ws);
            let (loss, dlogits) = SoftmaxCrossEntropy::loss_and_grad_ws(logits, batch_labels);
            model.zero_grads_all();
            let dx = model.backward_pipeline_ws(dlogits, ws);
            ws.recycle(dx.into_vec());
            model.grads_flat_into(grads);
            if clip_norm.is_finite() {
                clip_by_global_norm(grads, clip_norm);
            }
            opt.step(params, grads);
            model.set_params_flat(params);

            if let (Some(t), Some(t0)) = (timer, t0) {
                t.histogram.observe((t.telemetry.now_s() - t0).max(0.0));
            }
            total_loss += loss;
            steps += 1;
            samples += chunk.len();
        }
    }

    TrainBatchStats {
        mean_loss: if steps == 0 {
            0.0
        } else {
            total_loss / steps as f32
        },
        steps,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OptimizerSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vc_nn::metrics::evaluate;
    use vc_nn::spec::mlp;
    use vc_tensor::NormalSampler;

    /// Two linearly separable Gaussian blobs.
    fn blobs(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut s = NormalSampler::seed_from(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let cx = if class == 0 { -2.0 } else { 2.0 };
            data.push(s.sample() * 0.5 + cx);
            data.push(s.sample() * 0.5);
            labels.push(class);
        }
        (Tensor::from_vec(data, &[n, 2]), labels)
    }

    #[test]
    fn learns_separable_blobs() {
        let spec = mlp(&[2], 16, 2);
        let mut model = spec.build(1);
        let mut opt = OptimizerSpec::Adam {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
        .build(model.param_count());
        let (x, y) = blobs(200, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let stats = train_minibatch(&mut model, &mut opt, &x, &y, 32, 10, 5.0, &mut rng);
        assert!(stats.steps > 0);
        assert_eq!(stats.samples, 2000);
        let (_, acc) = evaluate(&mut model, &x, &y, 64);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn loss_decreases_across_epochs() {
        let spec = mlp(&[2], 8, 2);
        let mut model = spec.build(4);
        let mut opt = OptimizerSpec::Sgd { lr: 0.1 }.build(model.param_count());
        let (x, y) = blobs(100, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let first = train_minibatch(&mut model, &mut opt, &x, &y, 16, 1, f32::INFINITY, &mut rng);
        for _ in 0..5 {
            train_minibatch(&mut model, &mut opt, &x, &y, 16, 1, f32::INFINITY, &mut rng);
        }
        let last = train_minibatch(&mut model, &mut opt, &x, &y, 16, 1, f32::INFINITY, &mut rng);
        assert!(last.mean_loss < first.mean_loss);
    }

    #[test]
    fn deterministic_given_seeds() {
        let spec = mlp(&[2], 8, 2);
        let run = || {
            let mut model = spec.build(7);
            let mut opt = OptimizerSpec::paper_adam().build(model.param_count());
            let (x, y) = blobs(50, 8);
            let mut rng = StdRng::seed_from_u64(9);
            train_minibatch(&mut model, &mut opt, &x, &y, 10, 2, 1.0, &mut rng);
            model.params_flat()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ws_variant_is_bit_identical_to_plain() {
        let spec = mlp(&[2], 8, 2);
        let (x, y) = blobs(60, 20);
        let plain = {
            let mut model = spec.build(21);
            let mut opt = OptimizerSpec::paper_adam().build(model.param_count());
            let mut rng = StdRng::seed_from_u64(22);
            train_minibatch(&mut model, &mut opt, &x, &y, 16, 3, 1.0, &mut rng);
            model.params_flat()
        };
        let mut model = spec.build(21);
        let mut opt = OptimizerSpec::paper_adam().build(model.param_count());
        let mut rng = StdRng::seed_from_u64(22);
        let mut tws = TrainWorkspace::new();
        let stats = train_minibatch_ws(
            &mut model, &mut opt, &x, &y, 16, 3, 1.0, &mut rng, &mut tws, None,
        );
        assert_eq!(stats.samples, 180);
        assert_eq!(model.params_flat(), plain, "ws path must be bit-identical");
    }

    #[test]
    fn ws_variant_steady_state_reuses_buffers() {
        let spec = mlp(&[2], 8, 2);
        let mut model = spec.build(30);
        let mut opt = OptimizerSpec::Sgd { lr: 0.05 }.build(model.param_count());
        let (x, y) = blobs(48, 31);
        let mut rng = StdRng::seed_from_u64(32);
        let mut tws = TrainWorkspace::new();
        train_minibatch_ws(
            &mut model, &mut opt, &x, &y, 16, 1, 1.0, &mut rng, &mut tws, None,
        );
        let (_, warm_misses) = tws.pool_stats();
        train_minibatch_ws(
            &mut model, &mut opt, &x, &y, 16, 2, 1.0, &mut rng, &mut tws, None,
        );
        let (takes, misses) = tws.pool_stats();
        assert_eq!(misses, warm_misses, "steady-state steps must not allocate");
        assert!(takes > warm_misses);
    }

    #[test]
    fn step_timer_observes_every_step() {
        use vc_telemetry::Telemetry;
        let tel = Telemetry::with_echo(16, None);
        let hist = tel.registry().histogram("train_step_s");
        let spec = mlp(&[2], 4, 2);
        let mut model = spec.build(33);
        let mut opt = OptimizerSpec::Sgd { lr: 0.05 }.build(model.param_count());
        let (x, y) = blobs(40, 34);
        let mut rng = StdRng::seed_from_u64(35);
        let mut tws = TrainWorkspace::new();
        let timer = StepTimer {
            telemetry: &tel,
            histogram: &hist,
        };
        let stats = train_minibatch_ws(
            &mut model,
            &mut opt,
            &x,
            &y,
            8,
            2,
            1.0,
            &mut rng,
            &mut tws,
            Some(&timer),
        );
        assert_eq!(hist.snapshot().count, stats.steps as u64);
    }

    #[test]
    fn handles_batch_larger_than_dataset() {
        let spec = mlp(&[2], 4, 2);
        let mut model = spec.build(10);
        let mut opt = OptimizerSpec::Sgd { lr: 0.01 }.build(model.param_count());
        let (x, y) = blobs(5, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let stats = train_minibatch(&mut model, &mut opt, &x, &y, 64, 1, 1.0, &mut rng);
        assert_eq!(stats.steps, 1);
        assert_eq!(stats.samples, 5);
    }
}
