//! Learning-rate schedules.
//!
//! The paper keeps the client learning rate constant at 0.001 but draws an
//! explicit analogy between its epoch-varying α schedule and "the learning
//! rate scheduler used in optimizers such as SGD" (§III-C). These schedules
//! serve the ablation benches that test that analogy on the optimizer side.

use serde::{Deserialize, Serialize};

/// A multiplier applied to the optimizer's base learning rate as a function
/// of the (0-based) epoch index.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant multiplier 1.
    Constant,
    /// Multiply by `gamma` every `every` epochs (step decay).
    StepDecay { gamma: f32, every: usize },
    /// Linear ramp from 1 down to `floor` across `over` epochs.
    LinearDecay { floor: f32, over: usize },
    /// `1 / (1 + k·epoch)` hyperbolic decay — the classical Robbins–Monro
    /// shape, the optimizer-side mirror of the paper's `α_e = e/(e+1)`.
    Hyperbolic { k: f32 },
}

impl LrSchedule {
    /// The multiplier for `epoch` (0-based).
    pub fn scale(&self, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { gamma, every } => {
                assert!(*every > 0, "StepDecay.every must be positive");
                gamma.powi((epoch / every) as i32)
            }
            LrSchedule::LinearDecay { floor, over } => {
                if *over == 0 || epoch >= *over {
                    *floor
                } else {
                    let frac = epoch as f32 / *over as f32;
                    1.0 + frac * (floor - 1.0)
                }
            }
            LrSchedule::Hyperbolic { k } => 1.0 / (1.0 + k * epoch as f32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one_everywhere() {
        for e in [0, 1, 100] {
            assert_eq!(LrSchedule::Constant.scale(e), 1.0);
        }
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            gamma: 0.5,
            every: 10,
        };
        assert_eq!(s.scale(0), 1.0);
        assert_eq!(s.scale(9), 1.0);
        assert_eq!(s.scale(10), 0.5);
        assert_eq!(s.scale(25), 0.25);
    }

    #[test]
    fn linear_decay_reaches_floor() {
        let s = LrSchedule::LinearDecay {
            floor: 0.1,
            over: 10,
        };
        assert_eq!(s.scale(0), 1.0);
        assert!((s.scale(5) - 0.55).abs() < 1e-6);
        assert_eq!(s.scale(10), 0.1);
        assert_eq!(s.scale(50), 0.1);
    }

    #[test]
    fn hyperbolic_is_monotone_decreasing() {
        let s = LrSchedule::Hyperbolic { k: 0.5 };
        let mut prev = f32::INFINITY;
        for e in 0..20 {
            let v = s.scale(e);
            assert!(v < prev);
            assert!(v > 0.0);
            prev = v;
        }
        assert_eq!(s.scale(0), 1.0);
    }

    #[test]
    fn schedules_serialize() {
        let s = LrSchedule::StepDecay {
            gamma: 0.9,
            every: 5,
        };
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<LrSchedule>(&json).unwrap(), s);
    }
}
