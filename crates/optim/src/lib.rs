//! # vc-optim
//!
//! Optimizers and learning-rate schedules for the `vc-dl` workspace.
//!
//! The paper trains client replicas with the Adam optimizer at a constant
//! learning rate of 0.001, no momentum-SGD, no regularization (§IV-A); all
//! of those variants exist here anyway because the baselines (Downpour,
//! EASGD, the serial reference) use them, and because ablations sweep them.
//!
//! Optimizers operate on *flat* parameter/gradient vectors — the same
//! representation the distributed layer ships across the simulated network —
//! so a client's optimizer state never needs to understand the model.

pub mod clip;
pub mod schedule;
pub mod trainer;

pub use clip::clip_by_global_norm;
pub use schedule::LrSchedule;
pub use trainer::{
    train_minibatch, train_minibatch_ws, StepTimer, TrainBatchStats, TrainWorkspace,
};

use serde::{Deserialize, Serialize};

/// Configuration for an optimizer, serializable so experiment configs can
/// carry it (the paper ships training code + hyperparameters to clients).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum OptimizerSpec {
    /// Plain stochastic gradient descent.
    Sgd { lr: f32 },
    /// SGD with classical momentum.
    Momentum { lr: f32, beta: f32 },
    /// Adam (Kingma & Ba). The paper's client optimizer with
    /// `lr = 0.001, beta1 = 0.9, beta2 = 0.999`.
    Adam {
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
    },
}

impl OptimizerSpec {
    /// The paper's client configuration: Adam, constant lr 0.001.
    pub fn paper_adam() -> Self {
        OptimizerSpec::Adam {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Instantiates optimizer state for a parameter vector of length `n`.
    pub fn build(&self, n: usize) -> Optimizer {
        Optimizer::new(self.clone(), n)
    }
}

/// Optimizer state bound to a parameter vector length.
pub struct Optimizer {
    spec: OptimizerSpec,
    /// First-moment buffer (momentum / Adam m).
    m: Vec<f32>,
    /// Second-moment buffer (Adam v).
    v: Vec<f32>,
    /// Step counter for Adam bias correction.
    t: u64,
    /// Decoupled weight decay applied before the gradient step (AdamW
    /// style); 0 disables it. The paper trains without regularization
    /// (§IV-A) — this exists for the ablation benches and library users.
    weight_decay: f32,
}

impl Optimizer {
    /// Creates fresh state. Buffers are allocated lazily per variant.
    pub fn new(spec: OptimizerSpec, n: usize) -> Self {
        let (need_m, need_v) = match spec {
            OptimizerSpec::Sgd { .. } => (false, false),
            OptimizerSpec::Momentum { .. } => (true, false),
            OptimizerSpec::Adam { .. } => (true, true),
        };
        Optimizer {
            spec,
            m: if need_m { vec![0.0; n] } else { Vec::new() },
            v: if need_v { vec![0.0; n] } else { Vec::new() },
            t: 0,
            weight_decay: 0.0,
        }
    }

    /// Enables decoupled weight decay at rate `wd` per step (builder
    /// style).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!((0.0..1.0).contains(&wd), "weight decay {wd} outside [0, 1)");
        self.weight_decay = wd;
        self
    }

    /// The configured base learning rate.
    pub fn lr(&self) -> f32 {
        match self.spec {
            OptimizerSpec::Sgd { lr }
            | OptimizerSpec::Momentum { lr, .. }
            | OptimizerSpec::Adam { lr, .. } => lr,
        }
    }

    /// Number of optimizer steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update in place: `params -= update(grads)`, using
    /// `lr_scale` as a multiplier on the base learning rate (for schedules).
    pub fn step_scaled(&mut self, params: &mut [f32], grads: &[f32], lr_scale: f32) {
        assert_eq!(
            params.len(),
            grads.len(),
            "params/grads length mismatch: {} vs {}",
            params.len(),
            grads.len()
        );
        self.t += 1;
        if self.weight_decay > 0.0 {
            let keep = 1.0 - self.weight_decay * lr_scale;
            for p in params.iter_mut() {
                *p *= keep;
            }
        }
        match self.spec {
            OptimizerSpec::Sgd { lr } => {
                let step = lr * lr_scale;
                for (p, &g) in params.iter_mut().zip(grads) {
                    *p -= step * g;
                }
            }
            OptimizerSpec::Momentum { lr, beta } => {
                assert_eq!(
                    self.m.len(),
                    params.len(),
                    "optimizer built for another model"
                );
                let step = lr * lr_scale;
                for ((p, &g), m) in params.iter_mut().zip(grads).zip(&mut self.m) {
                    *m = beta * *m + g;
                    *p -= step * *m;
                }
            }
            OptimizerSpec::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                assert_eq!(
                    self.m.len(),
                    params.len(),
                    "optimizer built for another model"
                );
                let t = self.t as f32;
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                let step = lr * lr_scale;
                for (((p, &g), m), v) in params
                    .iter_mut()
                    .zip(grads)
                    .zip(&mut self.m)
                    .zip(&mut self.v)
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *v = beta2 * *v + (1.0 - beta2) * g * g;
                    let m_hat = *m / bc1;
                    let v_hat = *v / bc2;
                    *p -= step * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
    }

    /// One update at the base learning rate.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        self.step_scaled(params, grads, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = x^2 from x = 5 and returns the trajectory endpoint.
    fn descend(spec: OptimizerSpec, iters: usize) -> f32 {
        let mut opt = spec.build(1);
        let mut x = vec![5.0f32];
        for _ in 0..iters {
            let g = vec![2.0 * x[0]];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = descend(OptimizerSpec::Sgd { lr: 0.1 }, 100);
        assert!(x.abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let x = descend(
            OptimizerSpec::Momentum {
                lr: 0.02,
                beta: 0.9,
            },
            300,
        );
        assert!(x.abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Adam's effective step is ~lr per iteration, so crossing from
        // x = 5 to the optimum needs >5000 steps at lr = 1e-3.
        let x = descend(OptimizerSpec::paper_adam(), 10_000);
        assert!(x.abs() < 0.05, "x = {x}");
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, Adam's very first step is ~lr regardless of
        // gradient magnitude.
        let mut opt = OptimizerSpec::paper_adam().build(1);
        let mut x = vec![0.0f32];
        opt.step(&mut x, &[1234.5]);
        assert!((x[0] + 1e-3).abs() < 1e-5, "step {}", x[0]);
    }

    #[test]
    fn sgd_matches_hand_computation() {
        let mut opt = OptimizerSpec::Sgd { lr: 0.5 }.build(2);
        let mut p = vec![1.0f32, -2.0];
        opt.step(&mut p, &[0.2, -0.4]);
        assert_eq!(p, vec![0.9, -1.8]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = OptimizerSpec::Momentum { lr: 1.0, beta: 1.0 }.build(1);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0]); // v=1, p=-1
        opt.step(&mut p, &[1.0]); // v=2, p=-3
        assert_eq!(p[0], -3.0);
    }

    #[test]
    fn lr_scale_multiplies_step() {
        let mut a = OptimizerSpec::Sgd { lr: 0.1 }.build(1);
        let mut b = OptimizerSpec::Sgd { lr: 0.1 }.build(1);
        let mut pa = vec![1.0f32];
        let mut pb = vec![1.0f32];
        a.step_scaled(&mut pa, &[1.0], 1.0);
        b.step_scaled(&mut pb, &[1.0], 0.5);
        assert!((1.0 - pa[0]) > (1.0 - pb[0]));
        assert!(((1.0 - pa[0]) - 2.0 * (1.0 - pb[0])).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_grads() {
        let mut opt = OptimizerSpec::Sgd { lr: 0.1 }.build(2);
        let mut p = vec![0.0f32, 0.0];
        opt.step(&mut p, &[1.0]);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut opt = OptimizerSpec::Sgd { lr: 0.1 }
            .build(2)
            .with_weight_decay(0.01);
        let mut p = vec![10.0f32, -10.0];
        opt.step(&mut p, &[0.0, 0.0]);
        assert!((p[0] - 9.9).abs() < 1e-5);
        assert!((p[1] + 9.9).abs() < 1e-5);
    }

    #[test]
    fn weight_decay_is_decoupled_from_adam_moments() {
        // With AdamW-style decay the shrinkage is applied to the weights,
        // not folded into the gradient moments: a constant gradient gives
        // the same first step with or without decay, on top of the shrink.
        let g = [1.0f32];
        let mut plain = OptimizerSpec::paper_adam().build(1);
        let mut decayed = OptimizerSpec::paper_adam().build(1).with_weight_decay(0.1);
        let mut p1 = vec![1.0f32];
        let mut p2 = vec![1.0f32];
        plain.step(&mut p1, &g);
        decayed.step(&mut p2, &g);
        let adam_step = 1.0 - p1[0];
        assert!(((1.0 * 0.9 - p2[0]) - adam_step).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn weight_decay_range_checked() {
        let _ = OptimizerSpec::Sgd { lr: 0.1 }
            .build(1)
            .with_weight_decay(1.0);
    }

    #[test]
    fn spec_serializes() {
        let spec = OptimizerSpec::paper_adam();
        let json = serde_json::to_string(&spec).unwrap();
        let back: OptimizerSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
