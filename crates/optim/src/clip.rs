//! Gradient clipping.

/// Scales `grads` in place so its global L2 norm does not exceed
/// `max_norm`; returns the pre-clip norm.
///
/// Client replicas in a VC fleet train on small, skewed data subsets, which
/// occasionally produces exploding gradients; the training driver clips
/// before every optimizer step so a pathological subtask cannot poison its
/// parameter upload (the validator would otherwise have to reject it).
pub fn clip_by_global_norm(grads: &mut [f32], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let norm = grads.iter().map(|g| g * g).sum::<f32>().sqrt();
    if norm > max_norm && norm.is_finite() {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

/// Replaces non-finite gradient entries with zero, returning how many were
/// scrubbed. A last-resort guard used by failure-injection tests.
pub fn scrub_non_finite(grads: &mut [f32]) -> usize {
    let mut n = 0;
    for g in grads.iter_mut() {
        if !g.is_finite() {
            *g = 0.0;
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_gradients_untouched() {
        let mut g = vec![0.3, -0.4]; // norm 0.5
        let norm = clip_by_global_norm(&mut g, 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(g, vec![0.3, -0.4]);
    }

    #[test]
    fn large_gradients_scaled_to_max_norm() {
        let mut g = vec![3.0, 4.0]; // norm 5
        clip_by_global_norm(&mut g, 1.0);
        let new_norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-6);
        // Direction preserved.
        assert!((g[0] / g[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn non_finite_norm_leaves_data_for_scrub() {
        let mut g = vec![1.0, f32::NAN];
        let norm = clip_by_global_norm(&mut g, 1.0);
        assert!(norm.is_nan());
        assert_eq!(scrub_non_finite(&mut g), 1);
        assert_eq!(g[1], 0.0);
    }

    #[test]
    fn scrub_counts_all_kinds() {
        let mut g = vec![f32::INFINITY, f32::NEG_INFINITY, f32::NAN, 1.0];
        assert_eq!(scrub_non_finite(&mut g), 3);
        assert_eq!(g, vec![0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "max_norm must be positive")]
    fn rejects_nonpositive_max() {
        clip_by_global_norm(&mut [1.0], 0.0);
    }
}
