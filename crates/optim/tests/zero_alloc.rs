//! Counting-allocator proof of the workspace trainer's zero-alloc claim:
//! after one warm-up pass, steady-state `train_minibatch_ws` steps perform
//! **no heap allocation at all** — forward caches, direct-conv scratch,
//! gradient flats, batch assembly and optimizer state all live in reused
//! buffers.
//!
//! The claim is asserted at **every** thread cap, not just serially:
//! `VC_THREADS=8` is set before the pool's first use (this file must stay
//! a single-test binary so no other test races the env var), then the cap
//! sweeps 8 → 4 → 2 → 1 with a warm-up and a counted pass at each. This
//! covers the pool's stack-job dispatch path (jobs live on the submitter's
//! stack, the queue is pre-reserved, helpers touch no heap) and the
//! submitter-side GEMM A-pack arena, whose high-water mark is reached at
//! the widest cap — which is why the sweep starts at 8.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(l)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(p, l, new_size)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_training_steps_do_not_allocate() {
    // Before the pool's OnceLock initializes: ask for 8 workers even on a
    // smaller box, so every cap in the sweep below is actually exercised.
    std::env::set_var("VC_THREADS", "8");
    use rand::SeedableRng;
    use vc_optim::{train_minibatch_ws, OptimizerSpec, TrainWorkspace};
    use vc_tensor::{NormalSampler, Tensor};

    let mut model = vc_nn::spec::small_cnn(&[1, 8, 8], 4).build(7);
    let mut opt = OptimizerSpec::paper_adam().build(model.params_flat().len());
    let mut s = NormalSampler::seed_from(3);
    let images = Tensor::randn(&[16, 1, 8, 8], 0.0, 1.0, &mut s);
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    let mut tws = TrainWorkspace::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    assert_eq!(rayon::max_threads(), 8, "VC_THREADS must size the pool");

    // Widest cap first: the A-pack arena and workspace pools hit their
    // high-water marks at 8 threads, so later (narrower) caps reuse them.
    for cap in [8usize, 4, 2, 1] {
        rayon::set_thread_cap(cap);
        // Warm-up at this cap: fills the workspace pools, the flat
        // param/grad vectors and the optimizer state — and, on the first
        // iteration, spawns the pool's worker threads.
        train_minibatch_ws(
            &mut model, &mut opt, &images, &labels, 4, 2, 5.0, &mut rng, &mut tws, None,
        );

        let (takes_before, misses_before) = tws.pool_stats();
        ALLOCS.store(0, Ordering::SeqCst);
        COUNTING.store(true, Ordering::SeqCst);
        let stats = train_minibatch_ws(
            &mut model, &mut opt, &images, &labels, 4, 3, 5.0, &mut rng, &mut tws, None,
        );
        COUNTING.store(false, Ordering::SeqCst);

        assert!(stats.mean_loss.is_finite());
        let (takes, misses) = tws.pool_stats();
        assert!(
            takes > takes_before,
            "cap {cap}: the measured pass must have exercised the pool"
        );
        assert_eq!(
            misses, misses_before,
            "cap {cap}: steady state must never miss the buffer pool"
        );
        assert_eq!(
            ALLOCS.load(Ordering::SeqCst),
            0,
            "cap {cap}: steady-state train_minibatch_ws steps must not touch the heap"
        );
    }
    rayon::set_thread_cap(usize::MAX);
}
