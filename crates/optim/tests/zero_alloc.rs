//! Counting-allocator proof of the workspace trainer's zero-alloc claim:
//! after one warm-up pass, steady-state `train_minibatch_ws` steps perform
//! **no heap allocation at all** — forward caches, im2col columns, gradient
//! flats, batch assembly and optimizer state all live in reused buffers.
//!
//! Runs under `VC_THREADS=1` (set before the pool's first use; this file
//! must stay a single-test binary) so the measurement also covers the pool
//! dispatch path: with one thread, parallel calls run inline and allocation-
//! free. Multi-threaded dispatch costs one `Arc<Job>` per parallel *call*
//! (not per step datum); that bound is documented in DESIGN.md §8.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(l)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(p, l, new_size)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_training_steps_do_not_allocate() {
    std::env::set_var("VC_THREADS", "1");
    use rand::SeedableRng;
    use vc_optim::{train_minibatch_ws, OptimizerSpec, TrainWorkspace};
    use vc_tensor::{NormalSampler, Tensor};

    let mut model = vc_nn::spec::small_cnn(&[1, 8, 8], 4).build(7);
    let mut opt = OptimizerSpec::paper_adam().build(model.params_flat().len());
    let mut s = NormalSampler::seed_from(3);
    let images = Tensor::randn(&[16, 1, 8, 8], 0.0, 1.0, &mut s);
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    let mut tws = TrainWorkspace::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    // Warm-up: fills the workspace pools, the flat param/grad vectors and
    // the optimizer state to their steady-state high-water marks.
    train_minibatch_ws(
        &mut model, &mut opt, &images, &labels, 4, 2, 5.0, &mut rng, &mut tws, None,
    );

    let (takes_before, misses_before) = tws.pool_stats();
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let stats = train_minibatch_ws(
        &mut model, &mut opt, &images, &labels, 4, 3, 5.0, &mut rng, &mut tws, None,
    );
    COUNTING.store(false, Ordering::SeqCst);

    assert!(stats.mean_loss.is_finite());
    let (takes, misses) = tws.pool_stats();
    assert!(
        takes > takes_before,
        "the measured pass must have exercised the pool"
    );
    assert_eq!(
        misses, misses_before,
        "steady state must never miss the buffer pool"
    );
    assert_eq!(
        ALLOCS.load(Ordering::SeqCst),
        0,
        "steady-state train_minibatch_ws steps must not touch the heap"
    );
}
