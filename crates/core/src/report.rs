//! Run results: the per-epoch series the paper's figures plot.

use serde::{Deserialize, Serialize};
use vc_kvstore::StoreOps;
use vc_middleware::ServerMetrics;

/// One marker on the paper's accuracy-vs-time curves: the state at the end
/// of an epoch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// 1-based epoch number.
    pub epoch: usize,
    /// α used this epoch.
    pub alpha: f32,
    /// Cumulative simulated training time at epoch end, hours (the x-axis
    /// of Figures 2, 4, 5, 6).
    pub end_time_h: f64,
    /// Mean validation accuracy over the epoch's assimilated subtasks
    /// (the y-axis of Figures 2, 4, 5).
    pub mean_val_acc: f32,
    /// Minimum per-subtask validation accuracy (lower error bar, Fig. 4).
    pub min_val_acc: f32,
    /// Maximum per-subtask validation accuracy (upper error bar, Fig. 4).
    pub max_val_acc: f32,
    /// Test accuracy at epoch end, when the run tracks it (Fig. 6).
    pub test_acc: Option<f32>,
    /// Parameter servers active during this epoch (varies when
    /// autoscaling is on).
    pub pn: usize,
    /// Subtask results assimilated this epoch.
    pub assimilated: usize,
    /// Cumulative lost updates in the parameter store so far.
    pub lost_updates: u64,
    /// Cumulative middleware timeouts so far.
    pub timeouts: u64,
}

/// The complete output of a distributed training run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// Experiment label (e.g. `P5C5T2`).
    pub label: String,
    /// Per-epoch series.
    pub epochs: Vec<EpochStats>,
    /// Accuracy of the final server parameters on the held-out test split
    /// (Figure 6's right panel).
    pub final_test_acc: f32,
    /// Accuracy of the final server parameters on the full validation split.
    pub final_val_acc: f32,
    /// Total simulated training time, hours.
    pub total_time_h: f64,
    /// Middleware counters at the end of the run.
    pub server_metrics: ServerMetrics,
    /// Bytes moved over the simulated network (downloads + uploads).
    pub bytes_transferred: u64,
    /// Parameter-store operation counters.
    pub store_ops: StoreOps,
    /// Preemptions that occurred during the run.
    pub preemptions: u64,
}

impl JobReport {
    /// The epoch at which mean validation accuracy first reached `target`,
    /// with its cumulative time — the "time-to-accuracy" metric used to
    /// compare schedules in §IV-C.
    pub fn time_to_accuracy(&self, target: f32) -> Option<(usize, f64)> {
        self.epochs
            .iter()
            .find(|e| e.mean_val_acc >= target)
            .map(|e| (e.epoch, e.end_time_h))
    }

    /// Final epoch-mean accuracy (0 when no epoch completed).
    pub fn final_mean_acc(&self) -> f32 {
        self.epochs.last().map(|e| e.mean_val_acc).unwrap_or(0.0)
    }

    /// Renders the per-epoch series as CSV with the figure-friendly columns
    /// `epoch,alpha,hours,mean,min,max`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("epoch,alpha,hours,mean_acc,min_acc,max_acc\n");
        for e in &self.epochs {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
                e.epoch, e.alpha, e.end_time_h, e.mean_val_acc, e.min_val_acc, e.max_val_acc
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(epoch: usize, h: f64, acc: f32) -> EpochStats {
        EpochStats {
            epoch,
            alpha: 0.95,
            end_time_h: h,
            mean_val_acc: acc,
            min_val_acc: acc - 0.05,
            max_val_acc: acc + 0.05,
            test_acc: None,
            pn: 3,
            assimilated: 50,
            lost_updates: 0,
            timeouts: 0,
        }
    }

    fn report() -> JobReport {
        JobReport {
            label: "P1C1T1".into(),
            epochs: vec![stats(1, 0.5, 0.3), stats(2, 1.0, 0.6), stats(3, 1.5, 0.7)],
            final_test_acc: 0.68,
            final_val_acc: 0.70,
            total_time_h: 1.5,
            server_metrics: ServerMetrics::default(),
            bytes_transferred: 0,
            store_ops: StoreOps::default(),
            preemptions: 0,
        }
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let r = report();
        assert_eq!(r.time_to_accuracy(0.5), Some((2, 1.0)));
        assert_eq!(r.time_to_accuracy(0.65), Some((3, 1.5)));
        assert_eq!(r.time_to_accuracy(0.9), None);
    }

    #[test]
    fn final_mean_acc_is_last_epoch() {
        assert_eq!(report().final_mean_acc(), 0.7);
        let empty = JobReport {
            epochs: vec![],
            ..report()
        };
        assert_eq!(empty.final_mean_acc(), 0.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("epoch,"));
        assert!(lines[1].starts_with("1,0.9500,0.5000,0.3000"));
    }
}
