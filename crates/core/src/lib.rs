//! # vc-asgd
//!
//! **The paper's primary contribution**: VC-ASGD, an asynchronous parameter-
//! update scheme for distributed deep-learning training on volunteer-
//! computing-like fleets, together with the training-job driver that runs it
//! over the workspace's substrates.
//!
//! ## The scheme (§III-C)
//!
//! The parameter server assimilates each arriving client result immediately,
//! in arrival order, with the recursive blend of Eq. (1):
//!
//! ```text
//! W_s ← α·W_s + (1 − α)·W_c,j
//! ```
//!
//! It never waits for stragglers, so the scheme is fault tolerant: a lost or
//! late subtask simply contributes nothing until the middleware re-issues
//! it. Unrolling Eq. (1) over the `n_t` subtasks of an epoch yields Eq. (2),
//! which [`alpha`] and the property tests verify against the implementation.
//! α may vary per epoch ([`alpha::AlphaSchedule`]); the paper's "Var"
//! schedule is `α_e = e/(e+1)`.
//!
//! ## The driver ([`job`])
//!
//! [`job::TrainingJob`] wires every substrate together: the synthetic
//! dataset is sharded by the work generator, the BOINC-like middleware
//! schedules subtasks onto a simulated heterogeneous fleet, clients train
//! *real* models (one per subtask, in parallel), results are validated and
//! assimilated through a strong- or eventually-consistent parameter store,
//! and a discrete-event clock advances through downloads, training,
//! uploads, timeouts, preemptions and assimilation queueing. The output is
//! the per-epoch `(simulated time, validation accuracy mean/min/max)`
//! series that the paper's Figures 2–6 plot.

pub mod alpha;
pub mod assimilator;
pub mod client;
pub mod config;
pub mod job;
pub mod report;

pub use alpha::AlphaSchedule;
pub use assimilator::VcAsgdAssimilator;
pub use client::{
    result_is_valid, train_client_replica, train_client_replica_ws, warm_start_params,
};
pub use config::{FleetKind, JobConfig};
pub use job::TrainingJob;
pub use report::{EpochStats, JobReport};
