//! The distributed training job: the discrete-event driver that wires the
//! work generator, BOINC-like middleware, simulated fleet, real client
//! training and the VC-ASGD parameter servers together.
//!
//! ## What is simulated and what is real
//!
//! *Time* is simulated: downloads, training durations, uploads, timeouts,
//! preemptions and assimilation queueing advance a discrete-event clock
//! calibrated to the paper's testbed (see `vc-simnet`). *Learning* is real:
//! every subtask trains an actual model replica on its shard, and every
//! assimilation applies Eq. (1) to actual parameter vectors, so the
//! accuracy curves are genuine SGD dynamics under the simulated asynchrony.
//!
//! ## Epoch protocol (§III-A)
//!
//! The work generator creates one workunit per shard at the start of each
//! epoch, all carrying the server parameter snapshot current at that moment
//! (Eq. (2)'s `W_{s,e-1}`). Within the epoch everything is asynchronous:
//! results assimilate in arrival order, stragglers time out and are
//! reassigned, lost hosts are replaced. The epoch ends when all shards'
//! results have been assimilated; the driver then records the epoch's
//! validation statistics and generates the next epoch.

use crate::assimilator::VcAsgdAssimilator;
use crate::client::{result_is_valid, train_client_replica, warm_start_params};
use crate::config::JobConfig;
use crate::report::{EpochStats, JobReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use vc_data::{Dataset, ShardSet};
use vc_kvstore::{Consistency, VersionedStore};
use vc_middleware::{BoincServer, HostId, ReportStatus, WuId};
use vc_nn::metrics::evaluate;
use vc_nn::Sequential;
use vc_simnet::{EventQueue, InstanceSpec, SimTime};
use vc_tensor::codec::encoded_len;

/// Discrete events driving the simulation.
#[derive(Debug)]
enum Ev {
    /// A host polls the scheduler for work.
    Poll(HostId),
    /// A host finished local training for a workunit (starts the upload).
    TaskDone { host: HostId, gen: u32, wu: WuId },
    /// A result upload reached the server.
    UploadDone { host: HostId, gen: u32, wu: WuId },
    /// A parameter server finished the CPU part of assimilation
    /// (deserialization + validation prep) and now begins the store update.
    AssimCommit {
        wu: WuId,
        epoch: usize,
        client: Arc<Vec<f32>>,
    },
    /// The store update transaction completed.
    AssimDone {
        wu: WuId,
        epoch: usize,
        /// Eventual-mode stale snapshot captured when the store update
        /// began (the read of the read-modify-write cycle).
        snapshot: Option<(Vec<f32>, u64)>,
        client: Arc<Vec<f32>>,
    },
    /// The transitioner wakes to expire overdue assignments.
    DeadlineScan,
    /// A host instance is terminated by the cloud provider.
    Preempt { host: HostId, gen: u32 },
    /// A replacement instance comes up for a terminated host slot.
    Revive(HostId),
}

/// An accepted result waiting for a free parameter server.
struct PendingAssim {
    wu: WuId,
    epoch: usize,
    client: Arc<Vec<f32>>,
}

/// The end-to-end distributed training run. Construct with
/// [`TrainingJob::new`], execute with [`TrainingJob::run`].
pub struct TrainingJob {
    cfg: JobConfig,
    // Data.
    shards: ShardSet,
    val: Dataset,
    test: Dataset,
    val_eval: Dataset,
    // Distributed state.
    server: BoincServer,
    assim: VcAsgdAssimilator,
    store: Arc<VersionedStore>,
    events: EventQueue<Ev>,
    // Per-epoch state.
    epoch: usize,
    snapshots: HashMap<usize, Arc<Vec<f32>>>,
    client_cache: HashMap<(usize, usize), Arc<Vec<f32>>>,
    epoch_accs: Vec<f32>,
    epoch_stats: Vec<EpochStats>,
    // Server-side resources.
    busy_ps: usize,
    current_pn: usize,
    queue_len_sum: u64,
    queue_len_samples: u64,
    assim_queue: Vec<PendingAssim>,
    eval_model: Sequential,
    /// Reused decode buffer for server-parameter evaluations (the hot
    /// fetch path stays allocation-free once warm).
    eval_params: Vec<f32>,
    // Fleet state.
    fleet: Vec<InstanceSpec>,
    generations: Vec<u32>,
    // RNG streams.
    net_rng: StdRng,
    preempt_rng: StdRng,
    // Accounting.
    bytes: u64,
    preemptions: u64,
    param_count: usize,
    done: bool,
}

impl TrainingJob {
    /// Builds a job, generating data and seeding the parameter store.
    pub fn new(cfg: JobConfig) -> Result<Self, String> {
        cfg.validate()?;
        let (train, val, test) = cfg.data.generate();
        let shards = ShardSet::split(&train, cfg.shards);
        let val_eval = val.select(&(0..cfg.val_eval_n).collect::<Vec<_>>());

        let fleet = cfg.fleet.build(cfg.cn);
        let server = BoincServer::new(
            cfg.middleware.clone(),
            fleet.iter().map(|s| (s.clone(), cfg.tn)).collect(),
        );

        let store = VersionedStore::shared();
        let assim = VcAsgdAssimilator::new(store.clone(), cfg.consistency, cfg.alpha);

        let init_model = cfg.model.build(cfg.seed);
        let init_params = init_model.params_flat();
        let param_count = init_params.len();
        assim.seed_params(&init_params);

        let mut snapshots = HashMap::new();
        snapshots.insert(1usize, Arc::new(init_params));

        let cn = fleet.len();
        Ok(TrainingJob {
            net_rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x2545_F491).wrapping_add(11)),
            preempt_rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(13)),
            eval_model: init_model,
            eval_params: Vec::new(),
            shards,
            val,
            test,
            val_eval,
            server,
            assim,
            store,
            events: EventQueue::new(),
            epoch: 1,
            snapshots,
            client_cache: HashMap::new(),
            epoch_accs: Vec::new(),
            epoch_stats: Vec::new(),
            busy_ps: 0,
            current_pn: cfg.pn,
            queue_len_sum: 0,
            queue_len_samples: 0,
            assim_queue: Vec::new(),
            fleet,
            generations: vec![0; cn],
            bytes: 0,
            preemptions: 0,
            param_count,
            cfg,
            done: false,
        })
    }

    /// Executes the run to completion and returns the report.
    pub fn run(&mut self) -> JobReport {
        // Warm start (§II-B): serial synchronous passes before going
        // distributed, charged against the clock at the serial rate.
        let start_at = self.warm_start();

        // Kick off epoch 1 and the first round of polls.
        let v = self.store.version(crate::assimilator::PARAMS_KEY);
        self.server.add_epoch(1, self.cfg.shards, v, SimTime::ZERO);
        for h in 0..self.fleet.len() {
            self.events
                .schedule_in(start_at, Ev::Poll(HostId(h as u32)));
        }

        let mut safety = 0u64;
        while !self.done {
            let Some((_, ev)) = self.events.pop() else {
                panic!(
                    "event queue drained with {} open workunits at epoch {}",
                    self.server.open_count(),
                    self.epoch
                );
            };
            self.dispatch(ev);
            safety += 1;
            assert!(
                safety < 50_000_000,
                "simulation exceeded event budget — livelock?"
            );
        }
        self.report()
    }

    // ------------------------------------------------------------ dispatch

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Poll(host) => self.on_poll(host),
            Ev::TaskDone { host, gen, wu } => self.on_task_done(host, gen, wu),
            Ev::UploadDone { host, gen, wu } => self.on_upload_done(host, gen, wu),
            Ev::AssimCommit { wu, epoch, client } => self.on_assim_commit(wu, epoch, client),
            Ev::AssimDone {
                wu,
                epoch,
                snapshot,
                client,
            } => self.on_assim_done(wu, epoch, snapshot, client),
            Ev::DeadlineScan => self.on_deadline_scan(),
            Ev::Preempt { host, gen } => self.on_preempt(host, gen),
            Ev::Revive(host) => self.on_revive(host),
        }
    }

    fn on_poll(&mut self, host: HostId) {
        let now = self.events.now();
        while let Some(asg) = self.server.request_work(host, now) {
            let spec = &self.fleet[host.0 as usize];
            let resident = self.server.hosts()[host.0 as usize].in_flight;

            // Download: parameter snapshot always; shard only on cache miss.
            let param_bytes = encoded_len(self.param_count);
            let mut dl = self
                .cfg
                .network
                .transfer_s(spec, param_bytes, &mut self.net_rng);
            self.bytes += param_bytes as u64;
            if !asg.shard_cached {
                let shard_bytes = self.shards.shard(asg.wu.shard_id).byte_size();
                dl += self
                    .cfg
                    .network
                    .transfer_s(spec, shard_bytes, &mut self.net_rng);
                self.bytes += shard_bytes as u64;
            }

            let compute = self.cfg.compute.subtask_s(spec, resident.max(1));
            let gen = self.generations[host.0 as usize];

            // Preemption (§IV-E): drawn per subtask execution; a hit kills
            // the whole instance partway through the compute phase.
            if let Some(kill_after) = self
                .cfg
                .preemption
                .draw_preemption(compute, &mut self.preempt_rng)
            {
                self.events
                    .schedule_in(dl + kill_after, Ev::Preempt { host, gen });
                // The TaskDone below still gets scheduled; the generation
                // bump at preemption time invalidates it.
            }

            self.events.schedule_in(
                dl + compute,
                Ev::TaskDone {
                    host,
                    gen,
                    wu: asg.wu.id,
                },
            );
            // Wake the transitioner just after this assignment's deadline.
            let delay = (asg.deadline - now) + 0.001;
            self.events.schedule_in(delay, Ev::DeadlineScan);
        }
        // A host barred by fetch backoff re-polls right after the bar
        // lifts; nothing else is guaranteed to wake it before the event
        // queue drains.
        if let Some(until) = self.server.hosts()[host.0 as usize].backoff_until {
            if self.server.hosts()[host.0 as usize].alive && until > now {
                self.events
                    .schedule_in((until - now) + 0.001, Ev::Poll(host));
            }
        }
    }

    fn on_task_done(&mut self, host: HostId, gen: u32, wu: WuId) {
        if self.generations[host.0 as usize] != gen || !self.server.hosts()[host.0 as usize].alive {
            return; // the instance died before finishing
        }
        let now = self.events.now();
        let info = self.server.workunit(wu).clone();
        let params = self.client_result(info.epoch, info.shard_id);

        // Client-side sanity: a diverged replica uploads anyway; the
        // server-side validator rejects it (BOINC validator step).
        if !result_is_valid(&params) {
            self.server.report_invalid(wu, host, now);
            self.events.schedule_in(0.0, Ev::Poll(host));
            return;
        }

        let spec = &self.fleet[host.0 as usize];
        let up =
            self.cfg
                .network
                .transfer_s(spec, encoded_len(self.param_count), &mut self.net_rng);
        self.bytes += encoded_len(self.param_count) as u64;
        self.events
            .schedule_in(up, Ev::UploadDone { host, gen, wu });
    }

    fn on_upload_done(&mut self, host: HostId, gen: u32, wu: WuId) {
        if self.generations[host.0 as usize] != gen {
            return; // died mid-upload; the timeout will recover the workunit
        }
        let now = self.events.now();
        let info = self.server.workunit(wu).clone();
        let client = self.client_result(info.epoch, info.shard_id);
        let status = self.server.report_result(wu, host, &client, now);
        // Either way the slot is free again.
        self.events.schedule_in(0.0, Ev::Poll(host));
        if status != ReportStatus::Accepted {
            // Pending: the vote is banked server-side until quorum; other
            // hosts may need to pick up the extra replicas it requested.
            if status == ReportStatus::Pending {
                for h in 0..self.fleet.len() {
                    self.events.schedule_in(0.0, Ev::Poll(HostId(h as u32)));
                }
            }
            return;
        }
        self.assim_queue.push(PendingAssim {
            wu,
            epoch: info.epoch,
            client,
        });
        self.pump_assimilators();
    }

    /// Starts assimilations while parameter servers are free.
    ///
    /// An assimilation has two simulated phases: the CPU phase (result
    /// deserialization, bookkeeping, validation-scoring preparation) and
    /// the store-update transaction. The eventual-consistency race window
    /// is only the second phase — the read of the read-modify-write cycle
    /// happens when the DB update begins, exactly as a Redis GET/SET pair
    /// would, so overlap between parameter servers loses updates at the
    /// §IV-D rate rather than across the whole CPU phase.
    fn pump_assimilators(&mut self) {
        self.queue_len_sum += self.assim_queue.len() as u64;
        self.queue_len_samples += 1;
        while self.busy_ps < self.current_pn && !self.assim_queue.is_empty() {
            let item = self.assim_queue.remove(0);
            self.busy_ps += 1;
            let server_spec = vc_simnet::table1::server();
            let inflight = self.busy_ps + self.assim_queue.len();
            // ±10% duration jitter desynchronizes parameter servers that
            // picked results up in the same burst; without it, commits tie
            // exactly and the eventual-consistency loss rate is
            // pathologically overstated.
            let jitter = 0.9 + 0.2 * rand::Rng::gen::<f64>(&mut self.net_rng);
            let cpu = self
                .cfg
                .compute
                .assim_s(&server_spec, self.current_pn, inflight)
                * jitter;
            self.events.schedule_in(
                cpu,
                Ev::AssimCommit {
                    wu: item.wu,
                    epoch: item.epoch,
                    client: item.client,
                },
            );
        }
    }

    fn on_assim_commit(&mut self, wu: WuId, epoch: usize, client: Arc<Vec<f32>>) {
        let snapshot = match self.cfg.consistency {
            Consistency::Eventual => Some(self.assim.begin_eventual()),
            Consistency::Strong => None,
        };
        let dur = self.assim.update_latency_s(self.param_count);
        self.events.schedule_in(
            dur,
            Ev::AssimDone {
                wu,
                epoch,
                snapshot,
                client,
            },
        );
    }

    fn on_assim_done(
        &mut self,
        _wu: WuId,
        epoch: usize,
        snapshot: Option<(Vec<f32>, u64)>,
        client: Arc<Vec<f32>>,
    ) {
        // Apply Eq. (1) through the configured consistency path.
        let updated = match snapshot {
            Some((snap, version)) => {
                let (updated, _clobbered) =
                    self.assim.commit_eventual(snap, version, &client, epoch);
                updated
            }
            None => self.assim.assimilate_strong(&client, epoch),
        };
        self.busy_ps -= 1;

        // Parameter-server validation scoring (§III-A): accuracy of the
        // post-update server copy on the validation subset.
        let acc = if self.cfg.timing_only {
            0.0
        } else {
            self.eval_model.set_params_flat(&updated);
            let (_, acc) = evaluate(
                &mut self.eval_model,
                &self.val_eval.images,
                &self.val_eval.labels,
                256,
            );
            acc
        };
        if epoch == self.epoch {
            self.epoch_accs.push(acc);
            if self.epoch_accs.len() == self.cfg.shards {
                self.finish_epoch();
            }
        }
        self.pump_assimilators();
    }

    fn finish_epoch(&mut self) {
        let now = self.events.now();
        let accs = std::mem::take(&mut self.epoch_accs);
        let mean = accs.iter().sum::<f32>() / accs.len() as f32;
        let min = accs.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = accs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let sm = self.server.metrics();
        let test_acc = if self.cfg.track_test_acc && !self.cfg.timing_only {
            self.assim.read_params_into(&mut self.eval_params);
            self.eval_model.set_params_flat(&self.eval_params);
            let (_, t) = evaluate(
                &mut self.eval_model,
                &self.test.images,
                &self.test.labels,
                256,
            );
            Some(t)
        } else {
            None
        };
        self.epoch_stats.push(EpochStats {
            epoch: self.epoch,
            alpha: self.cfg.alpha.alpha(self.epoch),
            end_time_h: now.as_hours(),
            mean_val_acc: mean,
            min_val_acc: min,
            max_val_acc: max,
            test_acc,
            pn: self.current_pn,
            assimilated: accs.len(),
            lost_updates: self.assim.lost_updates(),
            timeouts: sm.timeouts,
        });

        let reached_target = self.cfg.target_accuracy.map(|t| mean >= t).unwrap_or(false);
        if reached_target || self.epoch >= self.cfg.epochs {
            self.done = true;
            return;
        }

        self.autoscale_ps();

        // Next epoch: snapshot the current server parameters for all of its
        // subtasks (Eq. (2)'s W_{s,e-1}).
        self.epoch += 1;
        let (params, version) = self.assim.read_params();
        self.snapshots.insert(self.epoch, Arc::new(params));
        self.server
            .add_epoch(self.epoch, self.cfg.shards, version, now);
        for h in 0..self.fleet.len() {
            self.events.schedule_in(0.0, Ev::Poll(HostId(h as u32)));
        }
    }

    fn on_deadline_scan(&mut self) {
        let now = self.events.now();
        let expired = self.server.scan_timeouts(now);
        if !expired.is_empty() {
            for h in 0..self.fleet.len() {
                self.events.schedule_in(0.0, Ev::Poll(HostId(h as u32)));
            }
        }
    }

    fn on_preempt(&mut self, host: HostId, gen: u32) {
        if self.generations[host.0 as usize] != gen {
            return; // instance already replaced
        }
        self.preemptions += 1;
        self.generations[host.0 as usize] += 1;
        self.server.preempt_host(host);
        self.events
            .schedule_in(self.cfg.replacement_delay_s, Ev::Revive(host));
    }

    fn on_revive(&mut self, host: HostId) {
        self.server.revive_host(host, self.events.now());
        self.generations[host.0 as usize] += 1;
        self.events.schedule_in(0.0, Ev::Poll(host));
    }

    /// Runs the configured warm-start epochs on the seed parameters and
    /// returns the simulated seconds they consumed.
    fn warm_start(&mut self) -> f64 {
        if self.cfg.warm_start_epochs == 0 {
            return 0.0;
        }
        let server_spec = vc_simnet::table1::server();
        // One serial epoch covers all shards back-to-back with the intra-op
        // parallelism a dedicated instance sustains (see vc-baselines).
        let epoch_s = self.cfg.shards as f64 * self.cfg.compute.base_subtask_s
            / server_spec.core_speed()
            / 4.0;
        if !self.cfg.timing_only {
            let init = self.snapshots.get(&1).expect("seed snapshot").clone();
            if let Some(warmed) = warm_start_params(&self.cfg, &self.shards, &init) {
                self.assim.seed_params(&warmed);
                self.snapshots.insert(1, Arc::new(warmed));
            }
        }
        self.cfg.warm_start_epochs as f64 * epoch_s
    }

    /// Adjusts the parameter-server pool at an epoch boundary based on the
    /// observed assimilation-queue backlog (§III-D's dynamic scaling).
    fn autoscale_ps(&mut self) {
        if !self.cfg.pn_autoscale || self.queue_len_samples == 0 {
            return;
        }
        let mean_backlog = self.queue_len_sum as f64 / self.queue_len_samples as f64;
        self.queue_len_sum = 0;
        self.queue_len_samples = 0;
        if mean_backlog > self.current_pn as f64 && self.current_pn < self.cfg.pn_max {
            self.current_pn += 1;
        } else if mean_backlog < 0.5 && self.current_pn > 1 {
            self.current_pn -= 1;
        }
    }

    // ---------------------------------------------------------- client side

    /// The (cached) result of training a client replica for `(epoch,
    /// shard)`: start from the epoch snapshot, run `local_epochs` over the
    /// shard, return the replica's parameters. Deterministic per
    /// (seed, epoch, shard) — a reassigned subtask reproduces the same
    /// result, like re-running the same workunit payload.
    fn client_result(&mut self, epoch: usize, shard: usize) -> Arc<Vec<f32>> {
        if let Some(r) = self.client_cache.get(&(epoch, shard)) {
            return r.clone();
        }
        let snapshot = self
            .snapshots
            .get(&epoch)
            .expect("snapshot exists for every generated epoch")
            .clone();
        if self.cfg.timing_only {
            // Time-shape mode: the result is the unchanged snapshot; the
            // simulated durations are identical to a real run.
            self.client_cache.insert((epoch, shard), snapshot.clone());
            return snapshot;
        }
        let data = &self.shards.shard(shard).data;
        let result = Arc::new(train_client_replica(
            &self.cfg, &snapshot, data, epoch, shard,
        ));
        self.client_cache.insert((epoch, shard), result.clone());
        result
    }

    // -------------------------------------------------------------- report

    fn report(&mut self) -> JobReport {
        let (final_val, final_test) = if self.cfg.timing_only {
            (0.0, 0.0)
        } else {
            self.assim.read_params_into(&mut self.eval_params);
            self.eval_model.set_params_flat(&self.eval_params);
            let (_, v) = evaluate(
                &mut self.eval_model,
                &self.val.images,
                &self.val.labels,
                256,
            );
            let (_, t) = evaluate(
                &mut self.eval_model,
                &self.test.images,
                &self.test.labels,
                256,
            );
            (v, t)
        };
        JobReport {
            label: self.cfg.pct_label(),
            epochs: self.epoch_stats.clone(),
            final_test_acc: final_test,
            final_val_acc: final_val,
            total_time_h: self.epoch_stats.last().map(|e| e.end_time_h).unwrap_or(0.0),
            server_metrics: self.server.metrics(),
            bytes_transferred: self.bytes,
            store_ops: self.store.metrics().snapshot(),
            preemptions: self.preemptions,
        }
    }
}

/// Convenience: build and run a job in one call.
pub fn run_job(cfg: JobConfig) -> Result<JobReport, String> {
    Ok(TrainingJob::new(cfg)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JobConfig;
    use vc_simnet::PreemptionModel;

    #[test]
    fn small_job_completes_all_epochs() {
        let cfg = JobConfig::test_small(1);
        let report = run_job(cfg.clone()).unwrap();
        assert_eq!(report.epochs.len(), cfg.epochs);
        for (i, e) in report.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i + 1);
            assert_eq!(e.assimilated, cfg.shards);
            assert!(e.mean_val_acc >= e.min_val_acc && e.mean_val_acc <= e.max_val_acc);
        }
        // Simulated time advances monotonically.
        for w in report.epochs.windows(2) {
            assert!(w[1].end_time_h > w[0].end_time_h);
        }
        assert!(report.total_time_h > 0.0);
    }

    #[test]
    fn job_learns_above_chance() {
        let mut cfg = JobConfig::test_small(2);
        cfg.epochs = 5;
        let report = run_job(cfg).unwrap();
        // 10 classes -> chance is 0.1; even 5 tiny epochs must beat it.
        assert!(
            report.final_mean_acc() > 0.2,
            "accuracy {}",
            report.final_mean_acc()
        );
        // Test and validation accuracy broadly agree (Fig. 6's premise).
        assert!((report.final_test_acc - report.final_val_acc).abs() < 0.2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_job(JobConfig::test_small(7)).unwrap();
        let b = run_job(JobConfig::test_small(7)).unwrap();
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.final_test_acc, b.final_test_acc);
        assert_eq!(a.bytes_transferred, b.bytes_transferred);
    }

    #[test]
    fn target_accuracy_stops_early() {
        let mut cfg = JobConfig::test_small(3);
        cfg.epochs = 50;
        cfg.target_accuracy = Some(0.15); // trivially reachable
        let report = run_job(cfg).unwrap();
        assert!(report.epochs.len() < 50);
        let last = report.epochs.last().unwrap();
        assert!(last.mean_val_acc >= 0.15);
    }

    #[test]
    fn preemption_inflates_time_but_job_finishes() {
        let mut base = JobConfig::test_small(4);
        base.epochs = 2;
        let clean = run_job(base.clone()).unwrap();

        let mut stormy = base;
        stormy.preemption = PreemptionModel::BernoulliPerSubtask { p: 0.3 };
        let hit = run_job(stormy).unwrap();
        assert!(hit.preemptions > 0, "a 30% storm must hit at least once");
        assert!(hit.server_metrics.timeouts > 0);
        assert_eq!(hit.epochs.len(), 2, "fault tolerance: still completes");
        assert!(
            hit.total_time_h > clean.total_time_h,
            "preemption must cost time: {} vs {}",
            hit.total_time_h,
            clean.total_time_h
        );
    }

    #[test]
    fn more_clients_train_faster() {
        let mut small = JobConfig::test_small(5);
        small.epochs = 2;
        small.cn = 1;
        small.tn = 2;
        let one = run_job(small.clone()).unwrap();
        let mut big = small;
        big.cn = 4;
        let four = run_job(big).unwrap();
        assert!(
            four.total_time_h < one.total_time_h,
            "horizontal scaling: {} vs {}",
            four.total_time_h,
            one.total_time_h
        );
    }

    #[test]
    fn eventual_mode_with_many_ps_may_lose_updates() {
        // With pn > 1, assimilations overlap in simulated time; eventual
        // consistency then loses updates while strong never does.
        // Zeroing the CPU phase makes queued results commit
        // simultaneously, so the read-modify-write windows reliably
        // collide.
        let mut cfg = JobConfig::test_small(6);
        cfg.pn = 4;
        cfg.epochs = 2;
        cfg.compute.assim_cpu_s = 0.0;
        cfg.consistency = Consistency::Eventual;
        let ev = run_job(cfg.clone()).unwrap();
        let mut cfg_s = cfg;
        cfg_s.consistency = Consistency::Strong;
        let st = run_job(cfg_s).unwrap();
        assert_eq!(
            st.store_ops.lost_updates, 0,
            "strong mode never loses updates"
        );
        // Eventual mode *can* lose updates (it does whenever two
        // assimilations overlap, which pn=4 with 8 shards makes likely).
        assert!(
            ev.store_ops.lost_updates > 0,
            "expected overlapping assimilations to clobber"
        );
    }

    #[test]
    fn bytes_accounting_scales_with_work() {
        let r = run_job(JobConfig::test_small(8)).unwrap();
        // At minimum: every assignment downloads a parameter blob and every
        // completion uploads one.
        let min_bytes = (r.server_metrics.completed * 2)
            * encoded_len(
                vc_nn::spec::mlp(&[3, 16, 16], 32, 10)
                    .build(1)
                    .param_count(),
            ) as u64;
        assert!(
            r.bytes_transferred >= min_bytes / 2,
            "{}",
            r.bytes_transferred
        );
    }
}
