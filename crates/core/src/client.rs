//! The client-side compute step, shared by the discrete-event simulator
//! ([`crate::job`]) and the real multi-threaded runtime (`vc-runtime`).
//!
//! A BOINC client that receives a workunit does exactly one thing: load the
//! shipped parameter snapshot into a model replica, run `local_epochs`
//! passes of minibatch SGD over its shard, and upload the replica's
//! parameters. Both execution substrates must perform this step
//! *identically* — same model build, same optimizer state, same RNG stream
//! per `(seed, epoch, shard)` — so that a simulated run and a real threaded
//! run differ only in scheduling, never in the learning dynamics of an
//! individual subtask.

use crate::config::JobConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_data::Dataset;
use vc_optim::{train_minibatch, train_minibatch_ws, StepTimer, TrainWorkspace};

/// The RNG stream a client replica uses for `(epoch, shard)`. Deterministic
/// per `(seed, epoch, shard)` — a reassigned subtask reproduces the same
/// result, like re-running the same workunit payload.
pub fn client_rng(seed: u64, epoch: usize, shard: usize) -> StdRng {
    StdRng::seed_from_u64(
        seed.wrapping_mul(0x100_0193)
            .wrapping_add((epoch * 1_000_003 + shard) as u64),
    )
}

/// Trains one client replica: start from `snapshot`, run
/// `cfg.local_epochs` over the shard's `data`, return the replica's
/// parameters (the payload the client uploads).
pub fn train_client_replica(
    cfg: &JobConfig,
    snapshot: &[f32],
    data: &Dataset,
    epoch: usize,
    shard: usize,
) -> Vec<f32> {
    let mut model = cfg.model.build(cfg.seed);
    model.set_params_flat(snapshot);
    let mut opt = cfg.optimizer.build(snapshot.len());
    let mut rng = client_rng(cfg.seed, epoch, shard);
    train_minibatch(
        &mut model,
        &mut opt,
        &data.images,
        &data.labels,
        cfg.batch_size,
        cfg.local_epochs,
        5.0,
        &mut rng,
    );
    model.params_flat()
}

/// [`train_client_replica`] through the zero-allocation workspace path.
/// Bit-identical to the plain variant for the same `(seed, epoch, shard)`
/// (see [`vc_optim::train_minibatch_ws`]); a long-lived worker passes the
/// same `tws` to every subtask so steady-state steps reuse all buffers.
/// `timer`, when given, receives one observation per optimizer step.
pub fn train_client_replica_ws(
    cfg: &JobConfig,
    snapshot: &[f32],
    data: &Dataset,
    epoch: usize,
    shard: usize,
    tws: &mut TrainWorkspace,
    timer: Option<&StepTimer<'_>>,
) -> Vec<f32> {
    let mut model = cfg.model.build(cfg.seed);
    model.set_params_flat(snapshot);
    let mut opt = cfg.optimizer.build(snapshot.len());
    let mut rng = client_rng(cfg.seed, epoch, shard);
    train_minibatch_ws(
        &mut model,
        &mut opt,
        &data.images,
        &data.labels,
        cfg.batch_size,
        cfg.local_epochs,
        5.0,
        &mut rng,
        tws,
        timer,
    );
    model.params_flat()
}

/// Client-side result sanity check: a diverged replica (NaN/Inf anywhere in
/// the parameter vector) uploads anyway and the server-side validator
/// rejects it — this predicate is that validator's criterion.
pub fn result_is_valid(params: &[f32]) -> bool {
    params.iter().all(|v| v.is_finite())
}

/// Runs the configured warm-start epochs (§II-B): serial synchronous passes
/// over all shards starting from `init`, returning the warmed parameters.
/// Returns `None` when no warm start is configured.
pub fn warm_start_params(
    cfg: &JobConfig,
    shards: &vc_data::ShardSet,
    init: &[f32],
) -> Option<Vec<f32>> {
    if cfg.warm_start_epochs == 0 {
        return None;
    }
    let mut model = cfg.model.build(cfg.seed);
    model.set_params_flat(init);
    let mut opt = cfg.optimizer.build(init.len());
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xDA7A));
    // The serial phase sees the full training set, shard by shard.
    for _ in 0..cfg.warm_start_epochs {
        for shard in 0..cfg.shards {
            let d = &shards.shard(shard).data;
            train_minibatch(
                &mut model,
                &mut opt,
                &d.images,
                &d.labels,
                cfg.batch_size,
                1,
                5.0,
                &mut rng,
            );
        }
    }
    Some(model.params_flat())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_data::ShardSet;

    #[test]
    fn replica_training_is_deterministic() {
        let cfg = JobConfig::test_small(11);
        let (train, _, _) = cfg.data.generate();
        let shards = ShardSet::split(&train, cfg.shards);
        let init = cfg.model.build(cfg.seed).params_flat();
        let a = train_client_replica(&cfg, &init, &shards.shard(3).data, 2, 3);
        let b = train_client_replica(&cfg, &init, &shards.shard(3).data, 2, 3);
        assert_eq!(a, b, "same (seed, epoch, shard) must reproduce exactly");
        // A different shard draws a different RNG stream.
        let c = train_client_replica(&cfg, &init, &shards.shard(3).data, 2, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn ws_replica_is_bit_identical_to_plain() {
        let cfg = JobConfig::test_small(14);
        let (train, _, _) = cfg.data.generate();
        let shards = ShardSet::split(&train, cfg.shards);
        let init = cfg.model.build(cfg.seed).params_flat();
        let plain = train_client_replica(&cfg, &init, &shards.shard(1).data, 3, 1);
        let mut tws = vc_optim::TrainWorkspace::new();
        let ws1 = train_client_replica_ws(&cfg, &init, &shards.shard(1).data, 3, 1, &mut tws, None);
        assert_eq!(plain, ws1, "workspace path must reproduce the plain path");
        // Reusing the same workspace across subtasks stays correct.
        let ws2 = train_client_replica_ws(&cfg, &init, &shards.shard(1).data, 3, 1, &mut tws, None);
        assert_eq!(plain, ws2);
    }

    #[test]
    fn training_moves_parameters() {
        let cfg = JobConfig::test_small(12);
        let (train, _, _) = cfg.data.generate();
        let shards = ShardSet::split(&train, cfg.shards);
        let init = cfg.model.build(cfg.seed).params_flat();
        let out = train_client_replica(&cfg, &init, &shards.shard(0).data, 1, 0);
        assert_eq!(out.len(), init.len());
        assert!(out != init, "SGD must move the replica off the snapshot");
        assert!(result_is_valid(&out));
    }

    #[test]
    fn validity_check_catches_divergence() {
        assert!(result_is_valid(&[0.0, -1.5, 3.0]));
        assert!(!result_is_valid(&[0.0, f32::NAN]));
        assert!(!result_is_valid(&[f32::INFINITY]));
    }

    #[test]
    fn warm_start_respects_config() {
        let mut cfg = JobConfig::test_small(13);
        let (train, _, _) = cfg.data.generate();
        let shards = ShardSet::split(&train, cfg.shards);
        let init = cfg.model.build(cfg.seed).params_flat();
        assert!(warm_start_params(&cfg, &shards, &init).is_none());
        cfg.warm_start_epochs = 1;
        let warmed = warm_start_params(&cfg, &shards, &init).unwrap();
        assert_eq!(warmed.len(), init.len());
        assert!(warmed != init);
    }
}
