//! The VC-ASGD parameter server (BOINC assimilator).

use crate::alpha::{blend_eq1, AlphaSchedule};
use std::sync::Arc;
use vc_kvstore::{Consistency, LatencyModel, VersionedStore};
use vc_tensor::codec::{decode_f32s, decode_f32s_into, encode_f32s};

/// Key under which the shared server parameter blob lives in the store.
pub const PARAMS_KEY: &str = "model/params";

/// A parameter server applying Eq. (1) against the shared store.
///
/// Several instances (the paper's `Pn`) may share one [`VersionedStore`].
/// In [`Consistency::Strong`] mode each assimilation is one serialized
/// transaction; in [`Consistency::Eventual`] mode the read happens when
/// assimilation *starts* and the last-write-wins put when it *ends*, so
/// overlapping assimilations can lose updates — exactly the §III-D /
/// §IV-D trade-off.
pub struct VcAsgdAssimilator {
    store: Arc<VersionedStore>,
    mode: Consistency,
    schedule: AlphaSchedule,
    latency: LatencyModel,
}

impl VcAsgdAssimilator {
    /// Builds an assimilator over a shared store.
    pub fn new(store: Arc<VersionedStore>, mode: Consistency, schedule: AlphaSchedule) -> Self {
        VcAsgdAssimilator {
            store,
            mode,
            schedule,
            latency: LatencyModel::for_mode(mode),
        }
    }

    /// The consistency mode in use.
    pub fn mode(&self) -> Consistency {
        self.mode
    }

    /// The configured α schedule.
    pub fn schedule(&self) -> AlphaSchedule {
        self.schedule
    }

    /// Seeds the store with the initial parameter vector (version 1).
    pub fn seed_params(&self, params: &[f32]) {
        self.store.put(PARAMS_KEY, encode_f32s(params));
    }

    /// Reads the current server parameters (and version).
    pub fn read_params(&self) -> (Vec<f32>, u64) {
        let (blob, version) = self.store.get(PARAMS_KEY);
        let params = decode_f32s(&blob).expect("store holds a valid parameter blob");
        (params, version)
    }

    /// Reads the current server parameters into a caller-owned buffer. The
    /// store's `get` already hands back a shared view of the blob (no
    /// copy); with a warm `out` the decode allocates nothing either, so
    /// repeated reads on the hot fetch path are allocation-free.
    pub fn read_params_into(&self, out: &mut Vec<f32>) -> u64 {
        let (blob, version) = self.store.get(PARAMS_KEY);
        decode_f32s_into(&blob, out).expect("store holds a valid parameter blob");
        version
    }

    /// Eventual-mode assimilation, split to mirror the wire protocol:
    /// [`Self::begin_eventual`] at assimilation start returns the stale
    /// snapshot; [`Self::commit_eventual`] at assimilation end blends the
    /// client copy into *that snapshot* and writes it back last-write-wins.
    /// Returns the number of concurrent updates clobbered.
    pub fn begin_eventual(&self) -> (Vec<f32>, u64) {
        self.read_params()
    }

    /// Completes an eventual-mode assimilation started by
    /// [`Self::begin_eventual`].
    pub fn commit_eventual(
        &self,
        mut snapshot: Vec<f32>,
        read_version: u64,
        client: &[f32],
        epoch: usize,
    ) -> (Vec<f32>, u64) {
        let alpha = self.schedule.alpha(epoch);
        blend_eq1(&mut snapshot, client, alpha);
        let out = self
            .store
            .put_versioned(PARAMS_KEY, read_version, encode_f32s(&snapshot));
        (snapshot, out.clobbered)
    }

    /// Strong-mode assimilation: one serialized read-blend-write
    /// transaction; always sees the latest server copy and never loses
    /// updates. Returns the post-update parameters.
    pub fn assimilate_strong(&self, client: &[f32], epoch: usize) -> Vec<f32> {
        let alpha = self.schedule.alpha(epoch);
        let (_, updated) = self.store.transact(PARAMS_KEY, |blob, _v| {
            let mut params = decode_f32s(blob).expect("store holds a valid parameter blob");
            blend_eq1(&mut params, client, alpha);
            (encode_f32s(&params), params)
        });
        updated
    }

    /// Simulated duration of one update transaction for a parameter vector
    /// of `n` values (§IV-D latency model).
    pub fn update_latency_s(&self, n: usize) -> f64 {
        self.latency.update_s(vc_tensor::codec::encoded_len(n))
    }

    /// Lost updates recorded so far by the shared store.
    pub fn lost_updates(&self) -> u64 {
        self.store.metrics().snapshot().lost_updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::eq2_closed_form;

    fn assim(mode: Consistency, alpha: f32) -> VcAsgdAssimilator {
        VcAsgdAssimilator::new(
            Arc::new(VersionedStore::new()),
            mode,
            AlphaSchedule::Const(alpha),
        )
    }

    #[test]
    fn seed_and_read_roundtrip() {
        let a = assim(Consistency::Strong, 0.9);
        a.seed_params(&[1.0, 2.0, 3.0]);
        let (p, v) = a.read_params();
        assert_eq!(p, vec![1.0, 2.0, 3.0]);
        assert_eq!(v, 1);
    }

    #[test]
    fn strong_sequence_matches_eq2() {
        let a = assim(Consistency::Strong, 0.8);
        let w0 = vec![0.0f32, 1.0];
        a.seed_params(&w0);
        let clients: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32, -(i as f32)]).collect();
        let mut last = Vec::new();
        for wc in &clients {
            last = a.assimilate_strong(wc, 1);
        }
        let expect = eq2_closed_form(&w0, &clients, 0.8);
        for (l, e) in last.iter().zip(&expect) {
            assert!((l - e).abs() < 1e-5);
        }
        assert_eq!(a.lost_updates(), 0);
    }

    #[test]
    fn eventual_overlap_loses_the_first_update() {
        let a = assim(Consistency::Eventual, 0.5);
        a.seed_params(&[0.0]);
        // Two parameter servers start assimilating concurrently: both read
        // the seed snapshot.
        let (s1, v1) = a.begin_eventual();
        let (s2, v2) = a.begin_eventual();
        assert_eq!(v1, v2);
        // PS1 commits client value 2.0: server becomes 1.0.
        let (_, c1) = a.commit_eventual(s1, v1, &[2.0], 1);
        assert_eq!(c1, 0);
        // PS2 commits client value 4.0 against the stale snapshot: PS1's
        // contribution is overwritten.
        let (_, c2) = a.commit_eventual(s2, v2, &[4.0], 1);
        assert_eq!(c2, 1);
        let (p, _) = a.read_params();
        assert_eq!(p, vec![2.0], "0.5*0 + 0.5*4, PS1's update lost");
        assert_eq!(a.lost_updates(), 1);
    }

    #[test]
    fn eventual_sequential_is_lossless() {
        let a = assim(Consistency::Eventual, 0.9);
        a.seed_params(&[1.0]);
        for i in 0..10 {
            let (s, v) = a.begin_eventual();
            let (_, clobbered) = a.commit_eventual(s, v, &[i as f32], 1);
            assert_eq!(clobbered, 0);
        }
        assert_eq!(a.lost_updates(), 0);
    }

    #[test]
    fn epoch_drives_alpha_schedule() {
        let a = VcAsgdAssimilator::new(
            Arc::new(VersionedStore::new()),
            Consistency::Strong,
            AlphaSchedule::VarEOverE1,
        );
        a.seed_params(&[0.0]);
        // Epoch 1: alpha 0.5 — server moves halfway to the client.
        let p = a.assimilate_strong(&[1.0], 1);
        assert!((p[0] - 0.5).abs() < 1e-6);
        // Epoch 99: alpha 0.99 — tiny step.
        let a2 = VcAsgdAssimilator::new(
            Arc::new(VersionedStore::new()),
            Consistency::Strong,
            AlphaSchedule::VarEOverE1,
        );
        a2.seed_params(&[0.0]);
        let p2 = a2.assimilate_strong(&[1.0], 99);
        assert!(p2[0] < 0.02);
    }

    #[test]
    fn latency_tracks_mode() {
        let strong = assim(Consistency::Strong, 0.9);
        let eventual = assim(Consistency::Eventual, 0.9);
        let n = 4_972_746; // the paper's parameter count
        let ratio = strong.update_latency_s(n) / eventual.update_latency_s(n);
        assert!(
            (ratio - 1.29 / 0.87).abs() < 0.02,
            "strong/eventual ratio {ratio}"
        );
    }
}
