//! α schedules for the VC-ASGD blend (§III-C, §IV-C).

use serde::{Deserialize, Serialize};

/// How the VC-ASGD hyperparameter α evolves with the epoch number `e`
/// (1-based, as in the paper).
///
/// Eq. (1) weighs the server copy by α and the client result by `1 − α`:
/// small α learns aggressively from clients (fast early, noisy late);
/// large α barely moves (the paper's α = 0.999 ≈ EASGD case). The paper's
/// best result varies α like a learning-rate schedule.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AlphaSchedule {
    /// Fixed α for the whole run.
    Const(f32),
    /// The paper's "Var" experiment: `α_e = e/(e+1)`, rising from 0.5
    /// (e = 1) toward 0.98 (e = 40).
    VarEOverE1,
    /// Linear ramp from `from` to `to` across `over` epochs, clamped after.
    Linear {
        /// α at epoch 1.
        from: f32,
        /// α at epoch `over` and beyond.
        to: f32,
        /// Ramp length in epochs.
        over: usize,
    },
}

impl AlphaSchedule {
    /// α for epoch `e` (1-based). Panics on `e == 0`.
    pub fn alpha(&self, e: usize) -> f32 {
        assert!(e >= 1, "epochs are 1-based in the paper's notation");
        let a = match *self {
            AlphaSchedule::Const(a) => a,
            AlphaSchedule::VarEOverE1 => e as f32 / (e as f32 + 1.0),
            AlphaSchedule::Linear { from, to, over } => {
                if over <= 1 || e >= over {
                    to
                } else {
                    from + (to - from) * (e - 1) as f32 / (over - 1) as f32
                }
            }
        };
        assert!(
            (0.0..=1.0).contains(&a),
            "alpha schedule produced {a} outside [0, 1]"
        );
        a
    }

    /// Human-readable label used by the experiment harness (matches the
    /// curve names in Figure 4).
    pub fn label(&self) -> String {
        match *self {
            AlphaSchedule::Const(a) => format!("alpha={a}"),
            AlphaSchedule::VarEOverE1 => "Var".to_string(),
            AlphaSchedule::Linear { from, to, .. } => format!("linear {from}->{to}"),
        }
    }
}

/// Applies Eq. (1) once: `w_s ← α·w_s + (1 − α)·w_c`, in place.
pub fn blend_eq1(w_s: &mut [f32], w_c: &[f32], alpha: f32) {
    assert_eq!(w_s.len(), w_c.len(), "parameter length mismatch");
    let beta = 1.0 - alpha;
    for (s, &c) in w_s.iter_mut().zip(w_c) {
        *s = alpha * *s + beta * c;
    }
}

/// Closed form of Eq. (2): the server parameters after `n_t` sequential
/// Eq. (1) assimilations of client copies `w_cs` (in arrival order) starting
/// from `w_start`. Used by tests to pin the recursive implementation to the
/// paper's algebra.
pub fn eq2_closed_form(w_start: &[f32], w_cs: &[Vec<f32>], alpha: f32) -> Vec<f32> {
    let n_t = w_cs.len() as i32;
    let mut out: Vec<f32> = w_start.iter().map(|&w| alpha.powi(n_t) * w).collect();
    // Client j (1-based arrival order) contributes (1-α)·α^(n_t - j).
    for (j, wc) in w_cs.iter().enumerate() {
        let coeff = (1.0 - alpha) * alpha.powi(n_t - 1 - j as i32);
        for (o, &c) in out.iter_mut().zip(wc) {
            *o += coeff * c;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_schedule_is_flat() {
        let s = AlphaSchedule::Const(0.95);
        assert_eq!(s.alpha(1), 0.95);
        assert_eq!(s.alpha(40), 0.95);
    }

    #[test]
    fn var_matches_paper_range() {
        // §IV-C: "α increases from 0.5 to 0.98 as the epoch number e
        // increases from 1 to 40".
        let s = AlphaSchedule::VarEOverE1;
        assert!((s.alpha(1) - 0.5).abs() < 1e-6);
        let a40 = s.alpha(40);
        assert!((a40 - 40.0 / 41.0).abs() < 1e-6);
        assert!(a40 > 0.975 && a40 < 0.98);
        // Monotone increasing.
        for e in 1..60 {
            assert!(s.alpha(e + 1) > s.alpha(e));
        }
    }

    #[test]
    fn linear_ramp_endpoints() {
        let s = AlphaSchedule::Linear {
            from: 0.6,
            to: 0.9,
            over: 4,
        };
        assert!((s.alpha(1) - 0.6).abs() < 1e-6);
        assert!((s.alpha(2) - 0.7).abs() < 1e-6);
        assert!((s.alpha(4) - 0.9).abs() < 1e-6);
        assert!((s.alpha(100) - 0.9).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn epoch_zero_rejected() {
        AlphaSchedule::Const(0.5).alpha(0);
    }

    #[test]
    fn blend_matches_hand_computation() {
        let mut ws = vec![1.0, 0.0, -1.0];
        blend_eq1(&mut ws, &[0.0, 1.0, 1.0], 0.9);
        assert!((ws[0] - 0.9).abs() < 1e-7);
        assert!((ws[1] - 0.1).abs() < 1e-7);
        assert!((ws[2] + 0.8).abs() < 1e-7);
    }

    #[test]
    fn repeated_eq1_equals_eq2() {
        // The paper's Eq. (2) must be what the recursive update computes.
        let w0 = vec![0.5f32, -0.25, 2.0];
        let clients: Vec<Vec<f32>> = (0..7)
            .map(|i| vec![i as f32 * 0.1, 1.0 - i as f32 * 0.05, -0.3 * i as f32])
            .collect();
        let alpha = 0.95;
        let mut recursive = w0.clone();
        for wc in &clients {
            blend_eq1(&mut recursive, wc, alpha);
        }
        let closed = eq2_closed_form(&w0, &clients, alpha);
        for (r, c) in recursive.iter().zip(&closed) {
            assert!((r - c).abs() < 1e-5, "{r} vs {c}");
        }
    }

    #[test]
    fn alpha_extremes_behave() {
        // α = 1: server never moves. α = 0: server becomes the client copy.
        let mut frozen = vec![1.0f32, 2.0];
        blend_eq1(&mut frozen, &[9.0, 9.0], 1.0);
        assert_eq!(frozen, vec![1.0, 2.0]);
        let mut eager = vec![1.0f32, 2.0];
        blend_eq1(&mut eager, &[9.0, 8.0], 0.0);
        assert_eq!(eager, vec![9.0, 8.0]);
    }

    #[test]
    fn labels_match_figure4_legend() {
        assert_eq!(AlphaSchedule::Const(0.95).label(), "alpha=0.95");
        assert_eq!(AlphaSchedule::VarEOverE1.label(), "Var");
    }
}
