//! Training-job configuration.

use crate::alpha::AlphaSchedule;
use serde::{Deserialize, Serialize};
use vc_data::SyntheticSpec;
use vc_kvstore::Consistency;
use vc_middleware::MiddlewareConfig;
use vc_nn::ModelSpec;
use vc_optim::OptimizerSpec;
use vc_simnet::{table1, ComputeModel, InstanceSpec, NetworkModel, PreemptionModel};

/// Which instances make up the client fleet.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FleetKind {
    /// `cn` copies of the reference 8-vCPU/2.2-GHz client (the P5C5T2
    /// fleet shape).
    Uniform,
    /// Cycle through the four Table I client types (§III-E heterogeneity).
    Mixed,
    /// An explicit instance list (length must equal `cn`).
    Custom(Vec<InstanceSpec>),
    /// A synthesized volunteer population with a heavy-tailed speed
    /// distribution ([`vc_simnet::generated_fleet`]), deterministic in
    /// `(cn, seed)` — the 10k–100k-host fleets of the scale sweeps.
    Generated {
        /// Population seed (independent of the job seed, so the same
        /// fleet can be reused across schedules).
        seed: u64,
    },
}

impl FleetKind {
    /// Materializes the fleet for `cn` clients.
    pub fn build(&self, cn: usize) -> Vec<InstanceSpec> {
        match self {
            FleetKind::Uniform => table1::uniform_fleet(cn),
            FleetKind::Mixed => table1::mixed_fleet(cn),
            FleetKind::Custom(list) => {
                assert_eq!(list.len(), cn, "custom fleet size must equal cn");
                list.clone()
            }
            FleetKind::Generated { seed } => vc_simnet::generated_fleet(cn, *seed),
        }
    }
}

/// Everything one distributed training run needs. The defaults encode the
/// paper's experimental setup (§IV-A) at the reproduction scale documented
/// in DESIGN.md.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobConfig {
    /// Model architecture (the paper: ResNetV2; default here: the small
    /// CNN over the synthetic dataset's geometry).
    pub model: ModelSpec,
    /// Dataset generator parameters.
    pub data: SyntheticSpec,
    /// Number of data subsets = subtasks per epoch (paper: 50).
    pub shards: usize,
    /// Parameter-service shards: how many contiguous pieces the flat
    /// parameter vector is split into, each with its own store key, version
    /// counter and per-shard VC-ASGD merge (`vc-ps`). 1 reproduces the
    /// paper's single-value store exactly; the Eq. (1) blend is elementwise,
    /// so any shard count is bitwise-identical math under sequential
    /// merges — sharding changes contention and transfer, not results.
    pub ps_shards: usize,
    /// Parameter servers (`Pn`).
    pub pn: usize,
    /// Clients (`Cn`).
    pub cn: usize,
    /// Simultaneous subtasks per client (`Tn`).
    pub tn: usize,
    /// The VC-ASGD α schedule.
    pub alpha: AlphaSchedule,
    /// Maximum epochs to run.
    pub epochs: usize,
    /// Stop early when the epoch-mean validation accuracy reaches this.
    pub target_accuracy: Option<f32>,
    /// Parameter-store consistency (paper default: eventual/Redis).
    pub consistency: Consistency,
    /// Fleet composition.
    pub fleet: FleetKind,
    /// Instance-termination process (§IV-E).
    pub preemption: PreemptionModel,
    /// Client optimizer (paper: Adam, lr 0.001).
    pub optimizer: OptimizerSpec,
    /// Local passes a client makes over its shard per subtask.
    pub local_epochs: usize,
    /// Client mini-batch size.
    pub batch_size: usize,
    /// Samples of the validation split scored after each assimilation.
    pub val_eval_n: usize,
    /// Middleware policy (timeout `t_o`, sticky files, …).
    pub middleware: MiddlewareConfig,
    /// Fleet compute model.
    pub compute: ComputeModel,
    /// Network model.
    pub network: NetworkModel,
    /// Seconds a preempted host slot takes to be replaced by a fresh
    /// instance (the fleet keeps its size; §IV-E runs "a fleet").
    pub replacement_delay_s: f64,
    /// Skip real training and per-update evaluation: clients return the
    /// snapshot unchanged and accuracies read as zero. The simulated
    /// *timing* is identical, so time-shape experiments (Fig. 3, §IV-D,
    /// §IV-E) run in milliseconds.
    pub timing_only: bool,
    /// Also score the held-out test split at every epoch end (Fig. 6's
    /// right panel). Costs one extra evaluation per epoch.
    pub track_test_acc: bool,
    /// Dynamic parameter-server scaling (§III-D's proposed extension):
    /// when enabled, the driver grows the parameter-server pool (up to
    /// `pn_max`) while the assimilation queue backs up and shrinks it when
    /// idle; `pn` is the starting size.
    pub pn_autoscale: bool,
    /// Upper bound for autoscaling.
    pub pn_max: usize,
    /// Warm-start epochs (§II-B, Downpour's remedy for delayed gradients):
    /// serial synchronous passes over the full training set before
    /// distributed training begins, charged against the simulated clock.
    pub warm_start_epochs: usize,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
}

impl JobConfig {
    /// The paper's P3C3T4 shape at reproduction scale: synthetic CIFAR-like
    /// data, 50 shards, small CNN, Adam(0.001), eventual consistency.
    pub fn paper_default(seed: u64) -> Self {
        let data = SyntheticSpec::cifar_like(seed);
        let model = vc_nn::spec::small_cnn(&data.img, data.classes);
        JobConfig {
            model,
            data,
            shards: 50,
            ps_shards: 1,
            pn: 3,
            cn: 3,
            tn: 4,
            alpha: AlphaSchedule::Const(0.95),
            epochs: 40,
            target_accuracy: None,
            consistency: Consistency::Eventual,
            fleet: FleetKind::Uniform,
            preemption: PreemptionModel::None,
            optimizer: OptimizerSpec::paper_adam(),
            local_epochs: 2,
            batch_size: 32,
            val_eval_n: 256,
            middleware: MiddlewareConfig::default(),
            compute: ComputeModel::default(),
            network: NetworkModel::default(),
            replacement_delay_s: 120.0,
            timing_only: false,
            track_test_acc: false,
            pn_autoscale: false,
            pn_max: 8,
            warm_start_epochs: 0,
            seed,
        }
    }

    /// A drastically scaled-down configuration for unit/integration tests:
    /// tiny, easier data, few shards, few epochs, an aggressive α — runs in
    /// seconds and still shows learning.
    pub fn test_small(seed: u64) -> Self {
        let mut data = SyntheticSpec::cifar_like(seed);
        data.train_n = 400;
        data.val_n = 120;
        data.test_n = 120;
        data.noise = 1.0;
        data.label_noise = 0.0;
        let model = vc_nn::spec::mlp(&data.img, 32, data.classes);
        JobConfig {
            model,
            data,
            shards: 8,
            pn: 2,
            cn: 2,
            tn: 2,
            epochs: 3,
            val_eval_n: 120,
            local_epochs: 2,
            alpha: AlphaSchedule::Const(0.6),
            ..Self::paper_default(seed)
        }
    }

    /// Configures the paper's `PnCnTn` triple in one call.
    pub fn with_pct(mut self, pn: usize, cn: usize, tn: usize) -> Self {
        self.pn = pn;
        self.cn = cn;
        self.tn = tn;
        self
    }

    /// Validates cross-field invariants; the job constructor calls this.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 || self.pn == 0 || self.cn == 0 || self.tn == 0 {
            return Err("shards, pn, cn and tn must all be positive".into());
        }
        if self.ps_shards == 0 {
            return Err("ps_shards must be positive (1 = unsharded store)".into());
        }
        if self.epochs == 0 {
            return Err("need at least one epoch".into());
        }
        if self.pn_autoscale && self.pn_max < self.pn {
            return Err(format!(
                "pn_max {} below starting pn {}",
                self.pn_max, self.pn
            ));
        }
        if self.data.train_n < self.shards {
            return Err(format!(
                "cannot split {} samples into {} shards",
                self.data.train_n, self.shards
            ));
        }
        if self.val_eval_n == 0 || self.val_eval_n > self.data.val_n {
            return Err(format!(
                "val_eval_n {} outside 1..={}",
                self.val_eval_n, self.data.val_n
            ));
        }
        if let FleetKind::Custom(list) = &self.fleet {
            if list.len() != self.cn {
                return Err("custom fleet size must equal cn".into());
            }
        }
        self.middleware.validate()?;
        Ok(())
    }

    /// Experiment label in the paper's notation, e.g. `P3C3T4`.
    pub fn pct_label(&self) -> String {
        format!("P{}C{}T{}", self.pn, self.cn, self.tn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let c = JobConfig::paper_default(1);
        c.validate().unwrap();
        assert_eq!(c.shards, 50);
        assert_eq!(c.pct_label(), "P3C3T4");
        assert_eq!(c.consistency, Consistency::Eventual);
    }

    #[test]
    fn test_small_is_valid_and_small() {
        let c = JobConfig::test_small(2);
        c.validate().unwrap();
        assert!(c.data.train_n <= 500);
        assert!(c.epochs <= 5);
    }

    #[test]
    fn with_pct_relabels() {
        let c = JobConfig::paper_default(1).with_pct(5, 5, 2);
        assert_eq!(c.pct_label(), "P5C5T2");
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = JobConfig::test_small(1);
        c.shards = 0;
        assert!(c.validate().is_err());

        let mut c = JobConfig::test_small(1);
        c.data.train_n = 4;
        assert!(c.validate().is_err());

        let mut c = JobConfig::test_small(1);
        c.val_eval_n = 10_000;
        assert!(c.validate().is_err());

        let mut c = JobConfig::test_small(1);
        c.fleet = FleetKind::Custom(vec![]);
        assert!(c.validate().is_err());
    }

    #[test]
    fn fleet_kinds_build() {
        assert_eq!(FleetKind::Uniform.build(3).len(), 3);
        let mixed = FleetKind::Mixed.build(5);
        assert_eq!(mixed.len(), 5);
        assert_ne!(mixed[0].name, mixed[1].name);
        let custom = FleetKind::Custom(table1::uniform_fleet(2)).build(2);
        assert_eq!(custom.len(), 2);
    }

    #[test]
    fn config_serializes() {
        let c = JobConfig::test_small(3);
        let json = serde_json::to_string(&c).unwrap();
        let back: JobConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
