//! Property-based equivalence: the indexed [`TimerQueue`] against a naive
//! full-scan oracle.
//!
//! The oracle is the data structure the scheduler used to be built on: a
//! flat list of every armed assignment, scanned in full at every expiry
//! check. The rewrite replaced it with a binary heap plus lazy
//! invalidation; these properties drive both through arbitrary interleaved
//! histories of issue / complete / reissue / revive-orphan / cancel and
//! demand identical expiry sets *and orderings* at every scan instant —
//! same-instant deadline ties and incarnation-orphaned entries included.

use proptest::prelude::*;
use std::collections::HashMap;
use vc_middleware::{HostId, TimerEntry, TimerQueue, WuId};
use vc_simnet::SimTime;

/// One scripted operation against both implementations.
#[derive(Clone, Debug)]
enum Op {
    /// Arm a timer `deadline_in` ticks past the current virtual instant
    /// for workunit `wu` on host `host`.
    Issue { wu: u8, host: u8, deadline_in: u8 },
    /// Invalidate the `k`-th live entry (mod live count): the assignment
    /// completed, was cancelled, or was reissued elsewhere. No-op when
    /// nothing is live.
    Invalidate { k: u8 },
    /// Invalidate every live entry of host `h` — a revive orphaning the
    /// incarnation's assignments wholesale.
    InvalidateHost { h: u8 },
    /// Advance the clock by `dt` ticks and scan for expiries.
    Scan { dt: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Issues twice, scans twice: histories stay dense in both.
        (0u8..16, 0u8..8, 0u8..8).prop_map(|(wu, host, deadline_in)| Op::Issue {
            wu,
            host,
            deadline_in
        }),
        (0u8..16, 0u8..8, 0u8..3).prop_map(|(wu, host, deadline_in)| Op::Issue {
            wu,
            host,
            deadline_in
        }),
        (0u8..255).prop_map(|k| Op::Invalidate { k }),
        (0u8..8).prop_map(|h| Op::InvalidateHost { h }),
        (0u8..6).prop_map(|dt| Op::Scan { dt }),
        (0u8..2).prop_map(|dt| Op::Scan { dt }),
    ]
}

/// The naive oracle: every armed entry in a flat vec, liveness tracked
/// eagerly (the old code dropped the record the moment an assignment
/// ended), full scan per expiry check. Due entries are reported in
/// `(deadline, seq)` order — the order the historical transitioner
/// processed them in.
#[derive(Default)]
struct Oracle {
    armed: Vec<TimerEntry>,
}

impl Oracle {
    fn scan(&mut self, now: SimTime) -> Vec<TimerEntry> {
        let mut due: Vec<TimerEntry> = self
            .armed
            .iter()
            .copied()
            .filter(|e| e.deadline <= now)
            .collect();
        self.armed.retain(|e| e.deadline > now);
        due.sort_by_key(|e| (e.deadline, e.seq));
        due
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.armed.iter().map(|e| e.deadline).min()
    }
}

fn run_history(ops: Vec<Op>) {
    let mut queue = TimerQueue::new();
    let mut oracle = Oracle::default();
    // seq → live flag, shared liveness ground truth for both sides.
    let mut live: HashMap<u64, bool> = HashMap::new();
    let mut next_seq: u64 = 0;
    let mut now = 0.0f64;

    for op in ops {
        match op {
            Op::Issue {
                wu,
                host,
                deadline_in,
            } => {
                let entry = TimerEntry {
                    deadline: SimTime::from_secs(now + deadline_in as f64),
                    seq: next_seq,
                    wu: WuId(wu as u64),
                    host: HostId(host as u32),
                };
                next_seq += 1;
                live.insert(entry.seq, true);
                queue.push(entry);
                oracle.armed.push(entry);
            }
            Op::Invalidate { k } => {
                let mut live_seqs: Vec<u64> =
                    live.iter().filter(|(_, &l)| l).map(|(&s, _)| s).collect();
                live_seqs.sort_unstable();
                if !live_seqs.is_empty() {
                    let victim = live_seqs[k as usize % live_seqs.len()];
                    live.insert(victim, false);
                    // Eager on the oracle, lazy on the queue — the
                    // equivalence under test.
                    oracle.armed.retain(|e| e.seq != victim);
                }
            }
            Op::InvalidateHost { h } => {
                let orphans: Vec<u64> = oracle
                    .armed
                    .iter()
                    .filter(|e| e.host == HostId(h as u32))
                    .map(|e| e.seq)
                    .collect();
                for s in orphans {
                    live.insert(s, false);
                }
                oracle.armed.retain(|e| e.host != HostId(h as u32));
            }
            Op::Scan { dt } => {
                now += dt as f64;
                let t = SimTime::from_secs(now);
                let expect = oracle.scan(t);
                let got = queue.pop_due(t, |e| live.get(&e.seq).copied().unwrap_or(false));
                prop_assert_eq!(
                    &got,
                    &expect,
                    "scan at t={} diverged from the full-scan oracle",
                    now
                );
                // An expired entry is consumed on both sides.
                for e in &got {
                    live.insert(e.seq, false);
                }
                // Between scans the earliest live deadline must agree too.
                let q_next = queue.next_deadline(|e| live.get(&e.seq).copied().unwrap_or(false));
                prop_assert_eq!(q_next, oracle.next_deadline());
            }
        }
    }
    // Final drain far in the future: nothing may be left behind or
    // fabricated.
    let end = SimTime::from_secs(now + 1000.0);
    let expect = oracle.scan(end);
    let got = queue.pop_due(end, |e| live.get(&e.seq).copied().unwrap_or(false));
    prop_assert_eq!(got, expect, "final drain diverged");
}

proptest! {
    /// Arbitrary interleavings of issue/invalidate/orphan/scan: the heap
    /// and the full-scan oracle must expire identical entries in identical
    /// order at every instant.
    #[test]
    fn timer_queue_matches_full_scan_oracle(
        ops in prop::collection::vec(op_strategy(), 0..80),
    ) {
        run_history(ops);
    }

    /// Same-instant stress: every deadline lands on one of two ticks, so
    /// nearly all expiries are ties and the (deadline, seq) order carries
    /// the whole burden.
    #[test]
    fn tie_heavy_histories_stay_ordered(
        raw in prop::collection::vec((0u8..4, 0u8..4, 0u8..2), 0..60),
    ) {
        let ops: Vec<Op> = raw
            .into_iter()
            .flat_map(|(wu, host, tick)| {
                vec![
                    Op::Issue { wu, host, deadline_in: tick + 1 },
                    Op::Scan { dt: tick },
                ]
            })
            .collect();
        run_history(ops);
    }
}
