//! Counting tests for the adaptive-deadline EWMA: each blown deadline
//! feeds a host's turnaround estimate **exactly once per incarnation**.
//!
//! The heap-driven transitioner holds one timer entry per issue and
//! invalidates lazily, so the hazards are double-feeding (a due entry
//! surviving into a second scan, or a stale entry of a completed
//! assignment firing late) and mis-blaming (an orphaned predecessor's
//! expiry charged to the replacement incarnation). These tests pin all
//! three boundaries through the public server API.

use vc_middleware::server::{Assignment, BoincServer, MiddlewareConfig};
use vc_middleware::{HostId, ReportStatus};
use vc_simnet::{table1, SimTime};

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

fn server(hosts: usize) -> BoincServer {
    let fleet = (0..hosts).map(|_| (table1::client_8v_2_2(), 2)).collect();
    BoincServer::new(MiddlewareConfig::default(), fleet)
}

/// The value one blown default-config deadline feeds the (empty) EWMA:
/// deadline / grace × growth = 300 / 3 × 1.5.
const FIRST_TIMEOUT_FEED: f64 = 150.0;

#[test]
fn blown_deadline_feeds_ewma_exactly_once() {
    let mut s = server(1);
    s.add_workunit(1, 0, 1, t(0.0));
    let a = s.request_work(HostId(0), t(0.0)).unwrap();
    assert_eq!(a.deadline, t(300.0));
    assert_eq!(s.hosts()[0].turnaround_ewma_s, None);

    // The deadline blows: exactly one feed, one timeout, one blame.
    assert_eq!(s.scan_timeouts(t(300.0)), vec![a.wu.id]);
    assert_eq!(s.hosts()[0].turnaround_ewma_s, Some(FIRST_TIMEOUT_FEED));
    assert_eq!(s.hosts()[0].timeouts, 1);
    assert_eq!(s.metrics().timeouts, 1);

    // Re-scanning the same instant and any later instant finds the entry
    // consumed: no second feed, no second timeout.
    s.scan_timeouts(t(300.0));
    s.scan_timeouts(t(10_000.0));
    assert_eq!(s.hosts()[0].turnaround_ewma_s, Some(FIRST_TIMEOUT_FEED));
    assert_eq!(s.hosts()[0].timeouts, 1);
    assert_eq!(s.metrics().timeouts, 1);
}

#[test]
fn completed_assignment_leaves_no_timer_residue() {
    let mut s = server(1);
    s.add_workunit(1, 0, 1, t(0.0));
    let a = s.request_work(HostId(0), t(0.0)).unwrap();
    assert_eq!(
        s.report_success(a.wu.id, HostId(0), t(10.0)),
        ReportStatus::Accepted
    );
    // The 10 s turnaround seeded the EWMA at report time; the assignment's
    // now-stale timer entry must not fire at its old deadline and feed the
    // blown-deadline growth on top.
    assert_eq!(s.hosts()[0].turnaround_ewma_s, Some(10.0));
    assert!(s.scan_timeouts(t(300.0)).is_empty());
    assert_eq!(s.hosts()[0].turnaround_ewma_s, Some(10.0));
    assert_eq!((s.hosts()[0].timeouts, s.metrics().timeouts), (0, 0));
}

#[test]
fn reissued_workunit_feeds_once_per_expiry_not_per_entry() {
    let mut s = BoincServer::new(
        MiddlewareConfig {
            backoff_base_s: 0.0,
            ..Default::default()
        },
        vec![(table1::client_8v_2_2(), 2)],
    );
    s.add_workunit(1, 0, 1, t(0.0));
    let a = s.request_work(HostId(0), t(0.0)).unwrap();
    s.scan_timeouts(t(300.0));
    let after_first = s.hosts()[0].turnaround_ewma_s.unwrap();
    // Same host re-takes the same workunit: a *new* timer entry with a new
    // seq. The expired first entry is gone; only the second expiry feeds.
    let b: Assignment = s.request_work(HostId(0), t(300.0)).unwrap();
    assert_eq!(b.wu.id, a.wu.id);
    assert!(b.attempt > a.attempt);
    s.scan_timeouts(t(b.deadline.as_secs()));
    assert_eq!(s.hosts()[0].timeouts, 2, "two expiries, two blames");
    assert_eq!(s.metrics().timeouts, 2);
    let after_second = s.hosts()[0].turnaround_ewma_s.unwrap();
    assert_ne!(after_first, after_second, "second expiry fed the EWMA");
    // And nothing further without a third expiry.
    s.scan_timeouts(t(10_000.0));
    assert_eq!(s.hosts()[0].timeouts, 2);
    assert_eq!(s.hosts()[0].turnaround_ewma_s, Some(after_second));
}

#[test]
fn orphaned_expiry_feeds_zero_into_the_new_incarnation() {
    let mut s = server(1);
    s.add_workunit(1, 0, 1, t(0.0));
    let a = s.request_work(HostId(0), t(0.0)).unwrap();
    s.preempt_host(HostId(0));
    s.revive_host(HostId(0), t(5.0));
    // The predecessor's deadline blows: the run counts the lost work, but
    // the replacement incarnation's EWMA, timeout tally and backoff all
    // stay untouched — zero feeds per *this* incarnation.
    assert_eq!(s.scan_timeouts(t(300.0)), vec![a.wu.id]);
    assert_eq!(s.metrics().timeouts, 1);
    assert_eq!(s.hosts()[0].turnaround_ewma_s, None);
    assert_eq!(s.hosts()[0].timeouts, 0);
    assert!(!s.hosts()[0].in_backoff(t(300.0)));
}

#[test]
fn each_incarnation_is_blamed_at_most_once_per_blown_deadline() {
    let mut s = server(1);
    s.add_epoch(1, 2, 1, t(0.0));
    // Incarnation 0 takes one workunit and blows it: one feed.
    s.request_work(HostId(0), t(0.0)).unwrap();
    s.scan_timeouts(t(300.0));
    assert_eq!(s.hosts()[0].timeouts, 1);
    assert_eq!(s.hosts()[0].turnaround_ewma_s, Some(FIRST_TIMEOUT_FEED));

    // Incarnation 0 takes the next workunit, dies holding it; incarnation
    // 1 registers. The orphan's expiry adds a run-level timeout but no
    // second blame — still exactly one feed per incarnation that earned it.
    let backoff_until = s.hosts()[0].backoff_until;
    s.request_work(HostId(0), t(backoff_until.unwrap().as_secs()))
        .unwrap();
    s.preempt_host(HostId(0));
    s.revive_host(HostId(0), t(400.0));
    s.scan_timeouts(t(10_000.0));
    assert_eq!(s.metrics().timeouts, 2);
    assert_eq!(s.hosts()[0].timeouts, 1, "orphan expiry not blamed");
    assert_eq!(
        s.hosts()[0].turnaround_ewma_s,
        Some(FIRST_TIMEOUT_FEED),
        "EWMA fed once, by the incarnation that blew the deadline"
    );
}
