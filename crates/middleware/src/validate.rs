//! Result validation (BOINC's validator service).

use serde::{Deserialize, Serialize};

/// Verdict on an uploaded result.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationVerdict {
    /// The result may be assimilated.
    Valid,
    /// The result must be discarded and the workunit re-issued.
    Invalid {
        /// Human-readable cause for logs and metrics.
        reason: String,
    },
}

impl ValidationVerdict {
    /// Convenience predicate.
    pub fn is_valid(&self) -> bool {
        matches!(self, ValidationVerdict::Valid)
    }
}

/// A validator inspects a result blob before it reaches the assimilator.
pub trait Validator: Send + Sync {
    /// Judges one uploaded result payload.
    fn validate(&self, payload: &[u8]) -> ValidationVerdict;
}

/// Validates that a payload parses as a `vc-tensor` parameter blob of the
/// expected length with only finite values — the checks a DL validator must
/// make before trusting a volunteer's parameter upload (a diverged or
/// corrupted client otherwise poisons the server copy).
pub struct FiniteBlobValidator {
    /// Expected parameter count; `None` skips the length check.
    pub expected_len: Option<usize>,
}

impl FiniteBlobValidator {
    /// Header length of the vc-tensor blob framing.
    const HEADER: usize = 12;

    /// A validator expecting `len` parameters.
    pub fn with_len(len: usize) -> Self {
        FiniteBlobValidator {
            expected_len: Some(len),
        }
    }
}

impl Validator for FiniteBlobValidator {
    fn validate(&self, payload: &[u8]) -> ValidationVerdict {
        if payload.len() < Self::HEADER {
            return ValidationVerdict::Invalid {
                reason: format!("payload too short: {} bytes", payload.len()),
            };
        }
        // Frame check mirrors vc_tensor::codec without depending on it:
        // magic, little-endian u64 count, then f32 values.
        let magic = u32::from_le_bytes(payload[0..4].try_into().unwrap());
        if magic != 0x5643_5031 {
            return ValidationVerdict::Invalid {
                reason: format!("bad magic 0x{magic:08x}"),
            };
        }
        let n = u64::from_le_bytes(payload[4..12].try_into().unwrap()) as usize;
        if payload.len() < Self::HEADER + 4 * n {
            return ValidationVerdict::Invalid {
                reason: format!("truncated: header claims {n} values"),
            };
        }
        if let Some(expected) = self.expected_len {
            if n != expected {
                return ValidationVerdict::Invalid {
                    reason: format!("wrong parameter count {n}, expected {expected}"),
                };
            }
        }
        for (i, chunk) in payload[Self::HEADER..Self::HEADER + 4 * n]
            .chunks_exact(4)
            .enumerate()
        {
            let v = f32::from_le_bytes(chunk.try_into().unwrap());
            if !v.is_finite() {
                return ValidationVerdict::Invalid {
                    reason: format!("non-finite parameter at index {i}"),
                };
            }
        }
        ValidationVerdict::Valid
    }
}

/// Accepts everything — for control experiments measuring what validation
/// buys.
pub struct AcceptAllValidator;

impl Validator for AcceptAllValidator {
    fn validate(&self, _payload: &[u8]) -> ValidationVerdict {
        ValidationVerdict::Valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(values: &[f32]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&0x5643_5031u32.to_le_bytes());
        out.extend_from_slice(&(values.len() as u64).to_le_bytes());
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    #[test]
    fn accepts_well_formed_blob() {
        let v = FiniteBlobValidator::with_len(3);
        assert!(v.validate(&blob(&[1.0, -2.0, 0.5])).is_valid());
    }

    #[test]
    fn rejects_nan_and_inf() {
        let v = FiniteBlobValidator { expected_len: None };
        assert!(!v.validate(&blob(&[1.0, f32::NAN])).is_valid());
        assert!(!v.validate(&blob(&[f32::INFINITY])).is_valid());
    }

    #[test]
    fn rejects_wrong_length() {
        let v = FiniteBlobValidator::with_len(2);
        let verdict = v.validate(&blob(&[1.0, 2.0, 3.0]));
        assert!(matches!(
            verdict,
            ValidationVerdict::Invalid { ref reason } if reason.contains("wrong parameter count")
        ));
    }

    #[test]
    fn rejects_garbage() {
        let v = FiniteBlobValidator { expected_len: None };
        assert!(!v.validate(b"not a blob").is_valid());
        assert!(!v.validate(&[]).is_valid());
        let mut truncated = blob(&[1.0, 2.0]);
        truncated.truncate(truncated.len() - 3);
        assert!(!v.validate(&truncated).is_valid());
    }

    #[test]
    fn accept_all_accepts_garbage() {
        assert!(AcceptAllValidator.validate(b"anything").is_valid());
    }
}
