//! Result validation (BOINC's validator service).

use serde::{Deserialize, Serialize};

/// Verdict on an uploaded result.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationVerdict {
    /// The result may be assimilated.
    Valid,
    /// The result must be discarded and the workunit re-issued.
    Invalid {
        /// Human-readable cause for logs and metrics.
        reason: String,
    },
}

impl ValidationVerdict {
    /// Convenience predicate.
    pub fn is_valid(&self) -> bool {
        matches!(self, ValidationVerdict::Valid)
    }
}

/// A validator inspects a result blob before it reaches the assimilator.
pub trait Validator: Send + Sync {
    /// Judges one uploaded result payload.
    fn validate(&self, payload: &[u8]) -> ValidationVerdict;
}

/// Validates that a payload parses as a `vc-tensor` parameter blob of the
/// expected length with only finite values — the checks a DL validator must
/// make before trusting a volunteer's parameter upload (a diverged or
/// corrupted client otherwise poisons the server copy).
pub struct FiniteBlobValidator {
    /// Expected parameter count; `None` skips the length check.
    pub expected_len: Option<usize>,
}

impl FiniteBlobValidator {
    /// Header length of the vc-tensor blob framing.
    const HEADER: usize = 12;

    /// A validator expecting `len` parameters.
    pub fn with_len(len: usize) -> Self {
        FiniteBlobValidator {
            expected_len: Some(len),
        }
    }
}

impl Validator for FiniteBlobValidator {
    fn validate(&self, payload: &[u8]) -> ValidationVerdict {
        if payload.len() < Self::HEADER {
            return ValidationVerdict::Invalid {
                reason: format!("payload too short: {} bytes", payload.len()),
            };
        }
        // Frame check mirrors vc_tensor::codec without depending on it:
        // magic, little-endian u64 count, then f32 values.
        let magic = u32::from_le_bytes(payload[0..4].try_into().unwrap());
        if magic != 0x5643_5031 {
            return ValidationVerdict::Invalid {
                reason: format!("bad magic 0x{magic:08x}"),
            };
        }
        let claimed = u64::from_le_bytes(payload[4..12].try_into().unwrap());
        // The count is attacker-controlled: compute the implied byte length
        // with checked arithmetic so a hostile header is rejected instead of
        // wrapping the multiply (release) or panicking (debug).
        let Some(body_end) = usize::try_from(claimed)
            .ok()
            .and_then(|n| n.checked_mul(4))
            .and_then(|bytes| bytes.checked_add(Self::HEADER))
        else {
            return ValidationVerdict::Invalid {
                reason: format!("implausible value count {claimed}"),
            };
        };
        let n = claimed as usize;
        if payload.len() < body_end {
            return ValidationVerdict::Invalid {
                reason: format!("truncated: header claims {n} values"),
            };
        }
        if let Some(expected) = self.expected_len {
            if n != expected {
                return ValidationVerdict::Invalid {
                    reason: format!("wrong parameter count {n}, expected {expected}"),
                };
            }
        }
        for (i, chunk) in payload[Self::HEADER..Self::HEADER + 4 * n]
            .chunks_exact(4)
            .enumerate()
        {
            let v = f32::from_le_bytes(chunk.try_into().unwrap());
            if !v.is_finite() {
                return ValidationVerdict::Invalid {
                    reason: format!("non-finite parameter at index {i}"),
                };
            }
        }
        ValidationVerdict::Valid
    }
}

/// Accepts everything — for control experiments measuring what validation
/// buys.
pub struct AcceptAllValidator;

impl Validator for AcceptAllValidator {
    fn validate(&self, _payload: &[u8]) -> ValidationVerdict {
        ValidationVerdict::Valid
    }
}

/// Decides whether two already-validated result payloads agree for quorum
/// purposes (BOINC's `check_pair`). Payloads are screened by a [`Validator`]
/// before they get here, so implementations may assume finite values.
pub trait ResultComparator: Send + Sync {
    /// True when the two payloads count as the same result.
    fn matches(&self, a: &[f32], b: &[f32]) -> bool;
}

/// Exact agreement: same length, bit-identical values. The right choice for
/// deterministic clients — ours are, since subtask training is a pure
/// function of (snapshot, epoch, shard).
pub struct BitwiseComparator;

impl ResultComparator for BitwiseComparator {
    fn matches(&self, a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }
}

/// Tolerance-based agreement for clients with benign numeric divergence
/// (fused-math kernels, different SIMD widths): every element within
/// `atol + rtol·|b|`.
pub struct ToleranceComparator {
    /// Absolute tolerance.
    pub atol: f32,
    /// Relative tolerance, scaled by the second operand's magnitude.
    pub rtol: f32,
}

impl ResultComparator for ToleranceComparator {
    fn matches(&self, a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x - y).abs() <= self.atol + self.rtol * y.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(values: &[f32]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&0x5643_5031u32.to_le_bytes());
        out.extend_from_slice(&(values.len() as u64).to_le_bytes());
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    #[test]
    fn accepts_well_formed_blob() {
        let v = FiniteBlobValidator::with_len(3);
        assert!(v.validate(&blob(&[1.0, -2.0, 0.5])).is_valid());
    }

    #[test]
    fn rejects_nan_and_inf() {
        let v = FiniteBlobValidator { expected_len: None };
        assert!(!v.validate(&blob(&[1.0, f32::NAN])).is_valid());
        assert!(!v.validate(&blob(&[f32::INFINITY])).is_valid());
    }

    #[test]
    fn rejects_wrong_length() {
        let v = FiniteBlobValidator::with_len(2);
        let verdict = v.validate(&blob(&[1.0, 2.0, 3.0]));
        assert!(matches!(
            verdict,
            ValidationVerdict::Invalid { ref reason } if reason.contains("wrong parameter count")
        ));
    }

    #[test]
    fn rejects_garbage() {
        let v = FiniteBlobValidator { expected_len: None };
        assert!(!v.validate(b"not a blob").is_valid());
        assert!(!v.validate(&[]).is_valid());
        let mut truncated = blob(&[1.0, 2.0]);
        truncated.truncate(truncated.len() - 3);
        assert!(!v.validate(&truncated).is_valid());
    }

    #[test]
    fn accept_all_accepts_garbage() {
        assert!(AcceptAllValidator.validate(b"anything").is_valid());
    }

    /// A hostile header whose count overflows `4 * n + HEADER` must come
    /// back `Invalid`, not wrap into a bogus bound or panic the server.
    #[test]
    fn rejects_overflowing_counts_in_hostile_headers() {
        let v = FiniteBlobValidator { expected_len: None };
        for n in [
            u64::MAX,
            u64::MAX / 4,
            u64::MAX / 4 + 1,
            (usize::MAX as u64).saturating_add(1),
            u64::MAX - 2, // 4*n wraps to a tiny value in release builds
        ] {
            let mut payload = Vec::new();
            payload.extend_from_slice(&0x5643_5031u32.to_le_bytes());
            payload.extend_from_slice(&n.to_le_bytes());
            payload.extend_from_slice(&[0u8; 64]);
            let verdict = v.validate(&payload);
            assert!(
                matches!(
                    verdict,
                    ValidationVerdict::Invalid { ref reason }
                        if reason.contains("implausible") || reason.contains("truncated")
                ),
                "count {n}: {verdict:?}"
            );
        }
    }

    #[test]
    fn bitwise_comparator_demands_exact_bits() {
        let c = BitwiseComparator;
        assert!(c.matches(&[1.0, -2.5], &[1.0, -2.5]));
        assert!(!c.matches(&[1.0], &[1.0 + f32::EPSILON]));
        assert!(!c.matches(&[1.0], &[1.0, 2.0]));
        assert!(c.matches(&[], &[]));
    }

    #[test]
    fn tolerance_comparator_admits_benign_divergence() {
        let c = ToleranceComparator {
            atol: 1e-6,
            rtol: 1e-4,
        };
        assert!(c.matches(&[100.0, -3.0], &[100.005, -3.0]));
        assert!(!c.matches(&[100.0], &[101.0]));
        assert!(!c.matches(&[1.0, 2.0], &[1.0]));
    }

    mod adversarial {
        use super::*;
        use proptest::prelude::*;

        /// Stretch a raw draw across the regions that matter: tiny counts,
        /// counts near the `4·n` overflow edge, and full-width garbage.
        fn stretch_count(raw: u64, scheme: u64) -> u64 {
            match scheme % 4 {
                0 => raw % 64,                  // plausibly small
                1 => u64::MAX - (raw % 64),     // wraps 4·n
                2 => u64::MAX / 4 + (raw % 64), // straddles the edge
                _ => raw,                       // anywhere
            }
        }

        proptest! {
            /// Adversarial headers — well-formed magic, hostile count —
            /// never panic the validator, and any `Valid` verdict implies
            /// the payload really carries the claimed body.
            #[test]
            fn validator_never_panics_on_adversarial_headers(
                raw in 0u64..u64::MAX,
                scheme in 0u64..4,
                tail in prop::collection::vec(0u8..255, 0..128),
            ) {
                let count = stretch_count(raw, scheme);
                let mut payload = Vec::new();
                payload.extend_from_slice(&0x5643_5031u32.to_le_bytes());
                payload.extend_from_slice(&count.to_le_bytes());
                payload.extend_from_slice(&tail);
                let v = FiniteBlobValidator { expected_len: None };
                if v.validate(&payload).is_valid() {
                    // Valid ⇒ the header was honest about the body length.
                    prop_assert!(count as usize <= tail.len() / 4);
                }
            }

            /// Raw garbage (arbitrary magic, no framing) never panics
            /// either.
            #[test]
            fn validator_never_panics_on_raw_bytes(
                bytes in prop::collection::vec(0u8..255, 0..64),
            ) {
                let _ = FiniteBlobValidator { expected_len: None }.validate(&bytes);
            }
        }
    }
}
