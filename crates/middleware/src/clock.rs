//! Clock abstraction: wall-clock and virtual drivability.
//!
//! [`crate::BoincServer`] is a pure state machine over [`SimTime`]: every
//! entry point takes `now` explicitly, so the *caller* decides what a clock
//! is. The discrete-event simulator feeds it event-queue timestamps; a real
//! runtime feeds it wall-clock readings through [`WallClock`]; and the
//! deterministic-simulation harness (`vc-runtime::sim`) feeds it a
//! [`VirtualClock`] whose time only advances when the simulation says so.
//! The [`Clock`] trait is the seam: code written against it (the
//! `vc-runtime` coordinator, the checkpoint timer) runs unmodified on
//! either substrate.

use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;
use vc_simnet::SimTime;

/// A source of `now` readings on the [`SimTime`] axis.
///
/// Implementations must be monotone: successive [`Clock::now`] readings
/// never decrease. Beyond that the trait is silent about *what* drives the
/// clock — real time ([`WallClock`]) or an event queue ([`VirtualClock`]).
pub trait Clock {
    /// The current reading, suitable for every `now` parameter of
    /// [`crate::BoincServer`].
    fn now(&self) -> SimTime;

    /// Seconds elapsed since the clock started (excluding any resume
    /// offset) — the time *this run* has consumed.
    fn elapsed_s(&self) -> f64;
}

/// Maps real elapsed time onto the [`SimTime`] axis the middleware's
/// deadlines and metrics are expressed in.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    start: Instant,
    /// Seconds already on the clock when this process started (non-zero
    /// when resuming from a checkpoint, so reported times stay cumulative).
    offset_s: f64,
}

impl WallClock {
    /// Starts a clock at `SimTime::ZERO`.
    pub fn start() -> Self {
        WallClock {
            start: Instant::now(),
            offset_s: 0.0,
        }
    }

    /// Starts a clock that already shows `offset_s` seconds elapsed.
    pub fn resumed_at(offset_s: f64) -> Self {
        assert!(
            offset_s.is_finite() && offset_s >= 0.0,
            "invalid clock offset {offset_s}"
        );
        WallClock {
            start: Instant::now(),
            offset_s,
        }
    }

    /// The current reading (inherent form, so callers need not import
    /// [`Clock`]).
    pub fn now(&self) -> SimTime {
        SimTime::from_secs(self.offset_s + self.start.elapsed().as_secs_f64())
    }

    /// Seconds elapsed since [`WallClock::start`] (excluding any resume
    /// offset) — the wall time *this process* has spent.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        WallClock::now(self)
    }

    fn elapsed_s(&self) -> f64 {
        WallClock::elapsed_s(self)
    }
}

/// One pending wake-up in a [`VirtualClock`]'s event queue: delivery time,
/// then an insertion sequence number (FIFO among equal times), then the
/// caller's opaque token identifying who asked to be woken.
type QueuedWakeup = Reverse<(SimTime, u64, u64)>;

struct VirtualInner {
    now: SimTime,
    offset_s: f64,
    queue: BinaryHeap<QueuedWakeup>,
    seq: u64,
}

/// A clock that advances only when told to: the heart of deterministic
/// simulation testing.
///
/// Time is a number plus an explicit event queue of scheduled wake-ups.
/// Actors register interest in a future instant with
/// [`VirtualClock::schedule`]; when the simulation has nothing runnable
/// *now*, it calls [`VirtualClock::advance`], which jumps `now` straight to
/// the earliest scheduled instant and returns the token registered for it.
/// Nothing ever sleeps, so a minute of simulated timeouts costs
/// microseconds of real time, and two runs that schedule the same events
/// read identical timestamps — bit for bit.
///
/// Handles are cheap clones sharing one queue, mirroring how [`WallClock`]
/// is `Copy`.
#[derive(Clone)]
pub struct VirtualClock {
    inner: Arc<Mutex<VirtualInner>>,
}

impl VirtualClock {
    /// A clock at `SimTime::ZERO` with an empty queue.
    pub fn new() -> Self {
        Self::resumed_at(0.0)
    }

    /// A clock that already shows `offset_s` seconds elapsed.
    pub fn resumed_at(offset_s: f64) -> Self {
        assert!(
            offset_s.is_finite() && offset_s >= 0.0,
            "invalid clock offset {offset_s}"
        );
        VirtualClock {
            inner: Arc::new(Mutex::new(VirtualInner {
                now: SimTime::from_secs(offset_s),
                offset_s,
                queue: BinaryHeap::new(),
                seq: 0,
            })),
        }
    }

    /// The current virtual reading.
    pub fn now(&self) -> SimTime {
        self.inner.lock().now
    }

    /// Registers a wake-up for `token` at absolute time `at` (clamped to
    /// `now` if already past). Equal-time wake-ups fire in registration
    /// order.
    pub fn schedule(&self, at: SimTime, token: u64) {
        let mut g = self.inner.lock();
        let at = at.max(g.now);
        let seq = g.seq;
        g.seq += 1;
        g.queue.push(Reverse((at, seq, token)));
    }

    /// Registers a wake-up `delay_s` seconds from now.
    pub fn schedule_in(&self, delay_s: f64, token: u64) {
        assert!(
            delay_s.is_finite() && delay_s >= 0.0,
            "invalid delay {delay_s}"
        );
        let at = self.now() + delay_s;
        self.schedule(at, token);
    }

    /// The earliest scheduled instant, if any.
    pub fn peek(&self) -> Option<SimTime> {
        self.inner
            .lock()
            .queue
            .peek()
            .map(|Reverse((at, _, _))| *at)
    }

    /// Pops the earliest wake-up, advances `now` to its instant, and
    /// returns `(instant, token)`. Returns `None` when the queue is empty —
    /// in a simulation, that means every actor is idle forever.
    pub fn advance(&self) -> Option<(SimTime, u64)> {
        let mut g = self.inner.lock();
        let Reverse((at, _, token)) = g.queue.pop()?;
        g.now = g.now.max(at);
        Some((g.now, token))
    }

    /// Number of pending wake-ups.
    pub fn pending(&self) -> usize {
        self.inner.lock().queue.len()
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

// Both clocks also serve as telemetry time sources, so event timestamps
// ride the same SimTime axis as the middleware's deadlines — wall-driven
// on threads, simulation-driven (and therefore replayable) under DST.
impl vc_telemetry::TimeSource for WallClock {
    fn now_s(&self) -> f64 {
        WallClock::now(self).as_secs()
    }
}

impl vc_telemetry::TimeSource for VirtualClock {
    fn now_s(&self) -> f64 {
        VirtualClock::now(self).as_secs()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        VirtualClock::now(self)
    }

    fn elapsed_s(&self) -> f64 {
        let g = self.inner.lock();
        g.now.as_secs() - g.offset_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_measures_sleep() {
        let c = WallClock::start();
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(15));
        let b = c.now();
        assert!(b > a);
        assert!(b - a >= 0.014, "slept 15ms but clock shows {}", b - a);
    }

    #[test]
    fn resume_offset_shifts_readings() {
        let c = WallClock::resumed_at(100.0);
        assert!(c.now().as_secs() >= 100.0);
        assert!(c.elapsed_s() < 1.0, "offset must not count as elapsed");
    }

    #[test]
    fn virtual_clock_advances_only_on_demand() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.schedule_in(5.0, 1);
        c.schedule_in(2.0, 2);
        // Nothing moves until advance() is called.
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.peek(), Some(SimTime::from_secs(2.0)));
        assert_eq!(c.advance(), Some((SimTime::from_secs(2.0), 2)));
        assert_eq!(c.advance(), Some((SimTime::from_secs(5.0), 1)));
        assert_eq!(c.advance(), None);
        assert!((Clock::elapsed_s(&c) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn equal_instants_fire_in_registration_order() {
        let c = VirtualClock::new();
        for token in 0..10 {
            c.schedule(SimTime::from_secs(1.0), token);
        }
        for token in 0..10 {
            assert_eq!(c.advance(), Some((SimTime::from_secs(1.0), token)));
        }
    }

    #[test]
    fn past_instants_clamp_to_now() {
        let c = VirtualClock::new();
        c.schedule(SimTime::from_secs(3.0), 7);
        c.advance();
        // Scheduling "1s" after time already reached 3s fires at 3s, not
        // before it: the clock never runs backwards.
        c.schedule(SimTime::from_secs(1.0), 8);
        assert_eq!(c.advance(), Some((SimTime::from_secs(3.0), 8)));
    }

    #[test]
    fn virtual_resume_offset_excluded_from_elapsed() {
        let c = VirtualClock::resumed_at(50.0);
        c.schedule_in(4.0, 0);
        c.advance();
        assert_eq!(c.now(), SimTime::from_secs(54.0));
        assert!((Clock::elapsed_s(&c) - 4.0).abs() < 1e-12);
    }
}
