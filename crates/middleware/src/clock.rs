//! Wall-clock drivability.
//!
//! [`crate::BoincServer`] is a pure state machine over [`SimTime`]: every
//! entry point takes `now` explicitly, so the *caller* decides what a clock
//! is. The discrete-event simulator feeds it event-queue timestamps; a real
//! runtime feeds it wall-clock readings through this adapter, which maps
//! monotonic [`Instant`]s onto the `SimTime` axis (seconds since clock
//! start, plus an optional resume offset).

use std::time::Instant;
use vc_simnet::SimTime;

/// Maps real elapsed time onto the [`SimTime`] axis the middleware's
/// deadlines and metrics are expressed in.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    start: Instant,
    /// Seconds already on the clock when this process started (non-zero
    /// when resuming from a checkpoint, so reported times stay cumulative).
    offset_s: f64,
}

impl WallClock {
    /// Starts a clock at `SimTime::ZERO`.
    pub fn start() -> Self {
        WallClock {
            start: Instant::now(),
            offset_s: 0.0,
        }
    }

    /// Starts a clock that already shows `offset_s` seconds elapsed.
    pub fn resumed_at(offset_s: f64) -> Self {
        assert!(
            offset_s.is_finite() && offset_s >= 0.0,
            "invalid clock offset {offset_s}"
        );
        WallClock {
            start: Instant::now(),
            offset_s,
        }
    }

    /// The current reading, suitable for every `now` parameter of
    /// [`crate::BoincServer`].
    pub fn now(&self) -> SimTime {
        SimTime::from_secs(self.offset_s + self.start.elapsed().as_secs_f64())
    }

    /// Seconds elapsed since [`WallClock::start`] (excluding any resume
    /// offset) — the wall time *this process* has spent.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_measures_sleep() {
        let c = WallClock::start();
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(15));
        let b = c.now();
        assert!(b > a);
        assert!(b - a >= 0.014, "slept 15ms but clock shows {}", b - a);
    }

    #[test]
    fn resume_offset_shifts_readings() {
        let c = WallClock::resumed_at(100.0);
        assert!(c.now().as_secs() >= 100.0);
        assert!(c.elapsed_s() < 1.0, "offset must not count as elapsed");
    }
}
