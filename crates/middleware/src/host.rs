//! Host (volunteer client) records.
//!
//! Host state is split hot/cold for fleet scale. [`HostHot`] is the
//! fixed-size, `Copy` record every scheduler decision reads — packed into
//! one flat `Vec` indexed by the dense [`HostId`], so a 100k-host fleet's
//! reputation/EWMA/backoff state is a contiguous array scan-free to
//! address. [`HostCold`] holds the rarely-touched allocations (instance
//! spec, sticky-file cache) in a parallel vector; the serializable
//! [`HostSummary`] is materialized only at the API edge.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use vc_simnet::{InstanceSpec, SimTime};

/// Identifier of a client host within one [`crate::BoincServer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Smoothing factor of the reliability EMA: one success moves the estimate
/// 15 % of the way to 1, one timeout 15 % of the way to 0.
const RELIABILITY_ALPHA: f64 = 0.15;

/// An invalid (validator-rejected or quorum-outvoted) result is stronger
/// evidence of a hostile or broken host than a timeout, so it moves the
/// reliability estimate twice as hard.
const INVALID_ALPHA: f64 = 0.3;

/// The scheduler-hot per-host state (BOINC's host table, minus the cold
/// allocations): slot ledger, reputation, turnaround EWMA, fetch backoff,
/// incarnation counter. `Copy` and fixed-size so the server can keep the
/// whole fleet in one flat cache-friendly `Vec<HostHot>`.
#[derive(Clone, Copy, Debug)]
pub struct HostHot {
    /// Maximum simultaneous subtasks (the paper's `Tn`).
    pub slots: usize,
    /// Workunits currently assigned to the live incarnation.
    pub in_flight: usize,
    /// Live assignments addressed to this host id across *all*
    /// incarnations — the O(1) orphan count a revive charges to the run
    /// metrics.
    pub live_assignments: usize,
    /// Exponential moving average of result success in [0, 1]; starts at 1
    /// (BOINC starts hosts trusted and demotes them on failures).
    pub reliability: f64,
    /// True while the host is alive (preempted hosts flip to false until
    /// replaced).
    pub alive: bool,
    /// Incarnation counter: bumped each time a replacement instance
    /// registers, so assignments issued to a dead predecessor can be told
    /// apart from the live instance's work.
    pub lives: u32,
    /// Totals for reporting.
    pub completed: u64,
    /// Timeouts attributed to this host.
    pub timeouts: u64,
    /// Results rejected by the validator or outvoted at quorum.
    pub invalids: u64,
    /// EWMA of observed result turnaround in seconds; `None` until the
    /// first observation (the scheduler then falls back to the configured
    /// timeout when computing deadlines).
    pub turnaround_ewma_s: Option<f64>,
    /// Failures (timeouts + invalids) since the last success; exponent of
    /// the fetch backoff.
    pub consecutive_failures: u32,
    /// The host may not fetch new work before this instant.
    pub backoff_until: Option<SimTime>,
    /// Backoff intervals the scheduler has imposed on this host.
    pub backoffs: u64,
}

/// The rarely-touched per-host allocations, kept out of the hot array.
#[derive(Clone, Debug)]
pub struct HostCold {
    /// Instance configuration (Table I row).
    pub spec: InstanceSpec,
    /// Shards cached by the sticky-file feature.
    pub cached_shards: HashSet<usize>,
}

impl HostHot {
    /// A fresh host with `slots` simultaneous-subtask capacity.
    pub fn new(slots: usize) -> Self {
        assert!(slots >= 1, "a host needs at least one slot");
        HostHot {
            slots,
            in_flight: 0,
            live_assignments: 0,
            reliability: 1.0,
            alive: true,
            lives: 0,
            completed: 0,
            timeouts: 0,
            invalids: 0,
            turnaround_ewma_s: None,
            consecutive_failures: 0,
            backoff_until: None,
            backoffs: 0,
        }
    }

    /// Slots the scheduler will actually fill, shrunk for unreliable hosts
    /// ("assign subtasks to more reliable clients", §III-B). A host that
    /// times out persistently degrades to a single probe slot.
    pub fn effective_slots(&self) -> usize {
        let scaled = (self.slots as f64 * self.reliability).ceil() as usize;
        scaled.max(1)
    }

    /// Whether the host can take one more workunit now.
    pub fn has_capacity(&self) -> bool {
        self.alive && self.in_flight < self.effective_slots()
    }

    /// Records a successful result. Success ends any pending backoff: the
    /// host proved it can deliver.
    pub fn record_success(&mut self) {
        self.completed += 1;
        self.reliability += RELIABILITY_ALPHA * (1.0 - self.reliability);
        self.consecutive_failures = 0;
        self.backoff_until = None;
    }

    /// Records a timeout.
    pub fn record_timeout(&mut self) {
        self.timeouts += 1;
        self.reliability -= RELIABILITY_ALPHA * self.reliability;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
    }

    /// Records an invalid result (validator reject or quorum loss).
    pub fn record_invalid(&mut self) {
        self.invalids += 1;
        self.reliability -= INVALID_ALPHA * self.reliability;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
    }

    /// Fraction of this host's finished assignments that went bad.
    pub fn error_rate(&self) -> f64 {
        let total = self.completed + self.timeouts + self.invalids;
        if total == 0 {
            0.0
        } else {
            (self.timeouts + self.invalids) as f64 / total as f64
        }
    }

    /// Folds one observed turnaround (seconds) into the EWMA. The first
    /// observation seeds the estimate directly.
    pub fn record_turnaround(&mut self, secs: f64, alpha: f64) {
        let s = secs.max(0.0);
        self.turnaround_ewma_s = Some(match self.turnaround_ewma_s {
            None => s,
            Some(e) => alpha * s + (1.0 - alpha) * e,
        });
    }

    /// Imposes exponential fetch backoff after a failure: `base · 2^(n−1)`
    /// seconds for `n` consecutive failures, clamped to `max_s`. Returns
    /// the duration, which is 0 when backoff is disabled (`base_s ≤ 0`) or
    /// no failure is on record.
    pub fn start_backoff(&mut self, now: SimTime, base_s: f64, max_s: f64) -> f64 {
        if base_s <= 0.0 || self.consecutive_failures == 0 {
            return 0.0;
        }
        let exp = (self.consecutive_failures - 1).min(20);
        let dur = (base_s * 2f64.powi(exp as i32)).min(max_s);
        self.backoffs += 1;
        self.backoff_until = Some(now + dur);
        dur
    }

    /// True while the host is barred from fetching work.
    pub fn in_backoff(&self, now: SimTime) -> bool {
        self.backoff_until.is_some_and(|until| now < until)
    }

    /// Lifts any pending backoff (a replacement instance gets an immediate
    /// probe rather than inheriting the dead incarnation's penalty clock).
    pub fn clear_backoff(&mut self) {
        self.backoff_until = None;
        self.consecutive_failures = 0;
    }
}

/// A serializable snapshot of one host's scheduler-visible track record,
/// embedded in run reports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostSummary {
    /// Host identifier.
    pub id: u32,
    /// Results this host won (solo or as part of a quorum).
    pub completed: u64,
    /// Timeouts attributed to this host.
    pub timeouts: u64,
    /// Results rejected by the validator or outvoted at quorum.
    pub invalids: u64,
    /// Final reliability estimate in [0, 1].
    pub reliability: f64,
    /// Final turnaround EWMA, seconds.
    pub turnaround_ewma_s: Option<f64>,
    /// Backoff intervals imposed over the run.
    pub backoffs: u64,
}

impl HostSummary {
    /// Materializes the API-edge view of one hot record.
    pub fn from_hot(id: HostId, h: &HostHot) -> Self {
        HostSummary {
            id: id.0,
            completed: h.completed,
            timeouts: h.timeouts,
            invalids: h.invalids,
            reliability: h.reliability,
            turnaround_ewma_s: h.turnaround_ewma_s,
            backoffs: h.backoffs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> HostHot {
        HostHot::new(4)
    }

    #[test]
    fn fresh_host_is_trusted() {
        let h = host();
        assert_eq!(h.reliability, 1.0);
        assert_eq!(h.effective_slots(), 4);
        assert!(h.has_capacity());
    }

    #[test]
    fn capacity_respects_in_flight() {
        let mut h = host();
        h.in_flight = 4;
        assert!(!h.has_capacity());
        h.in_flight = 3;
        assert!(h.has_capacity());
    }

    #[test]
    fn timeouts_shrink_effective_slots() {
        let mut h = host();
        for _ in 0..12 {
            h.record_timeout();
        }
        assert!(h.reliability < 0.2, "{}", h.reliability);
        assert_eq!(h.effective_slots(), 1, "degrades to a probe slot");
        assert_eq!(h.timeouts, 12);
    }

    #[test]
    fn successes_restore_reliability() {
        let mut h = host();
        for _ in 0..10 {
            h.record_timeout();
        }
        let low = h.reliability;
        for _ in 0..20 {
            h.record_success();
        }
        assert!(h.reliability > 0.9, "{low} -> {}", h.reliability);
        assert_eq!(h.effective_slots(), 4);
    }

    #[test]
    fn dead_host_has_no_capacity() {
        let mut h = host();
        h.alive = false;
        assert!(!h.has_capacity());
    }

    #[test]
    fn reliability_stays_in_unit_interval() {
        let mut h = host();
        for _ in 0..1000 {
            h.record_timeout();
        }
        assert!(h.reliability >= 0.0);
        for _ in 0..1000 {
            h.record_success();
        }
        assert!(h.reliability <= 1.0);
    }

    #[test]
    fn invalid_results_penalize_harder_than_timeouts() {
        let mut slow = host();
        let mut hostile = host();
        slow.record_timeout();
        hostile.record_invalid();
        assert!(hostile.reliability < slow.reliability);
        assert_eq!((hostile.invalids, hostile.timeouts), (1, 0));
        assert_eq!((slow.invalids, slow.timeouts), (0, 1));
        assert_eq!(hostile.error_rate(), 1.0);
    }

    #[test]
    fn turnaround_ewma_seeds_then_converges() {
        let mut h = host();
        assert_eq!(h.turnaround_ewma_s, None);
        h.record_turnaround(100.0, 0.25);
        assert_eq!(h.turnaround_ewma_s, Some(100.0), "first sample seeds");
        for _ in 0..40 {
            h.record_turnaround(10.0, 0.25);
        }
        let e = h.turnaround_ewma_s.unwrap();
        assert!((e - 10.0).abs() < 0.01, "converged to the new rate: {e}");
        h.record_turnaround(-5.0, 0.25);
        assert!(h.turnaround_ewma_s.unwrap() >= 0.0, "clamped at zero");
    }

    #[test]
    fn backoff_grows_exponentially_and_clamps() {
        let t = SimTime::from_secs;
        let mut h = host();
        assert_eq!(h.start_backoff(t(0.0), 5.0, 40.0), 0.0, "no failure yet");
        let mut durations = Vec::new();
        for _ in 0..5 {
            h.record_timeout();
            durations.push(h.start_backoff(t(0.0), 5.0, 40.0));
        }
        assert_eq!(durations, vec![5.0, 10.0, 20.0, 40.0, 40.0]);
        assert_eq!(h.backoffs, 5);
        assert!(h.in_backoff(t(39.0)));
        assert!(!h.in_backoff(t(40.0)), "expires exactly at the bound");
    }

    #[test]
    fn success_and_clear_reset_the_backoff_clock() {
        let t = SimTime::from_secs;
        let mut h = host();
        h.record_timeout();
        h.record_timeout();
        h.start_backoff(t(0.0), 5.0, 40.0);
        assert!(h.in_backoff(t(1.0)));
        h.record_success();
        assert!(!h.in_backoff(t(1.0)), "success lifts the bar");
        h.record_timeout();
        assert_eq!(
            h.start_backoff(t(100.0), 5.0, 40.0),
            5.0,
            "failure streak restarted from one"
        );
        h.clear_backoff();
        assert!(!h.in_backoff(t(101.0)));
        assert_eq!(h.consecutive_failures, 0);
    }

    #[test]
    fn disabled_backoff_base_never_bars_a_host() {
        let t = SimTime::from_secs;
        let mut h = host();
        h.record_timeout();
        assert_eq!(h.start_backoff(t(0.0), 0.0, 100.0), 0.0);
        assert!(!h.in_backoff(t(0.0)));
        assert_eq!(h.backoffs, 0);
    }

    #[test]
    fn summary_mirrors_the_record() {
        let mut h = host();
        h.record_success();
        h.record_invalid();
        h.record_turnaround(3.0, 0.25);
        let s = HostSummary::from_hot(HostId(0), &h);
        assert_eq!(s.id, 0);
        assert_eq!((s.completed, s.timeouts, s.invalids), (1, 0, 1));
        assert_eq!(s.turnaround_ewma_s, Some(3.0));
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<HostSummary>(&json).unwrap(), s);
    }
}
