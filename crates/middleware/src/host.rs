//! Host (volunteer client) records.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use vc_simnet::InstanceSpec;

/// Identifier of a client host within one [`crate::BoincServer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Smoothing factor of the reliability EMA: one success moves the estimate
/// 15 % of the way to 1, one timeout 15 % of the way to 0.
const RELIABILITY_ALPHA: f64 = 0.15;

/// Control-plane state the scheduler keeps per host (BOINC's host table).
#[derive(Clone, Debug)]
pub struct HostRecord {
    /// Identifier.
    pub id: HostId,
    /// Instance configuration (Table I row).
    pub spec: InstanceSpec,
    /// Maximum simultaneous subtasks (the paper's `Tn`).
    pub slots: usize,
    /// Workunits currently assigned.
    pub in_flight: usize,
    /// Exponential moving average of result success in [0, 1]; starts at 1
    /// (BOINC starts hosts trusted and demotes them on failures).
    pub reliability: f64,
    /// Shards cached by the sticky-file feature.
    pub cached_shards: HashSet<usize>,
    /// True while the host is alive (preempted hosts flip to false until
    /// replaced).
    pub alive: bool,
    /// Totals for reporting.
    pub completed: u64,
    /// Timeouts attributed to this host.
    pub timeouts: u64,
}

impl HostRecord {
    /// A fresh host with `slots` simultaneous-subtask capacity.
    pub fn new(id: HostId, spec: InstanceSpec, slots: usize) -> Self {
        assert!(slots >= 1, "a host needs at least one slot");
        HostRecord {
            id,
            spec,
            slots,
            in_flight: 0,
            reliability: 1.0,
            cached_shards: HashSet::new(),
            alive: true,
            completed: 0,
            timeouts: 0,
        }
    }

    /// Slots the scheduler will actually fill, shrunk for unreliable hosts
    /// ("assign subtasks to more reliable clients", §III-B). A host that
    /// times out persistently degrades to a single probe slot.
    pub fn effective_slots(&self) -> usize {
        let scaled = (self.slots as f64 * self.reliability).ceil() as usize;
        scaled.max(1)
    }

    /// Whether the host can take one more workunit now.
    pub fn has_capacity(&self) -> bool {
        self.alive && self.in_flight < self.effective_slots()
    }

    /// Records a successful result.
    pub fn record_success(&mut self) {
        self.completed += 1;
        self.reliability += RELIABILITY_ALPHA * (1.0 - self.reliability);
    }

    /// Records a timeout.
    pub fn record_timeout(&mut self) {
        self.timeouts += 1;
        self.reliability -= RELIABILITY_ALPHA * self.reliability;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_simnet::table1;

    fn host() -> HostRecord {
        HostRecord::new(HostId(0), table1::client_8v_2_2(), 4)
    }

    #[test]
    fn fresh_host_is_trusted() {
        let h = host();
        assert_eq!(h.reliability, 1.0);
        assert_eq!(h.effective_slots(), 4);
        assert!(h.has_capacity());
    }

    #[test]
    fn capacity_respects_in_flight() {
        let mut h = host();
        h.in_flight = 4;
        assert!(!h.has_capacity());
        h.in_flight = 3;
        assert!(h.has_capacity());
    }

    #[test]
    fn timeouts_shrink_effective_slots() {
        let mut h = host();
        for _ in 0..12 {
            h.record_timeout();
        }
        assert!(h.reliability < 0.2, "{}", h.reliability);
        assert_eq!(h.effective_slots(), 1, "degrades to a probe slot");
        assert_eq!(h.timeouts, 12);
    }

    #[test]
    fn successes_restore_reliability() {
        let mut h = host();
        for _ in 0..10 {
            h.record_timeout();
        }
        let low = h.reliability;
        for _ in 0..20 {
            h.record_success();
        }
        assert!(h.reliability > 0.9, "{low} -> {}", h.reliability);
        assert_eq!(h.effective_slots(), 4);
    }

    #[test]
    fn dead_host_has_no_capacity() {
        let mut h = host();
        h.alive = false;
        assert!(!h.has_capacity());
    }

    #[test]
    fn reliability_stays_in_unit_interval() {
        let mut h = host();
        for _ in 0..1000 {
            h.record_timeout();
        }
        assert!(h.reliability >= 0.0);
        for _ in 0..1000 {
            h.record_success();
        }
        assert!(h.reliability <= 1.0);
    }
}
