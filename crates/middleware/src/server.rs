//! The BOINC-like server: scheduler + transitioner in one state machine.
//!
//! Hot paths are built for fleet scale (10k–100k hosts):
//!
//! - host state is a flat `Vec<HostHot>` indexed by the dense [`HostId`]
//!   (cold allocations live in a parallel `Vec<HostCold>`);
//! - deadlines live in an indexed [`TimerQueue`] (binary heap, lazy
//!   invalidation via per-assignment sequence numbers), so a timeout scan
//!   is O(1) when nothing is due and O(due · log n) when timers fire —
//!   never O(workunits);
//! - the work queue is a `BTreeMap` keyed by a monotone enqueue sequence
//!   (FIFO order preserved) with a per-shard secondary index for O(log n)
//!   sticky-file picks and removals;
//! - `open_count`/`all_done` are maintained counters, not scans.

use crate::host::{HostCold, HostHot, HostId, HostSummary};
use crate::timer::{TimerEntry, TimerQueue};
use crate::validate::{BitwiseComparator, ResultComparator};
use crate::workunit::{ActiveAssignment, ShardManifest, WorkUnit, WuId, WuPhase};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use vc_simnet::{InstanceSpec, SimTime};
use vc_telemetry::{FieldValue, Histogram, Level, Telemetry, TraceStage};

/// Registry name of the per-host observed-turnaround histogram (seconds
/// from assignment to upload).
pub const HOST_TURNAROUND_S: &str = "host_turnaround_s";
/// Registry name of the issued-deadline-length histogram (seconds granted
/// per assignment by the adaptive-deadline policy).
pub const WU_DEADLINE_S: &str = "wu_deadline_s";

/// When a deadline blows, the host's turnaround EWMA is fed the blown
/// deadline length scaled by this factor, so repeat offenders earn longer
/// (not tighter) deadlines — BOINC's "exponential deadline growth".
const TIMEOUT_TURNAROUND_GROWTH: f64 = 1.5;

/// Server-side policy knobs (BOINC project configuration).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MiddlewareConfig {
    /// Baseline result timeout `t_o`: the deadline before any turnaround
    /// has been observed for a host, after which the per-host EWMA takes
    /// over. Paper: 5 min, fixed; here it is only the seed.
    pub timeout_s: f64,
    /// Attempts after which a workunit is still re-queued but counted as
    /// pathological (surfaced in metrics; BOINC would error the workunit).
    pub max_attempts: u32,
    /// Enable sticky-file locality-aware assignment (§III-B).
    pub sticky_files: bool,
    /// Replication factor: how many hosts may execute the same workunit
    /// concurrently for redundancy (§II-C). 1 disables replication.
    pub replication: u32,
    /// Floor of the adaptive deadline (widened down to `timeout_s` when
    /// `timeout_s` is configured lower).
    #[serde(default = "default_min_timeout_s")]
    pub min_timeout_s: f64,
    /// Ceiling of the adaptive deadline (widened up to `timeout_s` when
    /// `timeout_s` is configured higher).
    #[serde(default = "default_max_timeout_s")]
    pub max_timeout_s: f64,
    /// Deadline = `deadline_grace ×` the host's turnaround EWMA, clamped.
    #[serde(default = "default_deadline_grace")]
    pub deadline_grace: f64,
    /// Smoothing factor of the turnaround EWMA.
    #[serde(default = "default_deadline_alpha")]
    pub deadline_alpha: f64,
    /// Matching uploads required before a result is handed to the
    /// assimilator (BOINC's `min_quorum`). Must be ≤ `replication`.
    #[serde(default = "default_quorum")]
    pub quorum: u32,
    /// First backoff interval imposed on a host after a failure; doubles
    /// per consecutive failure. 0 disables fetch backoff.
    #[serde(default = "default_backoff_base_s")]
    pub backoff_base_s: f64,
    /// Backoff ceiling.
    #[serde(default = "default_backoff_max_s")]
    pub backoff_max_s: f64,
}

fn default_min_timeout_s() -> f64 {
    30.0
}
fn default_max_timeout_s() -> f64 {
    3600.0
}
fn default_deadline_grace() -> f64 {
    3.0
}
fn default_deadline_alpha() -> f64 {
    0.25
}
fn default_quorum() -> u32 {
    1
}
fn default_backoff_base_s() -> f64 {
    15.0
}
fn default_backoff_max_s() -> f64 {
    900.0
}

impl Default for MiddlewareConfig {
    fn default() -> Self {
        MiddlewareConfig {
            timeout_s: 300.0,
            max_attempts: 8,
            sticky_files: true,
            replication: 1,
            min_timeout_s: default_min_timeout_s(),
            max_timeout_s: default_max_timeout_s(),
            deadline_grace: default_deadline_grace(),
            deadline_alpha: default_deadline_alpha(),
            quorum: default_quorum(),
            backoff_base_s: default_backoff_base_s(),
            backoff_max_s: default_backoff_max_s(),
        }
    }
}

impl MiddlewareConfig {
    /// Rejects configurations the scheduler cannot honor.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("timeout_s", self.timeout_s),
            ("min_timeout_s", self.min_timeout_s),
            ("max_timeout_s", self.max_timeout_s),
            ("deadline_grace", self.deadline_grace),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("middleware.{name} must be finite and positive"));
            }
        }
        if self.min_timeout_s > self.max_timeout_s {
            return Err("middleware.min_timeout_s exceeds max_timeout_s".into());
        }
        if !self.deadline_alpha.is_finite()
            || self.deadline_alpha <= 0.0
            || self.deadline_alpha > 1.0
        {
            return Err("middleware.deadline_alpha must be in (0, 1]".into());
        }
        if self.max_attempts == 0 {
            return Err("middleware.max_attempts must be >= 1".into());
        }
        if self.replication == 0 {
            return Err("middleware.replication must be >= 1".into());
        }
        if self.quorum == 0 || self.quorum > self.replication {
            return Err("middleware.quorum must be in 1..=replication".into());
        }
        if !self.backoff_base_s.is_finite() || self.backoff_base_s < 0.0 {
            return Err("middleware.backoff_base_s must be finite and >= 0".into());
        }
        if !self.backoff_max_s.is_finite() || self.backoff_max_s < self.backoff_base_s {
            return Err("middleware.backoff_max_s must be >= backoff_base_s".into());
        }
        Ok(())
    }
}

/// Counters the server maintains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerMetrics {
    /// Workunit assignments handed to clients (replicas included).
    pub assigned: u64,
    /// Accepted results.
    pub completed: u64,
    /// Timeout events (one per expired assignment).
    pub timeouts: u64,
    /// Workunits put back in the queue after timeout or invalid result.
    pub reassignments: u64,
    /// Results arriving for workunits no longer open to the reporter.
    pub stale_results: u64,
    /// Results rejected by the validator.
    pub invalid_results: u64,
    /// Shard downloads avoided by the sticky-file cache.
    pub cache_hits: u64,
    /// Redundant replicas cancelled because another host finished first.
    pub cancelled_replicas: u64,
    /// Quorum rounds where candidates disagreed and extra replicas were
    /// issued.
    #[serde(default)]
    pub quorum_disagreements: u64,
    /// Backoff intervals imposed on flaky hosts.
    #[serde(default)]
    pub backoffs: u64,
    /// Assignments orphaned by a replacement instance registering: their
    /// later expiry is still a timeout, but is not blamed on the new
    /// incarnation.
    #[serde(default)]
    pub revive_orphaned: u64,
}

/// What a client receives from [`BoincServer::request_work`].
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// The workunit to execute.
    pub wu: WorkUnit,
    /// 1-based attempt number.
    pub attempt: u32,
    /// True when the host already holds the shard (no data download).
    pub shard_cached: bool,
    /// Completion deadline the transitioner will enforce.
    pub deadline: SimTime,
}

/// Outcome of reporting a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportStatus {
    /// The upload completed a quorum: assimilate this payload.
    Accepted,
    /// The upload joined a quorum that is not yet decided; the server keeps
    /// a copy, the caller must not assimilate.
    Pending,
    /// The workunit was already completed (or the host double-voted);
    /// discard the payload.
    Stale,
}

struct WuRecord {
    wu: WorkUnit,
    phase: WuPhase,
    attempts: u32,
    /// The workunit's enqueue sequence while it sits in the work queue.
    queued: Option<u64>,
    /// Valid uploads awaiting quorum: (reporter, payload). One vote per
    /// host.
    candidates: Vec<(HostId, Vec<f32>)>,
    /// Results the scheduler wants for this workunit: starts at the
    /// replication factor, extended when candidates disagree.
    target_results: u32,
}

/// FIFO work queue with a per-shard secondary index. Entries are keyed by
/// a monotone enqueue sequence, so `BTreeMap` iteration order *is* queue
/// order; the shard index turns the sticky-file pick from a head-to-tail
/// scan into a merge over the host's cached shards' entries.
#[derive(Default)]
struct WorkQueue {
    items: BTreeMap<u64, WuId>,
    by_shard: HashMap<usize, BTreeSet<u64>>,
    next: u64,
}

impl WorkQueue {
    fn push(&mut self, id: WuId, shard: usize) -> u64 {
        let q = self.next;
        self.next += 1;
        self.items.insert(q, id);
        self.by_shard.entry(shard).or_default().insert(q);
        q
    }

    fn remove(&mut self, qseq: u64, shard: usize) {
        self.items.remove(&qseq);
        if let Some(set) = self.by_shard.get_mut(&shard) {
            set.remove(&qseq);
            if set.is_empty() {
                self.by_shard.remove(&shard);
            }
        }
    }
}

/// The in-process BOINC server.
pub struct BoincServer {
    cfg: MiddlewareConfig,
    /// Scheduler-hot host state, flat and dense (index = `HostId.0`).
    hosts: Vec<HostHot>,
    /// Cold per-host allocations, parallel to `hosts`.
    cold: Vec<HostCold>,
    wus: Vec<WuRecord>,
    queue: WorkQueue,
    /// Indexed expiry timers, one armed per issued assignment.
    timers: TimerQueue,
    /// Global assignment issue counter (feeds `ActiveAssignment::seq`).
    next_seq: u64,
    /// Maintained count of workunits still needing a result.
    open: usize,
    metrics: ServerMetrics,
    telemetry: Option<Telemetry>,
    comparator: Box<dyn ResultComparator>,
}

impl BoincServer {
    /// Builds a server over a fleet; `slots[i]` is host `i`'s simultaneous-
    /// subtask limit (the paper's `Tn`).
    pub fn new(cfg: MiddlewareConfig, fleet: Vec<(InstanceSpec, usize)>) -> Self {
        assert!(!fleet.is_empty(), "a server needs at least one host");
        if let Err(e) = cfg.validate() {
            panic!("invalid middleware config: {e}");
        }
        let mut hosts = Vec::with_capacity(fleet.len());
        let mut cold = Vec::with_capacity(fleet.len());
        for (spec, slots) in fleet {
            hosts.push(HostHot::new(slots));
            cold.push(HostCold {
                spec,
                cached_shards: HashSet::new(),
            });
        }
        BoincServer {
            cfg,
            hosts,
            cold,
            wus: Vec::new(),
            queue: WorkQueue::default(),
            timers: TimerQueue::new(),
            next_seq: 0,
            open: 0,
            metrics: ServerMetrics::default(),
            telemetry: None,
            comparator: Box::new(BitwiseComparator),
        }
    }

    /// Swaps the quorum comparator (bitwise by default; use
    /// [`crate::ToleranceComparator`] for clients with benign numeric
    /// divergence).
    pub fn set_comparator(&mut self, cmp: Box<dyn ResultComparator>) {
        self.comparator = cmp;
    }

    /// Attaches a telemetry handle: workunit lifecycle transitions
    /// (assign, complete, stale, invalid, timeout, reassign) become
    /// structured events timestamped with the caller's `now`.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.telemetry = Some(tel);
    }

    /// Emits one lifecycle event at `now` (no-op without telemetry).
    fn emit(&self, now: SimTime, level: Level, name: &str, fields: Vec<(&str, FieldValue)>) {
        if let Some(tel) = &self.telemetry {
            tel.event_at(now.as_secs(), level, name, fields);
        }
    }

    /// True when causal workunit tracing is on. Call sites guard their
    /// span emission on this so untraced runs allocate nothing.
    fn tracing(&self) -> bool {
        self.telemetry.as_ref().is_some_and(|t| t.tracing())
    }

    /// Records one causal trace span ending at `now`.
    fn trace(
        &self,
        now: SimTime,
        stage: TraceStage,
        wu: WuId,
        host: HostId,
        dur_s: f64,
        extra: Vec<(&str, FieldValue)>,
    ) {
        if let Some(tel) = &self.telemetry {
            tel.trace_span(now.as_secs(), stage, wu.0, u64::from(host.0), dur_s, extra);
        }
    }

    /// Server configuration.
    pub fn config(&self) -> &MiddlewareConfig {
        &self.cfg
    }

    /// Registered hosts' hot state, indexed by `HostId.0`.
    pub fn hosts(&self) -> &[HostHot] {
        &self.hosts
    }

    /// Mutable host access (drivers flip `alive` on preemption).
    pub fn host_mut(&mut self, id: HostId) -> &mut HostHot {
        &mut self.hosts[id.0 as usize]
    }

    /// A host's instance spec (cold state).
    pub fn spec(&self, id: HostId) -> &InstanceSpec {
        &self.cold[id.0 as usize].spec
    }

    /// A host's sticky-file shard cache (cold state).
    pub fn cached_shards(&self, id: HostId) -> &HashSet<usize> {
        &self.cold[id.0 as usize].cached_shards
    }

    /// Materializes the serializable per-host summaries (API edge).
    pub fn host_summaries(&self) -> Vec<HostSummary> {
        self.hosts
            .iter()
            .enumerate()
            .map(|(i, h)| HostSummary::from_hot(HostId(i as u32), h))
            .collect()
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> ServerMetrics {
        self.metrics
    }

    /// Work generator entry point: enqueues one subtask.
    pub fn add_workunit(
        &mut self,
        epoch: usize,
        shard_id: usize,
        param_version: u64,
        now: SimTime,
    ) -> WuId {
        self.add_workunit_sharded(epoch, shard_id, ShardManifest::single(param_version), now)
    }

    /// [`Self::add_workunit`] with a full per-parameter-shard version
    /// manifest (the sharded parameter service's snapshot fingerprint).
    pub fn add_workunit_sharded(
        &mut self,
        epoch: usize,
        shard_id: usize,
        manifest: ShardManifest,
        now: SimTime,
    ) -> WuId {
        let id = WuId(self.wus.len() as u64);
        let qseq = self.queue.push(id, shard_id);
        self.wus.push(WuRecord {
            wu: WorkUnit {
                id,
                epoch,
                shard_id,
                param_version: manifest.max_version(),
                param_versions: manifest,
                created_at: now,
            },
            phase: WuPhase::Unsent,
            attempts: 0,
            queued: Some(qseq),
            candidates: Vec::new(),
            target_results: self.cfg.replication,
        });
        self.open += 1;
        id
    }

    /// Enqueues one epoch's worth of subtasks (one per shard).
    pub fn add_epoch(&mut self, epoch: usize, shards: usize, param_version: u64, now: SimTime) {
        self.add_epoch_sharded(epoch, shards, &ShardManifest::single(param_version), now);
    }

    /// [`Self::add_epoch`] with a per-parameter-shard version manifest,
    /// shared by every subtask of the epoch.
    pub fn add_epoch_sharded(
        &mut self,
        epoch: usize,
        shards: usize,
        manifest: &ShardManifest,
        now: SimTime,
    ) {
        for s in 0..shards {
            self.add_workunit_sharded(epoch, s, manifest.clone(), now);
        }
    }

    /// True when `host` may take a replica of `wu_id`: the workunit is
    /// open, still wants more results (live replicas + banked candidate
    /// votes below its target), is not already running on this host, and
    /// the host has not voted on it.
    fn assignable_to(&self, wu_id: WuId, host: HostId) -> bool {
        let rec = &self.wus[wu_id.0 as usize];
        if !rec.phase.is_open() {
            return false;
        }
        if rec.candidates.iter().any(|(h, _)| *h == host) {
            return false;
        }
        if rec.phase.replica_count() + rec.candidates.len() >= rec.target_results as usize {
            return false;
        }
        match &rec.phase {
            WuPhase::InProgress { assignments } => assignments.iter().all(|a| a.host != host),
            _ => true,
        }
    }

    /// The adaptive completion deadline for `host`: `deadline_grace ×` its
    /// turnaround EWMA, clamped to `[min_timeout_s, max_timeout_s]` (both
    /// widened to admit the configured `timeout_s`, which is also the
    /// unseeded default).
    fn deadline_for(&self, host: HostId) -> f64 {
        match self.hosts[host.0 as usize].turnaround_ewma_s {
            Some(ewma) => {
                let lo = self.cfg.min_timeout_s.min(self.cfg.timeout_s);
                let hi = self.cfg.max_timeout_s.max(self.cfg.timeout_s);
                (self.cfg.deadline_grace * ewma).clamp(lo, hi)
            }
            None => self.cfg.timeout_s,
        }
    }

    /// Observes one sample into a named registry histogram (no-op without
    /// telemetry).
    fn observe(&self, name: &'static str, value: f64) {
        if let Some(tel) = &self.telemetry {
            tel.registry()
                .histogram_with(name, Histogram::latency_bounds)
                .observe(value);
        }
    }

    /// Puts `host` in exponential fetch backoff after a failure (no-op when
    /// disabled or the host has no failure streak).
    fn apply_backoff(&mut self, host: HostId, now: SimTime) {
        let dur = self.hosts[host.0 as usize].start_backoff(
            now,
            self.cfg.backoff_base_s,
            self.cfg.backoff_max_s,
        );
        if dur > 0.0 {
            self.metrics.backoffs += 1;
            let streak = self.hosts[host.0 as usize].consecutive_failures;
            self.emit(
                now,
                Level::Info,
                "host_backoff",
                vec![
                    ("host", host.0.into()),
                    ("secs", dur.into()),
                    ("failures", streak.into()),
                ],
            );
        }
    }

    /// The earliest queue entry this host may take whose shard it already
    /// caches: a merge over the cached shards' index entries, each scanned
    /// in enqueue order. Equivalent to the historical head-to-tail scan
    /// (minimum enqueue sequence wins), but costs O(cached · log n) plus
    /// skips instead of O(queue).
    fn sticky_pick(&self, host: HostId) -> Option<u64> {
        let mut best: Option<u64> = None;
        for shard in &self.cold[host.0 as usize].cached_shards {
            if let Some(set) = self.queue.by_shard.get(shard) {
                for &q in set {
                    if best.is_some_and(|b| q >= b) {
                        break;
                    }
                    if self.assignable_to(self.queue.items[&q], host) {
                        best = Some(q);
                        break;
                    }
                }
            }
        }
        best
    }

    /// Scheduler: host `host` asks for work at `now`. Returns at most one
    /// assignment per call; callers loop while slots remain. Prefers a
    /// queued workunit whose shard the host already caches (sticky files),
    /// falling back to FIFO order. Hosts serving a failure backoff get
    /// nothing until it expires.
    pub fn request_work(&mut self, host: HostId, now: SimTime) -> Option<Assignment> {
        {
            let h = &self.hosts[host.0 as usize];
            if !h.has_capacity() || h.in_backoff(now) {
                return None;
            }
        }
        let cached_pick = if self.cfg.sticky_files {
            self.sticky_pick(host)
        } else {
            None
        };
        let pick = cached_pick.or_else(|| {
            self.queue
                .items
                .iter()
                .find(|(_, &id)| self.assignable_to(id, host))
                .map(|(&q, _)| q)
        })?;

        let wu_id = self.queue.items[&pick];
        let deadline_s = self.deadline_for(host);
        let seq = self.next_seq;
        self.next_seq += 1;
        let rec = &mut self.wus[wu_id.0 as usize];
        rec.attempts += 1;
        let deadline = now + deadline_s;
        let assignment = ActiveAssignment {
            seq,
            host,
            incarnation: self.hosts[host.0 as usize].lives,
            issued_at: now,
            deadline,
            attempt: rec.attempts,
        };
        match &mut rec.phase {
            WuPhase::Unsent => {
                rec.phase = WuPhase::InProgress {
                    assignments: vec![assignment],
                };
            }
            WuPhase::InProgress { assignments } => assignments.push(assignment),
            WuPhase::Done { .. } => unreachable!("assignable_to filtered Done"),
        }
        // Leave the workunit queued while it still wants more results.
        let dequeue =
            if rec.phase.replica_count() + rec.candidates.len() >= rec.target_results as usize {
                rec.queued.take().map(|q| (q, rec.wu.shard_id))
            } else {
                None
            };
        if let Some((q, shard)) = dequeue {
            self.queue.remove(q, shard);
        }
        self.timers.push(TimerEntry {
            deadline,
            seq,
            wu: wu_id,
            host,
        });
        self.observe(WU_DEADLINE_S, deadline_s);

        let attempt = self.wus[wu_id.0 as usize].attempts;
        let shard_id = self.wus[wu_id.0 as usize].wu.shard_id;
        let h = &mut self.hosts[host.0 as usize];
        h.in_flight += 1;
        h.live_assignments += 1;
        let cache = &mut self.cold[host.0 as usize].cached_shards;
        let shard_cached = cache.contains(&shard_id);
        if shard_cached {
            self.metrics.cache_hits += 1;
        } else {
            cache.insert(shard_id);
        }
        self.metrics.assigned += 1;
        self.emit(
            now,
            Level::Debug,
            "wu_assigned",
            vec![
                ("wu", wu_id.0.into()),
                ("host", host.0.into()),
                ("attempt", attempt.into()),
                ("shard", shard_id.into()),
                ("cached", shard_cached.into()),
            ],
        );
        if self.tracing() {
            // Dispatch latency = workunit creation to this hand-off
            // (re-dispatches after timeouts count the full wait).
            let rec = &self.wus[wu_id.0 as usize];
            let waited = (now - rec.wu.created_at).max(0.0);
            self.trace(
                now,
                TraceStage::Dispatch,
                wu_id,
                host,
                waited,
                vec![
                    ("attempt", attempt.into()),
                    ("shard", shard_id.into()),
                    ("epoch", rec.wu.epoch.into()),
                ],
            );
        }
        Some(Assignment {
            wu: self.wus[wu_id.0 as usize].wu.clone(),
            attempt,
            shard_cached,
            deadline,
        })
    }

    /// Removes `host`'s live assignment on `wu_id` (if any), freeing its
    /// slot. The assignment's timer entry is left to lapse in the heap
    /// (lazy invalidation: its `seq` no longer names a live assignment).
    /// Returns whether an assignment was removed.
    fn release_assignment(&mut self, wu_id: WuId, host: HostId) -> bool {
        let rec = &mut self.wus[wu_id.0 as usize];
        if let WuPhase::InProgress { assignments } = &mut rec.phase {
            if let Some(pos) = assignments.iter().position(|a| a.host == host) {
                let a = assignments.remove(pos);
                if assignments.is_empty() {
                    rec.phase = WuPhase::Unsent;
                }
                let h = &mut self.hosts[host.0 as usize];
                h.live_assignments = h.live_assignments.saturating_sub(1);
                // An orphaned assignment (issued to a dead predecessor)
                // never occupied the replacement's ledger.
                if a.incarnation == h.lives {
                    h.in_flight = h.in_flight.saturating_sub(1);
                }
                return true;
            }
        }
        false
    }

    /// Puts an open workunit back in the queue if it is not already there.
    fn ensure_queued(&mut self, wu_id: WuId) {
        let rec = &self.wus[wu_id.0 as usize];
        if rec.phase.is_open() && rec.queued.is_none() {
            let shard = rec.wu.shard_id;
            let qseq = self.queue.push(wu_id, shard);
            self.wus[wu_id.0 as usize].queued = Some(qseq);
        }
    }

    /// Compatibility wrapper over [`BoincServer::report_result`] with an
    /// empty payload. Under the default quorum of 1 this is the classic
    /// first-valid-result-wins behaviour; with a real quorum configured,
    /// callers must use `report_result` so payloads can be compared.
    pub fn report_success(&mut self, wu_id: WuId, host: HostId, now: SimTime) -> ReportStatus {
        self.report_result(wu_id, host, &[], now)
    }

    /// A client uploads an (already validator-screened) result payload.
    ///
    /// The upload becomes a quorum candidate; when `quorum` candidates
    /// agree under the configured comparator, the workunit completes and
    /// the caller assimilates the payload it is holding (`Accepted`).
    /// Until then the server banks a copy (`Pending`), extending the
    /// result target when the outstanding replicas can no longer reach
    /// quorum. Uploads for decided workunits, or second votes from the
    /// same host, are `Stale`.
    pub fn report_result(
        &mut self,
        wu_id: WuId,
        host: HostId,
        payload: &[f32],
        now: SimTime,
    ) -> ReportStatus {
        let idx = wu_id.0 as usize;
        let duplicate_vote = self.wus[idx].candidates.iter().any(|(h, _)| *h == host);
        if !self.wus[idx].phase.is_open() || duplicate_vote {
            // Free the reporter's slot if it still held a replica record —
            // by construction it does not, but the call is idempotent.
            self.release_assignment(wu_id, host);
            self.metrics.stale_results += 1;
            self.emit(
                now,
                Level::Debug,
                "wu_stale",
                vec![("wu", wu_id.0.into()), ("host", host.0.into())],
            );
            if self.tracing() {
                self.trace(
                    now,
                    TraceStage::Validate,
                    wu_id,
                    host,
                    0.0,
                    vec![("outcome", "stale".into())],
                );
            }
            return ReportStatus::Stale;
        }
        // Turnaround is observed only while the reporter still holds a live
        // assignment from its current incarnation (a late post-timeout
        // upload carries no timing signal — the blown deadline already fed
        // the EWMA — and an orphan's clock belongs to a dead predecessor).
        if let WuPhase::InProgress { assignments } = &self.wus[idx].phase {
            if let Some(a) = assignments
                .iter()
                .find(|a| a.host == host && a.incarnation == self.hosts[host.0 as usize].lives)
            {
                let turnaround = (now - a.issued_at).max(0.0);
                self.hosts[host.0 as usize].record_turnaround(turnaround, self.cfg.deadline_alpha);
                self.observe(HOST_TURNAROUND_S, turnaround);
            }
        }
        self.release_assignment(wu_id, host);
        self.wus[idx].candidates.push((host, payload.to_vec()));
        let agreeing = {
            let rec = &self.wus[idx];
            rec.candidates
                .iter()
                .filter(|(_, p)| self.comparator.matches(p, payload))
                .count()
        };
        if agreeing >= self.cfg.quorum as usize {
            self.decide(wu_id, host, payload, now);
            if self.tracing() {
                self.trace(
                    now,
                    TraceStage::Validate,
                    wu_id,
                    host,
                    0.0,
                    vec![("outcome", "accepted".into()), ("votes", agreeing.into())],
                );
            }
            return ReportStatus::Accepted;
        }
        // Quorum still open. If the largest agreeing group plus every vote
        // that could still arrive (live replicas + unissued target slots)
        // cannot reach quorum, issue more replicas — BOINC's transitioner
        // reacting to a validator "inconclusive".
        let (best_group, live, banked, target) = {
            let rec = &self.wus[idx];
            let best = rec
                .candidates
                .iter()
                .map(|(_, a)| {
                    rec.candidates
                        .iter()
                        .filter(|(_, b)| self.comparator.matches(a, b))
                        .count()
                })
                .max()
                .unwrap_or(0);
            (
                best,
                rec.phase.replica_count(),
                rec.candidates.len(),
                rec.target_results as usize,
            )
        };
        let quorum = self.cfg.quorum as usize;
        let outstanding = target.saturating_sub(live + banked);
        if best_group + live + outstanding < quorum {
            let cap = self.cfg.max_attempts.max(self.cfg.replication) as usize;
            let need = quorum - (best_group + live + outstanding);
            let new_target = (target + need).min(cap.max(target));
            if new_target > target {
                self.wus[idx].target_results = new_target as u32;
                self.metrics.quorum_disagreements += 1;
                self.emit(
                    now,
                    Level::Warn,
                    "wu_quorum_disagree",
                    vec![
                        ("wu", wu_id.0.into()),
                        ("host", host.0.into()),
                        ("candidates", banked.into()),
                        ("target", new_target.into()),
                    ],
                );
            }
        }
        self.ensure_queued(wu_id);
        if self.cfg.quorum > 1 {
            self.emit(
                now,
                Level::Debug,
                "wu_quorum_pending",
                vec![
                    ("wu", wu_id.0.into()),
                    ("host", host.0.into()),
                    ("votes", agreeing.into()),
                    ("quorum", self.cfg.quorum.into()),
                ],
            );
        }
        if self.tracing() {
            self.trace(
                now,
                TraceStage::Validate,
                wu_id,
                host,
                0.0,
                vec![("outcome", "pending".into()), ("votes", agreeing.into())],
            );
        }
        ReportStatus::Pending
    }

    /// Completes `wu_id` with `winner`'s `payload`: cancels live replicas,
    /// credits every candidate that agreed with the winning result, and
    /// penalizes the outvoted ones like validator rejects.
    fn decide(&mut self, wu_id: WuId, winner: HostId, payload: &[f32], now: SimTime) {
        let others = self.wus[wu_id.0 as usize].phase.running_on();
        for other in others {
            self.release_assignment(wu_id, other);
            self.metrics.cancelled_replicas += 1;
        }
        let rec = &mut self.wus[wu_id.0 as usize];
        let candidates = std::mem::take(&mut rec.candidates);
        rec.phase = WuPhase::Done {
            host: winner,
            at: now,
        };
        let dequeue = rec.queued.take().map(|q| (q, rec.wu.shard_id));
        if let Some((q, shard)) = dequeue {
            self.queue.remove(q, shard);
        }
        self.open -= 1;
        let total_votes = candidates.len();
        let mut agreeing = 0usize;
        for (h, p) in &candidates {
            if self.comparator.matches(p, payload) {
                agreeing += 1;
                self.hosts[h.0 as usize].record_success();
            } else {
                self.hosts[h.0 as usize].record_invalid();
                self.metrics.invalid_results += 1;
                self.emit(
                    now,
                    Level::Warn,
                    "wu_invalid",
                    vec![
                        ("wu", wu_id.0.into()),
                        ("host", h.0.into()),
                        ("cause", "quorum".into()),
                    ],
                );
                self.apply_backoff(*h, now);
            }
        }
        self.metrics.completed += 1;
        self.emit(
            now,
            Level::Debug,
            "wu_completed",
            vec![("wu", wu_id.0.into()), ("host", winner.0.into())],
        );
        if self.cfg.quorum > 1 {
            self.emit(
                now,
                Level::Info,
                "wu_quorum_reached",
                vec![
                    ("wu", wu_id.0.into()),
                    ("host", winner.0.into()),
                    ("agreeing", agreeing.into()),
                    ("votes", total_votes.into()),
                ],
            );
        }
    }

    /// The validator rejected `host`'s upload for `wu_id`: drop the
    /// replica, penalize the host (as an *invalid*, not a timeout — the
    /// two stay disjoint in host stats and metrics), put it in fetch
    /// backoff, and re-queue if no replicas remain.
    pub fn report_invalid(&mut self, wu_id: WuId, host: HostId, now: SimTime) {
        self.metrics.invalid_results += 1;
        if self.tracing() {
            self.trace(
                now,
                TraceStage::Validate,
                wu_id,
                host,
                0.0,
                vec![("outcome", "invalid".into())],
            );
        }
        self.emit(
            now,
            Level::Warn,
            "wu_invalid",
            vec![
                ("wu", wu_id.0.into()),
                ("host", host.0.into()),
                ("cause", "validator".into()),
            ],
        );
        if self.release_assignment(wu_id, host) {
            self.hosts[host.0 as usize].record_invalid();
            self.apply_backoff(host, now);
            self.metrics.reassignments += 1;
            self.emit(
                now,
                Level::Info,
                "wu_reassigned",
                vec![("wu", wu_id.0.into()), ("cause", "invalid".into())],
            );
            self.ensure_queued(wu_id);
        }
    }

    /// Transitioner: expires assignments whose deadline passed, re-queuing
    /// their workunits and penalizing the hosts. Returns the workunits that
    /// lost at least one replica.
    ///
    /// Drains the timer queue instead of scanning workunits: O(1) when the
    /// earliest armed deadline lies ahead, O(due · log n) otherwise. Due
    /// entries are processed in `(workunit, issue)` order — the exact
    /// order of the historical full scan — so EWMA feeds, metrics,
    /// telemetry events and the returned list are bitwise-unchanged.
    pub fn scan_timeouts(&mut self, now: SimTime) -> Vec<WuId> {
        let wus = &self.wus;
        let mut due = self
            .timers
            .pop_due(now, |e| match &wus[e.wu.0 as usize].phase {
                WuPhase::InProgress { assignments } => assignments.iter().any(|a| a.seq == e.seq),
                _ => false,
            });
        let mut expired = Vec::new();
        if due.is_empty() {
            return expired;
        }
        due.sort_unstable_by_key(|e| (e.wu.0, e.seq));
        for i in 0..due.len() {
            let e = due[i];
            let wu_id = e.wu;
            // Liveness was established at pop time and no processing step
            // in this loop can remove another due entry's assignment
            // (each release targets exactly one seq), so the lookup holds.
            let (incarnation, issued_at, deadline) = {
                let WuPhase::InProgress { assignments } = &self.wus[wu_id.0 as usize].phase else {
                    unreachable!("due entry's workunit left InProgress mid-scan");
                };
                let a = assignments
                    .iter()
                    .find(|a| a.seq == e.seq)
                    .expect("due entry names a live assignment");
                (a.incarnation, a.issued_at, a.deadline)
            };
            self.release_assignment(wu_id, e.host);
            // An orphaned assignment (its incarnation died and a
            // replacement registered) still only resurfaces here — the
            // server learns about lost work through timeouts (§III-E) —
            // but the expiry is not the new incarnation's fault, so the
            // host record takes no penalty, EWMA growth, or backoff.
            if incarnation == self.hosts[e.host.0 as usize].lives {
                // Feed the EWMA a grown estimate of the blown deadline
                // so a slow-but-honest host earns a longer one next
                // time instead of timing out forever.
                let blown =
                    (deadline - issued_at) / self.cfg.deadline_grace * TIMEOUT_TURNAROUND_GROWTH;
                let alpha = self.cfg.deadline_alpha;
                let h = &mut self.hosts[e.host.0 as usize];
                h.record_timeout();
                h.record_turnaround(blown, alpha);
                self.apply_backoff(e.host, now);
            }
            self.metrics.timeouts += 1;
            self.metrics.reassignments += 1;
            self.emit(
                now,
                Level::Info,
                "wu_timeout",
                vec![("wu", wu_id.0.into()), ("host", e.host.0.into())],
            );
            self.emit(
                now,
                Level::Info,
                "wu_reassigned",
                vec![("wu", wu_id.0.into()), ("cause", "timeout".into())],
            );
            if expired.last() != Some(&wu_id) {
                expired.push(wu_id);
            }
            // Re-queue once per workunit, after its whole expiry group —
            // the historical scan's enqueue point.
            if due.get(i + 1).map(|n| n.wu) != Some(wu_id) {
                self.ensure_queued(wu_id);
            }
        }
        expired
    }

    /// Marks a host terminated (preempted). In-flight work is *not*
    /// immediately re-queued: like the real system, the server only learns
    /// through timeouts (§III-E).
    pub fn preempt_host(&mut self, id: HostId) {
        self.hosts[id.0 as usize].alive = false;
    }

    /// A replacement instance comes up for a terminated host slot. The dead
    /// incarnation's assignments are *orphaned*, not cancelled: the server
    /// still learns about the lost work only when their deadlines pass
    /// (§III-E), but that expiry is charged to the run metrics alone — the
    /// host record, now a fresh incarnation that never held the work, takes
    /// no timeout penalty or backoff for it. The in-flight ledger restarts
    /// at zero so the replacement cannot over-commit past
    /// `effective_slots`, and orphan expiry no longer decrements it. The
    /// sticky-file cache dies with the instance; reputation survives (it
    /// tracks the volunteer, not the instance), but any pending fetch
    /// backoff is lifted so the fresh instance gets an immediate probe.
    /// Reviving an already-live host is a no-op.
    pub fn revive_host(&mut self, id: HostId, now: SimTime) {
        if self.hosts[id.0 as usize].alive {
            return;
        }
        // The dead incarnations' still-armed assignments, counted O(1)
        // from the maintained ledger instead of a workunit scan.
        let orphaned = self.hosts[id.0 as usize].live_assignments as u64;
        self.metrics.revive_orphaned += orphaned;
        let h = &mut self.hosts[id.0 as usize];
        h.lives += 1;
        h.in_flight = 0;
        h.alive = true;
        h.clear_backoff();
        self.cold[id.0 as usize].cached_shards.clear();
        self.emit(
            now,
            Level::Info,
            "host_revived",
            vec![("host", id.0.into()), ("orphaned", orphaned.into())],
        );
    }

    /// Workunits still needing a result (maintained counter, O(1)).
    pub fn open_count(&self) -> usize {
        self.open
    }

    /// Workunits currently sitting in the work queue waiting for a host
    /// (the ops surface's backlog gauge; O(1)).
    pub fn queue_depth(&self) -> usize {
        self.queue.items.len()
    }

    /// True when all enqueued work has completed.
    pub fn all_done(&self) -> bool {
        self.open == 0
    }

    /// The workunit record for an id.
    pub fn workunit(&self, wu_id: WuId) -> &WorkUnit {
        &self.wus[wu_id.0 as usize].wu
    }

    /// Phase of a workunit (for tests and drivers).
    pub fn phase(&self, wu_id: WuId) -> &WuPhase {
        &self.wus[wu_id.0 as usize].phase
    }

    /// Attempts consumed by a workunit (all replicas counted).
    pub fn attempts(&self, wu_id: WuId) -> u32 {
        self.wus[wu_id.0 as usize].attempts
    }

    /// Results the scheduler currently wants for a workunit (replication
    /// factor, plus quorum-disagreement extensions).
    pub fn target_results(&self, wu_id: WuId) -> u32 {
        self.wus[wu_id.0 as usize].target_results
    }

    /// Banked quorum candidates for a workunit.
    pub fn candidate_count(&self, wu_id: WuId) -> usize {
        self.wus[wu_id.0 as usize].candidates.len()
    }

    /// Earliest in-progress deadline, for event-driven timeout scans.
    /// Prunes stale timer entries from the heap top on the way (hence
    /// `&mut`); amortized O(1).
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        let wus = &self.wus;
        self.timers
            .next_deadline(|e| match &wus[e.wu.0 as usize].phase {
                WuPhase::InProgress { assignments } => assignments.iter().any(|a| a.seq == e.seq),
                _ => false,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_simnet::table1;

    fn server(hosts: usize, slots: usize) -> BoincServer {
        let fleet = (0..hosts)
            .map(|_| (table1::client_8v_2_2(), slots))
            .collect();
        BoincServer::new(MiddlewareConfig::default(), fleet)
    }

    fn replicated(hosts: usize, slots: usize, replication: u32) -> BoincServer {
        let fleet = (0..hosts)
            .map(|_| (table1::client_8v_2_2(), slots))
            .collect();
        BoincServer::new(
            MiddlewareConfig {
                replication,
                ..Default::default()
            },
            fleet,
        )
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fifo_assignment_and_completion() {
        let mut s = server(1, 2);
        s.add_epoch(1, 3, 7, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        assert_eq!(a.wu.shard_id, 0);
        assert_eq!(a.wu.param_version, 7);
        assert_eq!(a.attempt, 1);
        assert!(!a.shard_cached);
        let b = s.request_work(HostId(0), t(0.0)).unwrap();
        assert_eq!(b.wu.shard_id, 1);
        // Two slots full.
        assert!(s.request_work(HostId(0), t(0.0)).is_none());
        assert_eq!(
            s.report_success(a.wu.id, HostId(0), t(10.0)),
            ReportStatus::Accepted
        );
        // Slot freed; third workunit assignable.
        let c = s.request_work(HostId(0), t(10.0)).unwrap();
        assert_eq!(c.wu.shard_id, 2);
        assert_eq!(s.open_count(), 2);
    }

    #[test]
    fn sticky_files_prefer_cached_shards() {
        let mut s = server(1, 1);
        s.add_workunit(1, 5, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        s.report_success(a.wu.id, HostId(0), t(1.0));
        // Epoch 2: shards 3 and 5 queued; host caches shard 5.
        s.add_workunit(2, 3, 2, t(1.0));
        s.add_workunit(2, 5, 2, t(1.0));
        let b = s.request_work(HostId(0), t(1.0)).unwrap();
        assert_eq!(b.wu.shard_id, 5, "cached shard preferred over FIFO");
        assert!(b.shard_cached);
        assert_eq!(s.metrics().cache_hits, 1);
    }

    #[test]
    fn sticky_disabled_is_fifo() {
        let mut s = BoincServer::new(
            MiddlewareConfig {
                sticky_files: false,
                ..Default::default()
            },
            vec![(table1::client_8v_2_2(), 1)],
        );
        s.add_workunit(1, 5, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        s.report_success(a.wu.id, HostId(0), t(1.0));
        s.add_workunit(2, 3, 2, t(1.0));
        s.add_workunit(2, 5, 2, t(1.0));
        let b = s.request_work(HostId(0), t(1.0)).unwrap();
        assert_eq!(b.wu.shard_id, 3, "FIFO when sticky files off");
    }

    #[test]
    fn timeout_requeues_and_penalizes() {
        let mut s = server(2, 1);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        assert_eq!(a.deadline, t(300.0));
        assert!(s.scan_timeouts(t(299.0)).is_empty());
        let expired = s.scan_timeouts(t(300.0));
        assert_eq!(expired, vec![a.wu.id]);
        assert!(s.hosts()[0].reliability < 1.0);
        assert_eq!(s.metrics().timeouts, 1);
        // Reassignable to the other host with attempt 2.
        let b = s.request_work(HostId(1), t(300.0)).unwrap();
        assert_eq!(b.wu.id, a.wu.id);
        assert_eq!(b.attempt, 2);
    }

    #[test]
    fn late_result_after_timeout_is_accepted_if_unclaimed() {
        let mut s = server(1, 1);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        s.scan_timeouts(t(301.0));
        // The original host finally uploads.
        assert_eq!(
            s.report_success(a.wu.id, HostId(0), t(302.0)),
            ReportStatus::Accepted
        );
        assert!(s.all_done());
        // And the queue no longer re-issues it.
        assert!(s.request_work(HostId(0), t(303.0)).is_none());
    }

    #[test]
    fn double_report_is_stale() {
        let mut s = server(2, 1);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        s.scan_timeouts(t(301.0));
        let b = s.request_work(HostId(1), t(301.0)).unwrap();
        assert_eq!(a.wu.id, b.wu.id);
        // New assignee completes first.
        assert_eq!(
            s.report_success(b.wu.id, HostId(1), t(400.0)),
            ReportStatus::Accepted
        );
        // Original host's late upload and a double-report are both stale.
        assert_eq!(
            s.report_success(a.wu.id, HostId(0), t(401.0)),
            ReportStatus::Stale
        );
        assert_eq!(
            s.report_success(b.wu.id, HostId(1), t(402.0)),
            ReportStatus::Stale
        );
        assert_eq!(s.metrics().stale_results, 2);
    }

    #[test]
    fn invalid_result_requeues_after_backoff() {
        let mut s = server(1, 1);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        s.report_invalid(a.wu.id, HostId(0), t(5.0));
        assert_eq!(s.metrics().invalid_results, 1);
        assert_eq!(s.open_count(), 1);
        // The offender sits out its fetch backoff (15 s base) first...
        assert!(s.request_work(HostId(0), t(5.0)).is_none());
        assert!(s.hosts()[0].in_backoff(t(19.9)));
        // ...and the penalty is an invalid, not a timeout.
        assert_eq!((s.hosts()[0].invalids, s.hosts()[0].timeouts), (1, 0));
        assert_eq!(s.metrics().timeouts, 0);
        let b = s.request_work(HostId(0), t(20.0)).unwrap();
        assert_eq!(b.wu.id, a.wu.id);
        assert_eq!(b.attempt, 2);
    }

    #[test]
    fn preempted_host_recovers_via_timeout() {
        let mut s = server(2, 2);
        s.add_epoch(1, 2, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        let b = s.request_work(HostId(0), t(0.0)).unwrap();
        s.preempt_host(HostId(0));
        // Dead host takes no more work...
        assert!(s.request_work(HostId(0), t(1.0)).is_none());
        // ...and its in-flight work only resurfaces at the deadline.
        assert!(s.scan_timeouts(t(100.0)).is_empty());
        let expired = s.scan_timeouts(t(300.0));
        assert_eq!(expired.len(), 2);
        assert!(expired.contains(&a.wu.id) && expired.contains(&b.wu.id));
        // The healthy host finishes the job.
        let c = s.request_work(HostId(1), t(300.0)).unwrap();
        let d = s.request_work(HostId(1), t(300.0)).unwrap();
        s.report_success(c.wu.id, HostId(1), t(350.0));
        s.report_success(d.wu.id, HostId(1), t(360.0));
        assert!(s.all_done());
    }

    #[test]
    fn revive_clears_cache_and_inflight() {
        let mut s = server(1, 2);
        s.add_workunit(1, 9, 1, t(0.0));
        s.request_work(HostId(0), t(0.0)).unwrap();
        s.preempt_host(HostId(0));
        s.revive_host(HostId(0), t(1.0));
        assert!(s.hosts()[0].alive);
        assert!(s.cached_shards(HostId(0)).is_empty());
        assert_eq!(s.hosts()[0].in_flight, 0);
    }

    #[test]
    fn revive_orphans_stale_assignments_without_penalty() {
        let mut s = server(2, 2);
        s.add_epoch(1, 4, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        let b = s.request_work(HostId(0), t(0.0)).unwrap();
        s.preempt_host(HostId(0));
        s.revive_host(HostId(0), t(10.0));
        // The dead incarnation's assignments stay in flight — the server
        // only learns about lost work through timeouts (§III-E) — but the
        // replacement's ledger starts clean: it takes a full complement of
        // *fresh* work immediately, with no over-commit past its slots.
        assert_eq!(s.metrics().revive_orphaned, 2);
        assert_eq!(s.hosts()[0].in_flight, 0);
        let c = s.request_work(HostId(0), t(10.0)).unwrap();
        let d = s.request_work(HostId(0), t(10.0)).unwrap();
        assert!(s.request_work(HostId(0), t(10.0)).is_none());
        assert!(c.wu.id != a.wu.id && d.wu.id != a.wu.id);
        // When the orphans' deadlines pass the work is recovered and the
        // run-level timeout metric counts the loss...
        let expired = s.scan_timeouts(t(300.5));
        assert!(expired.contains(&a.wu.id) && expired.contains(&b.wu.id));
        assert_eq!(s.metrics().timeouts, 2);
        // ...but the new incarnation is not blamed: reputation, backoff and
        // the ledger for its own live work are untouched.
        assert_eq!(s.hosts()[0].reliability, 1.0);
        assert_eq!(s.hosts()[0].timeouts, 0);
        assert!(!s.hosts()[0].in_backoff(t(300.5)));
        assert_eq!(s.hosts()[0].in_flight, 2);
        // Reviving a live host changes nothing.
        s.revive_host(HostId(0), t(301.0));
        assert_eq!(s.hosts()[0].in_flight, 2);
        assert_eq!(s.metrics().revive_orphaned, 2);
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let mut s = server(2, 1);
        s.add_epoch(1, 2, 1, t(0.0));
        assert_eq!(s.next_deadline(), None);
        s.request_work(HostId(0), t(0.0)).unwrap();
        let mut q = vc_simnet::EventQueue::<()>::new();
        q.schedule(t(50.0), ());
        q.pop();
        s.request_work(HostId(1), t(50.0)).unwrap();
        assert_eq!(s.next_deadline(), Some(t(300.0)));
    }

    #[test]
    fn next_deadline_skips_completed_assignments() {
        let mut s = server(2, 1);
        s.add_epoch(1, 2, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        let b = s.request_work(HostId(1), t(10.0)).unwrap();
        assert_eq!(s.next_deadline(), Some(t(300.0)));
        // First assignment completes: its timer entry is stale and must be
        // pruned, revealing the later deadline.
        s.report_success(a.wu.id, HostId(0), t(20.0));
        assert_eq!(s.next_deadline(), Some(b.deadline));
        s.report_success(b.wu.id, HostId(1), t(30.0));
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn unreliable_host_gets_fewer_slots() {
        let mut s = server(1, 4);
        s.add_epoch(1, 20, 1, t(0.0));
        // Burn reliability with repeated timeouts.
        for round in 0..6 {
            let now = t(round as f64 * 400.0);
            while s.request_work(HostId(0), now).is_some() {}
            s.scan_timeouts(t(round as f64 * 400.0 + 301.0));
        }
        let h = &s.hosts()[0];
        assert!(h.effective_slots() < 4, "slots {}", h.effective_slots());
    }

    // ----------------------------------------------------- replication

    #[test]
    fn replication_issues_to_distinct_hosts() {
        let mut s = replicated(3, 2, 2);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        // Same host cannot take the second replica.
        assert!(s.request_work(HostId(0), t(0.0)).is_none());
        let b = s.request_work(HostId(1), t(0.0)).unwrap();
        assert_eq!(a.wu.id, b.wu.id);
        assert_eq!(s.phase(a.wu.id).replica_count(), 2);
        // Cap reached: a third host gets nothing.
        assert!(s.request_work(HostId(2), t(0.0)).is_none());
    }

    #[test]
    fn first_replica_wins_and_cancels_the_other() {
        let mut s = replicated(2, 1, 2);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        let b = s.request_work(HostId(1), t(0.0)).unwrap();
        assert_eq!(
            s.report_success(a.wu.id, HostId(0), t(50.0)),
            ReportStatus::Accepted
        );
        // Loser's slot was freed by cancellation...
        assert_eq!(s.hosts()[1].in_flight, 0);
        assert_eq!(s.metrics().cancelled_replicas, 1);
        // ...and its late upload is stale without penalty.
        let rel_before = s.hosts()[1].reliability;
        assert_eq!(
            s.report_success(b.wu.id, HostId(1), t(60.0)),
            ReportStatus::Stale
        );
        assert_eq!(s.hosts()[1].reliability, rel_before);
        assert!(s.all_done());
    }

    #[test]
    fn replica_timeout_leaves_other_replica_running() {
        let mut s = replicated(2, 1, 2);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        // Second replica starts later, so its deadline is later.
        let mut q = vc_simnet::EventQueue::<()>::new();
        q.schedule(t(100.0), ());
        q.pop();
        let b = s.request_work(HostId(1), t(100.0)).unwrap();
        assert_eq!(a.wu.id, b.wu.id);
        // First replica expires at 300; second still lives.
        let expired = s.scan_timeouts(t(301.0));
        assert_eq!(expired, vec![a.wu.id]);
        assert_eq!(s.phase(a.wu.id).replica_count(), 1);
        // Workunit is open and re-queued (it lost a replica); the timed-out
        // host re-takes it once its fetch backoff (15 s) expires.
        assert!(s.request_work(HostId(0), t(301.0)).is_none());
        let c = s.request_work(HostId(0), t(317.0)).unwrap();
        assert_eq!(c.wu.id, a.wu.id);
        // Host 1 finishes; everyone else is cancelled.
        assert_eq!(
            s.report_success(b.wu.id, HostId(1), t(350.0)),
            ReportStatus::Accepted
        );
        assert!(s.all_done());
        assert_eq!(s.hosts()[0].in_flight, 0, "cancelled replica freed slot");
    }

    #[test]
    fn replication_one_is_the_classic_behaviour() {
        let mut s = replicated(2, 1, 1);
        s.add_workunit(1, 0, 1, t(0.0));
        let _a = s.request_work(HostId(0), t(0.0)).unwrap();
        // Second host cannot take a replica at replication = 1.
        assert!(s.request_work(HostId(1), t(0.0)).is_none());
    }

    // ------------------------------------------------ adaptive deadlines

    #[test]
    fn deadline_adapts_to_observed_turnaround() {
        let mut s = server(1, 1);
        s.add_epoch(1, 3, 1, t(0.0));
        // Unseeded host: the configured timeout applies verbatim.
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        assert_eq!(a.deadline, t(300.0));
        s.report_success(a.wu.id, HostId(0), t(10.0));
        // One 10 s observation seeds the EWMA; grace 3 × 10 = 30 (the
        // floor), far below the old fixed 300.
        let b = s.request_work(HostId(0), t(10.0)).unwrap();
        assert_eq!(b.deadline, t(40.0));
        // A slower result drags the EWMA (and deadline) back up.
        s.report_success(b.wu.id, HostId(0), t(110.0));
        let c = s.request_work(HostId(0), t(110.0)).unwrap();
        let granted = c.deadline - t(110.0);
        assert!(
            granted > 30.0 && granted < 300.0,
            "blended deadline: {granted}"
        );
    }

    #[test]
    fn timeout_grows_the_next_deadline() {
        let mut s = BoincServer::new(
            MiddlewareConfig {
                timeout_s: 10.0,
                min_timeout_s: 10.0,
                backoff_base_s: 0.0,
                ..Default::default()
            },
            vec![(table1::client_8v_2_2(), 1)],
        );
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        assert_eq!(a.deadline, t(10.0));
        s.scan_timeouts(t(11.0));
        // The blown 10 s deadline feeds the EWMA as (10/grace)·1.5, so the
        // re-issue gets 1.5× the old allowance instead of timing out on the
        // same fixed clock forever.
        let b = s.request_work(HostId(0), t(11.0)).unwrap();
        let granted = b.deadline - t(11.0);
        assert!((granted - 15.0).abs() < 1e-9, "granted {granted}");
    }

    #[test]
    fn deadline_clamp_is_widened_by_an_extreme_timeout_s() {
        // timeout_s below min_timeout_s: the clamp floor follows timeout_s
        // down, so a fast-turnaround config is not silently raised.
        let cfg = MiddlewareConfig {
            timeout_s: 2.0,
            min_timeout_s: 30.0,
            ..Default::default()
        };
        let mut s = BoincServer::new(cfg, vec![(table1::client_8v_2_2(), 1)]);
        s.add_epoch(1, 2, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        assert_eq!(a.deadline, t(2.0), "unseeded: configured timeout");
        s.report_success(a.wu.id, HostId(0), t(0.5));
        let b = s.request_work(HostId(0), t(0.5)).unwrap();
        assert_eq!(b.deadline - t(0.5), 2.0, "clamped to timeout_s, not 30");
    }

    // -------------------------------------------------- backoff & fetch

    #[test]
    fn backoff_blocks_fetch_until_it_expires() {
        let mut s = BoincServer::new(
            MiddlewareConfig {
                timeout_s: 10.0,
                min_timeout_s: 10.0,
                backoff_base_s: 5.0,
                backoff_max_s: 40.0,
                ..Default::default()
            },
            vec![(table1::client_8v_2_2(), 1); 2],
        );
        s.add_epoch(1, 2, 1, t(0.0));
        s.request_work(HostId(0), t(0.0)).unwrap();
        s.scan_timeouts(t(10.0));
        assert_eq!(s.metrics().backoffs, 1);
        // Barred for 5 s; the other host is unaffected.
        assert!(s.request_work(HostId(0), t(12.0)).is_none());
        let b = s.request_work(HostId(1), t(12.0)).unwrap();
        assert!(s.request_work(HostId(0), t(15.0)).is_some());
        // Success clears the streak entirely.
        s.report_success(b.wu.id, HostId(1), t(16.0));
        assert!(!s.hosts()[1].in_backoff(t(16.0)));
    }

    // ------------------------------------------------------------ quorum

    fn quorate(hosts: usize, replication: u32, quorum: u32) -> BoincServer {
        let fleet = (0..hosts).map(|_| (table1::client_8v_2_2(), 2)).collect();
        BoincServer::new(
            MiddlewareConfig {
                replication,
                quorum,
                ..Default::default()
            },
            fleet,
        )
    }

    #[test]
    fn quorum_two_pends_until_agreement() {
        let mut s = quorate(2, 2, 2);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        let b = s.request_work(HostId(1), t(0.0)).unwrap();
        assert_eq!(a.wu.id, b.wu.id);
        let result = [1.0f32, 2.0, 3.0];
        assert_eq!(
            s.report_result(a.wu.id, HostId(0), &result, t(5.0)),
            ReportStatus::Pending
        );
        assert!(s.phase(a.wu.id).is_open(), "one vote is not a quorum");
        assert_eq!(s.candidate_count(a.wu.id), 1);
        assert_eq!(
            s.report_result(b.wu.id, HostId(1), &result, t(6.0)),
            ReportStatus::Accepted
        );
        assert!(s.all_done());
        // Both quorum members are credited.
        assert_eq!(s.hosts()[0].completed, 1);
        assert_eq!(s.hosts()[1].completed, 1);
        assert_eq!(s.metrics().completed, 1);
    }

    #[test]
    fn quorum_disagreement_extends_target_and_penalizes_loser() {
        let mut s = quorate(3, 2, 2);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        let b = s.request_work(HostId(1), t(0.0)).unwrap();
        // Host 0 uploads a poisoned result, host 1 the honest one.
        assert_eq!(
            s.report_result(a.wu.id, HostId(0), &[999.0], t(5.0)),
            ReportStatus::Pending
        );
        assert_eq!(
            s.report_result(b.wu.id, HostId(1), &[1.0], t(6.0)),
            ReportStatus::Pending
        );
        // Two disagreeing votes, none outstanding: the target grows so a
        // tie-breaker replica can be issued.
        assert!(s.target_results(a.wu.id) > 2);
        assert!(s.metrics().quorum_disagreements > 0);
        let c = s.request_work(HostId(2), t(7.0)).unwrap();
        assert_eq!(c.wu.id, a.wu.id);
        assert_eq!(
            s.report_result(c.wu.id, HostId(2), &[1.0], t(12.0)),
            ReportStatus::Accepted
        );
        assert!(s.all_done());
        // Winners credited; the outvoted host penalized like a validator
        // reject (invalid, not timeout) and sent into backoff.
        assert_eq!(s.hosts()[1].completed, 1);
        assert_eq!(s.hosts()[2].completed, 1);
        assert_eq!(s.hosts()[0].completed, 0);
        assert_eq!(s.hosts()[0].invalids, 1);
        assert_eq!(s.metrics().invalid_results, 1);
        assert!(s.hosts()[0].in_backoff(t(13.0)));
        assert!(s.hosts()[0].reliability < s.hosts()[1].reliability);
    }

    #[test]
    fn quorum_rejects_double_votes() {
        let mut s = quorate(2, 2, 2);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        assert_eq!(
            s.report_result(a.wu.id, HostId(0), &[1.0], t(5.0)),
            ReportStatus::Pending
        );
        // The same host cannot vote itself into a quorum.
        assert_eq!(
            s.report_result(a.wu.id, HostId(0), &[1.0], t(6.0)),
            ReportStatus::Stale
        );
        assert_eq!(s.candidate_count(a.wu.id), 1);
        // Nor re-take the workunit it already voted on.
        assert!(s.request_work(HostId(0), t(7.0)).is_none());
    }

    #[test]
    fn tolerance_comparator_closes_quorum_on_close_results() {
        let mut s = quorate(2, 2, 2);
        s.set_comparator(Box::new(crate::ToleranceComparator {
            atol: 1e-3,
            rtol: 0.0,
        }));
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        let b = s.request_work(HostId(1), t(0.0)).unwrap();
        assert_eq!(
            s.report_result(a.wu.id, HostId(0), &[1.0], t(5.0)),
            ReportStatus::Pending
        );
        assert_eq!(
            s.report_result(b.wu.id, HostId(1), &[1.0005], t(6.0)),
            ReportStatus::Accepted
        );
        assert!(s.all_done());
    }

    #[test]
    fn quorum_turnaround_feeds_the_deadline_of_both_replicas() {
        let mut s = quorate(2, 2, 2);
        s.add_workunit(1, 0, 1, t(0.0));
        s.add_workunit(1, 1, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        let b = s.request_work(HostId(1), t(0.0)).unwrap();
        s.report_result(a.wu.id, HostId(0), &[1.0], t(20.0));
        s.report_result(b.wu.id, HostId(1), &[1.0], t(40.0));
        assert_eq!(s.hosts()[0].turnaround_ewma_s, Some(20.0));
        assert_eq!(s.hosts()[1].turnaround_ewma_s, Some(40.0));
    }

    #[test]
    fn config_validation_rejects_inconsistent_knobs() {
        let bad_quorum = MiddlewareConfig {
            replication: 2,
            quorum: 3,
            ..Default::default()
        };
        assert!(bad_quorum.validate().is_err());
        let bad_bounds = MiddlewareConfig {
            min_timeout_s: 100.0,
            max_timeout_s: 10.0,
            ..Default::default()
        };
        assert!(bad_bounds.validate().is_err());
        let bad_backoff = MiddlewareConfig {
            backoff_base_s: 10.0,
            backoff_max_s: 1.0,
            ..Default::default()
        };
        assert!(bad_backoff.validate().is_err());
        assert!(MiddlewareConfig::default().validate().is_ok());
    }

    #[test]
    fn same_instant_deadlines_expire_in_issue_order() {
        let mut s = server(3, 1);
        s.add_epoch(1, 3, 1, t(0.0));
        // Three hosts take three workunits at the same instant — identical
        // deadlines, tie broken by the issue sequence.
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        let b = s.request_work(HostId(1), t(0.0)).unwrap();
        let c = s.request_work(HostId(2), t(0.0)).unwrap();
        let expired = s.scan_timeouts(t(300.0));
        assert_eq!(expired, vec![a.wu.id, b.wu.id, c.wu.id]);
        assert_eq!(s.metrics().timeouts, 3);
    }
}
