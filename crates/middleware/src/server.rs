//! The BOINC-like server: scheduler + transitioner in one state machine.

use crate::host::{HostId, HostRecord};
use crate::workunit::{ActiveAssignment, WorkUnit, WuId, WuPhase};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use vc_simnet::{InstanceSpec, SimTime};
use vc_telemetry::{FieldValue, Level, Telemetry};

/// Server-side policy knobs (BOINC project configuration).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MiddlewareConfig {
    /// Result timeout `t_o`: how long after assignment the transitioner
    /// declares a replica lost and re-queues the workunit. Paper: 5 min.
    pub timeout_s: f64,
    /// Attempts after which a workunit is still re-queued but counted as
    /// pathological (surfaced in metrics; BOINC would error the workunit).
    pub max_attempts: u32,
    /// Enable sticky-file locality-aware assignment (§III-B).
    pub sticky_files: bool,
    /// Replication factor: how many hosts may execute the same workunit
    /// concurrently for redundancy (§II-C). 1 disables replication.
    pub replication: u32,
}

impl Default for MiddlewareConfig {
    fn default() -> Self {
        MiddlewareConfig {
            timeout_s: 300.0,
            max_attempts: 8,
            sticky_files: true,
            replication: 1,
        }
    }
}

/// Counters the server maintains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerMetrics {
    /// Workunit assignments handed to clients (replicas included).
    pub assigned: u64,
    /// Accepted results.
    pub completed: u64,
    /// Timeout events (one per expired assignment).
    pub timeouts: u64,
    /// Workunits put back in the queue after timeout or invalid result.
    pub reassignments: u64,
    /// Results arriving for workunits no longer open to the reporter.
    pub stale_results: u64,
    /// Results rejected by the validator.
    pub invalid_results: u64,
    /// Shard downloads avoided by the sticky-file cache.
    pub cache_hits: u64,
    /// Redundant replicas cancelled because another host finished first.
    pub cancelled_replicas: u64,
}

/// What a client receives from [`BoincServer::request_work`].
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// The workunit to execute.
    pub wu: WorkUnit,
    /// 1-based attempt number.
    pub attempt: u32,
    /// True when the host already holds the shard (no data download).
    pub shard_cached: bool,
    /// Completion deadline the transitioner will enforce.
    pub deadline: SimTime,
}

/// Outcome of reporting a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportStatus {
    /// First valid result for this workunit: assimilate it.
    Accepted,
    /// The workunit was already completed; discard the payload.
    Stale,
}

struct WuRecord {
    wu: WorkUnit,
    phase: WuPhase,
    attempts: u32,
    queued: bool,
}

/// The in-process BOINC server.
pub struct BoincServer {
    cfg: MiddlewareConfig,
    hosts: Vec<HostRecord>,
    wus: Vec<WuRecord>,
    queue: VecDeque<WuId>,
    metrics: ServerMetrics,
    telemetry: Option<Telemetry>,
}

impl BoincServer {
    /// Builds a server over a fleet; `slots[i]` is host `i`'s simultaneous-
    /// subtask limit (the paper's `Tn`).
    pub fn new(cfg: MiddlewareConfig, fleet: Vec<(InstanceSpec, usize)>) -> Self {
        assert!(!fleet.is_empty(), "a server needs at least one host");
        assert!(cfg.replication >= 1, "replication factor must be >= 1");
        let hosts = fleet
            .into_iter()
            .enumerate()
            .map(|(i, (spec, slots))| HostRecord::new(HostId(i as u32), spec, slots))
            .collect();
        BoincServer {
            cfg,
            hosts,
            wus: Vec::new(),
            queue: VecDeque::new(),
            metrics: ServerMetrics::default(),
            telemetry: None,
        }
    }

    /// Attaches a telemetry handle: workunit lifecycle transitions
    /// (assign, complete, stale, invalid, timeout, reassign) become
    /// structured events timestamped with the caller's `now`.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.telemetry = Some(tel);
    }

    /// Emits one lifecycle event at `now` (no-op without telemetry).
    fn emit(&self, now: SimTime, level: Level, name: &str, fields: Vec<(&str, FieldValue)>) {
        if let Some(tel) = &self.telemetry {
            tel.event_at(now.as_secs(), level, name, fields);
        }
    }

    /// Server configuration.
    pub fn config(&self) -> &MiddlewareConfig {
        &self.cfg
    }

    /// Registered hosts.
    pub fn hosts(&self) -> &[HostRecord] {
        &self.hosts
    }

    /// Mutable host access (drivers flip `alive` on preemption).
    pub fn host_mut(&mut self, id: HostId) -> &mut HostRecord {
        &mut self.hosts[id.0 as usize]
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> ServerMetrics {
        self.metrics
    }

    /// Work generator entry point: enqueues one subtask.
    pub fn add_workunit(
        &mut self,
        epoch: usize,
        shard_id: usize,
        param_version: u64,
        now: SimTime,
    ) -> WuId {
        let id = WuId(self.wus.len() as u64);
        self.wus.push(WuRecord {
            wu: WorkUnit {
                id,
                epoch,
                shard_id,
                param_version,
                created_at: now,
            },
            phase: WuPhase::Unsent,
            attempts: 0,
            queued: true,
        });
        self.queue.push_back(id);
        id
    }

    /// Enqueues one epoch's worth of subtasks (one per shard).
    pub fn add_epoch(&mut self, epoch: usize, shards: usize, param_version: u64, now: SimTime) {
        for s in 0..shards {
            self.add_workunit(epoch, s, param_version, now);
        }
    }

    /// True when `host` may take a replica of `wu_id` (workunit open, below
    /// the replication cap, and not already running on this host).
    fn assignable_to(&self, wu_id: WuId, host: HostId) -> bool {
        let rec = &self.wus[wu_id.0 as usize];
        match &rec.phase {
            WuPhase::Unsent => true,
            WuPhase::InProgress { assignments } => {
                assignments.len() < self.cfg.replication as usize
                    && assignments.iter().all(|a| a.host != host)
            }
            WuPhase::Done { .. } => false,
        }
    }

    /// Scheduler: host `host` asks for work at `now`. Returns at most one
    /// assignment per call; callers loop while slots remain. Prefers a
    /// queued workunit whose shard the host already caches (sticky files),
    /// falling back to FIFO order.
    pub fn request_work(&mut self, host: HostId, now: SimTime) -> Option<Assignment> {
        if !self.hosts[host.0 as usize].has_capacity() {
            return None;
        }
        // Candidate positions in the queue this host may take.
        let cached_pick = if self.cfg.sticky_files {
            self.queue.iter().position(|&id| {
                self.assignable_to(id, host)
                    && self.hosts[host.0 as usize]
                        .cached_shards
                        .contains(&self.wus[id.0 as usize].wu.shard_id)
            })
        } else {
            None
        };
        let pick = cached_pick.or_else(|| {
            self.queue
                .iter()
                .position(|&id| self.assignable_to(id, host))
        })?;

        let wu_id = self.queue[pick];
        let rec = &mut self.wus[wu_id.0 as usize];
        rec.attempts += 1;
        let deadline = now + self.cfg.timeout_s;
        let assignment = ActiveAssignment {
            host,
            deadline,
            attempt: rec.attempts,
        };
        match &mut rec.phase {
            WuPhase::Unsent => {
                rec.phase = WuPhase::InProgress {
                    assignments: vec![assignment],
                };
            }
            WuPhase::InProgress { assignments } => assignments.push(assignment),
            WuPhase::Done { .. } => unreachable!("assignable_to filtered Done"),
        }
        // Leave the workunit queued while it still wants more replicas.
        if rec.phase.replica_count() >= self.cfg.replication as usize {
            self.queue.remove(pick);
            // rec borrow ended above; re-borrow to flip the flag
            self.wus[wu_id.0 as usize].queued = false;
        }

        let attempt = self.wus[wu_id.0 as usize].attempts;
        let shard_id = self.wus[wu_id.0 as usize].wu.shard_id;
        let h = &mut self.hosts[host.0 as usize];
        h.in_flight += 1;
        let shard_cached = h.cached_shards.contains(&shard_id);
        if shard_cached {
            self.metrics.cache_hits += 1;
        } else {
            h.cached_shards.insert(shard_id);
        }
        self.metrics.assigned += 1;
        self.emit(
            now,
            Level::Debug,
            "wu_assigned",
            vec![
                ("wu", wu_id.0.into()),
                ("host", host.0.into()),
                ("attempt", attempt.into()),
                ("shard", shard_id.into()),
                ("cached", shard_cached.into()),
            ],
        );
        Some(Assignment {
            wu: self.wus[wu_id.0 as usize].wu.clone(),
            attempt,
            shard_cached,
            deadline,
        })
    }

    /// Removes `host`'s live assignment on `wu_id` (if any), freeing its
    /// slot. Returns whether an assignment was removed.
    fn release_assignment(&mut self, wu_id: WuId, host: HostId) -> bool {
        let rec = &mut self.wus[wu_id.0 as usize];
        if let WuPhase::InProgress { assignments } = &mut rec.phase {
            if let Some(pos) = assignments.iter().position(|a| a.host == host) {
                assignments.remove(pos);
                if assignments.is_empty() {
                    rec.phase = WuPhase::Unsent;
                }
                let h = &mut self.hosts[host.0 as usize];
                h.in_flight = h.in_flight.saturating_sub(1);
                return true;
            }
        }
        false
    }

    /// Puts an open workunit back in the queue if it is not already there.
    fn ensure_queued(&mut self, wu_id: WuId) {
        let rec = &mut self.wus[wu_id.0 as usize];
        if rec.phase.is_open() && !rec.queued {
            rec.queued = true;
            self.queue.push_back(wu_id);
        }
    }

    /// A client uploads a (already validated) result. First valid result
    /// wins; anything else is stale. Late results for still-open workunits
    /// are accepted (BOINC behaviour).
    pub fn report_success(&mut self, wu_id: WuId, host: HostId, now: SimTime) -> ReportStatus {
        if !self.wus[wu_id.0 as usize].phase.is_open() {
            // Free the reporter's slot if it still held a (cancelled)
            // replica record — by construction it does not, but the call is
            // idempotent either way.
            self.release_assignment(wu_id, host);
            self.metrics.stale_results += 1;
            self.emit(
                now,
                Level::Debug,
                "wu_stale",
                vec![("wu", wu_id.0.into()), ("host", host.0.into())],
            );
            return ReportStatus::Stale;
        }
        // Winner: release this host's assignment (if it timed out earlier
        // this is a no-op), cancel every other replica, mark done.
        self.release_assignment(wu_id, host);
        let others = self.wus[wu_id.0 as usize].phase.running_on();
        for other in others {
            self.release_assignment(wu_id, other);
            self.metrics.cancelled_replicas += 1;
        }
        let rec = &mut self.wus[wu_id.0 as usize];
        rec.phase = WuPhase::Done { host, at: now };
        if rec.queued {
            rec.queued = false;
            if let Some(pos) = self.queue.iter().position(|&q| q == wu_id) {
                self.queue.remove(pos);
            }
        }
        self.hosts[host.0 as usize].record_success();
        self.metrics.completed += 1;
        self.emit(
            now,
            Level::Debug,
            "wu_completed",
            vec![("wu", wu_id.0.into()), ("host", host.0.into())],
        );
        ReportStatus::Accepted
    }

    /// The validator rejected `host`'s upload for `wu_id`: drop the replica
    /// and penalize the host; re-queue if no replicas remain.
    pub fn report_invalid(&mut self, wu_id: WuId, host: HostId, now: SimTime) {
        self.metrics.invalid_results += 1;
        self.emit(
            now,
            Level::Warn,
            "wu_invalid",
            vec![("wu", wu_id.0.into()), ("host", host.0.into())],
        );
        if self.release_assignment(wu_id, host) {
            self.hosts[host.0 as usize].record_timeout();
            self.metrics.reassignments += 1;
            self.emit(
                now,
                Level::Info,
                "wu_reassigned",
                vec![("wu", wu_id.0.into()), ("cause", "invalid".into())],
            );
            self.ensure_queued(wu_id);
        }
    }

    /// Transitioner: expires assignments whose deadline passed, re-queuing
    /// their workunits and penalizing the hosts. Returns the workunits that
    /// lost at least one replica.
    pub fn scan_timeouts(&mut self, now: SimTime) -> Vec<WuId> {
        let mut expired = Vec::new();
        for i in 0..self.wus.len() {
            let wu_id = WuId(i as u64);
            loop {
                let victim = match &self.wus[i].phase {
                    WuPhase::InProgress { assignments } => assignments
                        .iter()
                        .find(|a| a.deadline <= now)
                        .map(|a| a.host),
                    _ => None,
                };
                let Some(host) = victim else { break };
                self.release_assignment(wu_id, host);
                self.hosts[host.0 as usize].record_timeout();
                self.metrics.timeouts += 1;
                self.metrics.reassignments += 1;
                self.emit(
                    now,
                    Level::Info,
                    "wu_timeout",
                    vec![("wu", wu_id.0.into()), ("host", host.0.into())],
                );
                self.emit(
                    now,
                    Level::Info,
                    "wu_reassigned",
                    vec![("wu", wu_id.0.into()), ("cause", "timeout".into())],
                );
                if expired.last() != Some(&wu_id) {
                    expired.push(wu_id);
                }
            }
            if expired.last() == Some(&wu_id) {
                self.ensure_queued(wu_id);
            }
        }
        expired
    }

    /// Marks a host terminated (preempted). In-flight work is *not*
    /// immediately re-queued: like the real system, the server only learns
    /// through timeouts (§III-E).
    pub fn preempt_host(&mut self, id: HostId) {
        self.hosts[id.0 as usize].alive = false;
    }

    /// A replacement instance comes up for a terminated host slot. The
    /// sticky-file cache is lost with the instance.
    pub fn revive_host(&mut self, id: HostId) {
        let h = &mut self.hosts[id.0 as usize];
        h.alive = true;
        h.cached_shards.clear();
        h.in_flight = 0;
    }

    /// Workunits still needing a result.
    pub fn open_count(&self) -> usize {
        self.wus.iter().filter(|r| r.phase.is_open()).count()
    }

    /// True when all enqueued work has completed.
    pub fn all_done(&self) -> bool {
        self.open_count() == 0
    }

    /// The workunit record for an id.
    pub fn workunit(&self, wu_id: WuId) -> &WorkUnit {
        &self.wus[wu_id.0 as usize].wu
    }

    /// Phase of a workunit (for tests and drivers).
    pub fn phase(&self, wu_id: WuId) -> &WuPhase {
        &self.wus[wu_id.0 as usize].phase
    }

    /// Attempts consumed by a workunit (all replicas counted).
    pub fn attempts(&self, wu_id: WuId) -> u32 {
        self.wus[wu_id.0 as usize].attempts
    }

    /// Earliest in-progress deadline, for event-driven timeout scans.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.wus
            .iter()
            .filter_map(|r| match &r.phase {
                WuPhase::InProgress { assignments } => assignments.iter().map(|a| a.deadline).min(),
                _ => None,
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_simnet::table1;

    fn server(hosts: usize, slots: usize) -> BoincServer {
        let fleet = (0..hosts)
            .map(|_| (table1::client_8v_2_2(), slots))
            .collect();
        BoincServer::new(MiddlewareConfig::default(), fleet)
    }

    fn replicated(hosts: usize, slots: usize, replication: u32) -> BoincServer {
        let fleet = (0..hosts)
            .map(|_| (table1::client_8v_2_2(), slots))
            .collect();
        BoincServer::new(
            MiddlewareConfig {
                replication,
                ..Default::default()
            },
            fleet,
        )
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fifo_assignment_and_completion() {
        let mut s = server(1, 2);
        s.add_epoch(1, 3, 7, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        assert_eq!(a.wu.shard_id, 0);
        assert_eq!(a.wu.param_version, 7);
        assert_eq!(a.attempt, 1);
        assert!(!a.shard_cached);
        let b = s.request_work(HostId(0), t(0.0)).unwrap();
        assert_eq!(b.wu.shard_id, 1);
        // Two slots full.
        assert!(s.request_work(HostId(0), t(0.0)).is_none());
        assert_eq!(
            s.report_success(a.wu.id, HostId(0), t(10.0)),
            ReportStatus::Accepted
        );
        // Slot freed; third workunit assignable.
        let c = s.request_work(HostId(0), t(10.0)).unwrap();
        assert_eq!(c.wu.shard_id, 2);
        assert_eq!(s.open_count(), 2);
    }

    #[test]
    fn sticky_files_prefer_cached_shards() {
        let mut s = server(1, 1);
        s.add_workunit(1, 5, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        s.report_success(a.wu.id, HostId(0), t(1.0));
        // Epoch 2: shards 3 and 5 queued; host caches shard 5.
        s.add_workunit(2, 3, 2, t(1.0));
        s.add_workunit(2, 5, 2, t(1.0));
        let b = s.request_work(HostId(0), t(1.0)).unwrap();
        assert_eq!(b.wu.shard_id, 5, "cached shard preferred over FIFO");
        assert!(b.shard_cached);
        assert_eq!(s.metrics().cache_hits, 1);
    }

    #[test]
    fn sticky_disabled_is_fifo() {
        let mut s = BoincServer::new(
            MiddlewareConfig {
                sticky_files: false,
                ..Default::default()
            },
            vec![(table1::client_8v_2_2(), 1)],
        );
        s.add_workunit(1, 5, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        s.report_success(a.wu.id, HostId(0), t(1.0));
        s.add_workunit(2, 3, 2, t(1.0));
        s.add_workunit(2, 5, 2, t(1.0));
        let b = s.request_work(HostId(0), t(1.0)).unwrap();
        assert_eq!(b.wu.shard_id, 3, "FIFO when sticky files off");
    }

    #[test]
    fn timeout_requeues_and_penalizes() {
        let mut s = server(2, 1);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        assert_eq!(a.deadline, t(300.0));
        assert!(s.scan_timeouts(t(299.0)).is_empty());
        let expired = s.scan_timeouts(t(300.0));
        assert_eq!(expired, vec![a.wu.id]);
        assert!(s.hosts()[0].reliability < 1.0);
        assert_eq!(s.metrics().timeouts, 1);
        // Reassignable to the other host with attempt 2.
        let b = s.request_work(HostId(1), t(300.0)).unwrap();
        assert_eq!(b.wu.id, a.wu.id);
        assert_eq!(b.attempt, 2);
    }

    #[test]
    fn late_result_after_timeout_is_accepted_if_unclaimed() {
        let mut s = server(1, 1);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        s.scan_timeouts(t(301.0));
        // The original host finally uploads.
        assert_eq!(
            s.report_success(a.wu.id, HostId(0), t(302.0)),
            ReportStatus::Accepted
        );
        assert!(s.all_done());
        // And the queue no longer re-issues it.
        assert!(s.request_work(HostId(0), t(303.0)).is_none());
    }

    #[test]
    fn double_report_is_stale() {
        let mut s = server(2, 1);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        s.scan_timeouts(t(301.0));
        let b = s.request_work(HostId(1), t(301.0)).unwrap();
        assert_eq!(a.wu.id, b.wu.id);
        // New assignee completes first.
        assert_eq!(
            s.report_success(b.wu.id, HostId(1), t(400.0)),
            ReportStatus::Accepted
        );
        // Original host's late upload and a double-report are both stale.
        assert_eq!(
            s.report_success(a.wu.id, HostId(0), t(401.0)),
            ReportStatus::Stale
        );
        assert_eq!(
            s.report_success(b.wu.id, HostId(1), t(402.0)),
            ReportStatus::Stale
        );
        assert_eq!(s.metrics().stale_results, 2);
    }

    #[test]
    fn invalid_result_requeues() {
        let mut s = server(1, 1);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        s.report_invalid(a.wu.id, HostId(0), t(5.0));
        assert_eq!(s.metrics().invalid_results, 1);
        assert_eq!(s.open_count(), 1);
        let b = s.request_work(HostId(0), t(5.0)).unwrap();
        assert_eq!(b.wu.id, a.wu.id);
        assert_eq!(b.attempt, 2);
    }

    #[test]
    fn preempted_host_recovers_via_timeout() {
        let mut s = server(2, 2);
        s.add_epoch(1, 2, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        let b = s.request_work(HostId(0), t(0.0)).unwrap();
        s.preempt_host(HostId(0));
        // Dead host takes no more work...
        assert!(s.request_work(HostId(0), t(1.0)).is_none());
        // ...and its in-flight work only resurfaces at the deadline.
        assert!(s.scan_timeouts(t(100.0)).is_empty());
        let expired = s.scan_timeouts(t(300.0));
        assert_eq!(expired.len(), 2);
        assert!(expired.contains(&a.wu.id) && expired.contains(&b.wu.id));
        // The healthy host finishes the job.
        let c = s.request_work(HostId(1), t(300.0)).unwrap();
        let d = s.request_work(HostId(1), t(300.0)).unwrap();
        s.report_success(c.wu.id, HostId(1), t(350.0));
        s.report_success(d.wu.id, HostId(1), t(360.0));
        assert!(s.all_done());
    }

    #[test]
    fn revive_clears_cache_and_inflight() {
        let mut s = server(1, 2);
        s.add_workunit(1, 9, 1, t(0.0));
        s.request_work(HostId(0), t(0.0)).unwrap();
        s.preempt_host(HostId(0));
        s.revive_host(HostId(0));
        let h = &s.hosts()[0];
        assert!(h.alive);
        assert!(h.cached_shards.is_empty());
        assert_eq!(h.in_flight, 0);
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let mut s = server(2, 1);
        s.add_epoch(1, 2, 1, t(0.0));
        assert_eq!(s.next_deadline(), None);
        s.request_work(HostId(0), t(0.0)).unwrap();
        let mut q = vc_simnet::EventQueue::<()>::new();
        q.schedule(t(50.0), ());
        q.pop();
        s.request_work(HostId(1), t(50.0)).unwrap();
        assert_eq!(s.next_deadline(), Some(t(300.0)));
    }

    #[test]
    fn unreliable_host_gets_fewer_slots() {
        let mut s = server(1, 4);
        s.add_epoch(1, 20, 1, t(0.0));
        // Burn reliability with repeated timeouts.
        for round in 0..6 {
            let now = t(round as f64 * 400.0);
            while s.request_work(HostId(0), now).is_some() {}
            s.scan_timeouts(t(round as f64 * 400.0 + 301.0));
        }
        let h = &s.hosts()[0];
        assert!(h.effective_slots() < 4, "slots {}", h.effective_slots());
    }

    // ----------------------------------------------------- replication

    #[test]
    fn replication_issues_to_distinct_hosts() {
        let mut s = replicated(3, 2, 2);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        // Same host cannot take the second replica.
        assert!(s.request_work(HostId(0), t(0.0)).is_none());
        let b = s.request_work(HostId(1), t(0.0)).unwrap();
        assert_eq!(a.wu.id, b.wu.id);
        assert_eq!(s.phase(a.wu.id).replica_count(), 2);
        // Cap reached: a third host gets nothing.
        assert!(s.request_work(HostId(2), t(0.0)).is_none());
    }

    #[test]
    fn first_replica_wins_and_cancels_the_other() {
        let mut s = replicated(2, 1, 2);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        let b = s.request_work(HostId(1), t(0.0)).unwrap();
        assert_eq!(
            s.report_success(a.wu.id, HostId(0), t(50.0)),
            ReportStatus::Accepted
        );
        // Loser's slot was freed by cancellation...
        assert_eq!(s.hosts()[1].in_flight, 0);
        assert_eq!(s.metrics().cancelled_replicas, 1);
        // ...and its late upload is stale without penalty.
        let rel_before = s.hosts()[1].reliability;
        assert_eq!(
            s.report_success(b.wu.id, HostId(1), t(60.0)),
            ReportStatus::Stale
        );
        assert_eq!(s.hosts()[1].reliability, rel_before);
        assert!(s.all_done());
    }

    #[test]
    fn replica_timeout_leaves_other_replica_running() {
        let mut s = replicated(2, 1, 2);
        s.add_workunit(1, 0, 1, t(0.0));
        let a = s.request_work(HostId(0), t(0.0)).unwrap();
        // Second replica starts later, so its deadline is later.
        let mut q = vc_simnet::EventQueue::<()>::new();
        q.schedule(t(100.0), ());
        q.pop();
        let b = s.request_work(HostId(1), t(100.0)).unwrap();
        assert_eq!(a.wu.id, b.wu.id);
        // First replica expires at 300; second still lives.
        let expired = s.scan_timeouts(t(301.0));
        assert_eq!(expired, vec![a.wu.id]);
        assert_eq!(s.phase(a.wu.id).replica_count(), 1);
        // Workunit is open and re-queued (it lost a replica).
        let c = s.request_work(HostId(0), t(301.0)).unwrap();
        assert_eq!(c.wu.id, a.wu.id);
        // Host 1 finishes; everyone else is cancelled.
        assert_eq!(
            s.report_success(b.wu.id, HostId(1), t(350.0)),
            ReportStatus::Accepted
        );
        assert!(s.all_done());
        assert_eq!(s.hosts()[0].in_flight, 0, "cancelled replica freed slot");
    }

    #[test]
    fn replication_one_is_the_classic_behaviour() {
        let mut s = replicated(2, 1, 1);
        s.add_workunit(1, 0, 1, t(0.0));
        let _a = s.request_work(HostId(0), t(0.0)).unwrap();
        // Second host cannot take a replica at replication = 1.
        assert!(s.request_work(HostId(1), t(0.0)).is_none());
    }
}
