//! Workunits: BOINC's unit of distributable work.

use crate::host::HostId;
use serde::{Deserialize, Serialize};
use vc_simnet::SimTime;

/// Identifier of a workunit within one [`crate::BoincServer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WuId(pub u64);

impl std::fmt::Display for WuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wu{}", self.0)
    }
}

/// Per-parameter-shard versions of the server snapshot a workunit trains
/// from. Workers use this as the cache key for partial fetches: a shard
/// whose manifest version they already hold is never re-transferred. With
/// an unsharded parameter service the manifest is a single entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardManifest(pub Vec<u64>);

impl ShardManifest {
    /// The manifest of an unsharded (single-value) parameter store.
    pub fn single(version: u64) -> Self {
        ShardManifest(vec![version])
    }

    /// The highest shard version — the scalar stand-in where one version
    /// number is wanted (logs, legacy fields).
    pub fn max_version(&self) -> u64 {
        self.0.iter().copied().max().unwrap_or(0)
    }
}

/// A training subtask: one data shard trained for one epoch starting from
/// the server parameter snapshot taken at workunit creation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkUnit {
    /// Identifier.
    pub id: WuId,
    /// Epoch this subtask belongs to (1-based, matching the paper).
    pub epoch: usize,
    /// Index of the data subset this subtask trains on.
    pub shard_id: usize,
    /// Version of the server parameter snapshot shipped with the subtask
    /// (the manifest's highest entry).
    pub param_version: u64,
    /// Per-parameter-shard snapshot versions for partial fetches.
    pub param_versions: ShardManifest,
    /// Creation time.
    pub created_at: SimTime,
}

/// One live assignment of a workunit to a host. BOINC can replicate a
/// workunit onto several hosts for redundancy (§II-C); each replica is one
/// `ActiveAssignment`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActiveAssignment {
    /// Server-global issue sequence number: unique across all assignments
    /// of a run, monotone in issue order. Keys this assignment's entry in
    /// the expiry [`crate::TimerQueue`] (lazy invalidation) and breaks
    /// same-instant deadline ties deterministically.
    pub seq: u64,
    /// The executing host.
    pub host: HostId,
    /// The host incarnation the replica was issued to; when it lags the
    /// host's live count the instance died and a replacement registered,
    /// so expiry must not be blamed on the new incarnation.
    pub incarnation: u32,
    /// When the scheduler issued this replica (turnaround measurement).
    pub issued_at: SimTime,
    /// When the transitioner will declare this replica lost.
    pub deadline: SimTime,
    /// 1-based attempt number of this assignment.
    pub attempt: u32,
}

/// Lifecycle of a workunit.
#[derive(Clone, Debug, PartialEq)]
pub enum WuPhase {
    /// Waiting for (more) assignments.
    Unsent,
    /// One or more replicas are executing.
    InProgress {
        /// Live assignments (≥ 1; up to the replication factor).
        assignments: Vec<ActiveAssignment>,
    },
    /// A valid result was accepted.
    Done {
        /// The host whose result won.
        host: HostId,
        /// Acceptance time.
        at: SimTime,
    },
}

impl WuPhase {
    /// True when the workunit still needs a result.
    pub fn is_open(&self) -> bool {
        !matches!(self, WuPhase::Done { .. })
    }

    /// The hosts currently executing this workunit.
    pub fn running_on(&self) -> Vec<HostId> {
        match self {
            WuPhase::InProgress { assignments } => assignments.iter().map(|a| a.host).collect(),
            _ => Vec::new(),
        }
    }

    /// Number of live replicas.
    pub fn replica_count(&self) -> usize {
        match self {
            WuPhase::InProgress { assignments } => assignments.len(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_queries() {
        let unsent = WuPhase::Unsent;
        assert!(unsent.is_open());
        assert!(unsent.running_on().is_empty());
        assert_eq!(unsent.replica_count(), 0);

        let running = WuPhase::InProgress {
            assignments: vec![
                ActiveAssignment {
                    seq: 0,
                    host: HostId(3),
                    incarnation: 0,
                    issued_at: SimTime::from_secs(0.0),
                    deadline: SimTime::from_secs(10.0),
                    attempt: 1,
                },
                ActiveAssignment {
                    seq: 1,
                    host: HostId(5),
                    incarnation: 0,
                    issued_at: SimTime::from_secs(2.0),
                    deadline: SimTime::from_secs(12.0),
                    attempt: 2,
                },
            ],
        };
        assert!(running.is_open());
        assert_eq!(running.running_on(), vec![HostId(3), HostId(5)]);
        assert_eq!(running.replica_count(), 2);

        let done = WuPhase::Done {
            host: HostId(3),
            at: SimTime::from_secs(5.0),
        };
        assert!(!done.is_open());
        assert!(done.running_on().is_empty());
    }

    #[test]
    fn wu_id_displays() {
        assert_eq!(WuId(17).to_string(), "wu17");
    }
}
