//! Indexed expiry timers for the scheduler's hot paths.
//!
//! Every issued assignment registers one [`TimerEntry`] keyed by its
//! adaptive deadline. The queue is a binary min-heap ordered by
//! `(deadline, seq)` — `seq` is the server's global assignment sequence
//! number, so same-instant deadlines expire in issue order, matching the
//! historical full-scan transitioner bit for bit.
//!
//! Entries are **lazily invalidated**: completing, cancelling, reissuing
//! or orphan-reviving an assignment never touches the heap. A stale entry
//! is simply discarded the first time it reaches the top, identified by
//! its `seq` no longer naming a live assignment (the caller supplies the
//! liveness predicate). This keeps every mutation O(log n) with no
//! tombstone bookkeeping, at the cost of the heap briefly holding dead
//! entries — bounded by the total number of issues, and drained on every
//! scan that reaches them.

use crate::host::HostId;
use crate::workunit::WuId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use vc_simnet::SimTime;

/// One armed expiry timer: the assignment identified by `seq` (on `wu`,
/// issued to `host`) blows at `deadline` unless invalidated first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerEntry {
    /// When the transitioner declares the assignment lost.
    pub deadline: SimTime,
    /// The server-global assignment sequence number — unique per issue,
    /// monotone, and the lazy-invalidation handle.
    pub seq: u64,
    /// The workunit the assignment belongs to.
    pub wu: WuId,
    /// The host the assignment was issued to.
    pub host: HostId,
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

/// Min-heap of [`TimerEntry`]s with lazy invalidation.
#[derive(Default)]
pub struct TimerQueue {
    heap: BinaryHeap<Reverse<TimerEntry>>,
}

impl TimerQueue {
    /// An empty queue.
    pub fn new() -> Self {
        TimerQueue::default()
    }

    /// Arms one timer. O(log n).
    pub fn push(&mut self, entry: TimerEntry) {
        self.heap.push(Reverse(entry));
    }

    /// Entries currently held, stale ones included.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries are held at all (not even stale ones).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The earliest armed deadline, stale entries included — a cheap lower
    /// bound: if this is `> now`, nothing can be due.
    pub fn peek_deadline(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.deadline)
    }

    /// Drains every entry with `deadline <= now`, returning the ones
    /// `is_live` confirms (in `(deadline, seq)` order) and discarding the
    /// rest. O(due · log n); O(1) when the earliest deadline lies ahead.
    pub fn pop_due(
        &mut self,
        now: SimTime,
        mut is_live: impl FnMut(&TimerEntry) -> bool,
    ) -> Vec<TimerEntry> {
        let mut due = Vec::new();
        while let Some(Reverse(e)) = self.heap.peek() {
            if e.deadline > now {
                break;
            }
            let Reverse(e) = self.heap.pop().expect("peeked entry pops");
            if is_live(&e) {
                due.push(e);
            }
        }
        due
    }

    /// The earliest deadline among *live* entries, discarding stale tops on
    /// the way. Amortized O(stale · log n), then O(1) until the next
    /// invalidation.
    pub fn next_deadline(
        &mut self,
        mut is_live: impl FnMut(&TimerEntry) -> bool,
    ) -> Option<SimTime> {
        while let Some(Reverse(e)) = self.heap.peek() {
            if is_live(e) {
                return Some(e.deadline);
            }
            self.heap.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(deadline: f64, seq: u64) -> TimerEntry {
        TimerEntry {
            deadline: SimTime::from_secs(deadline),
            seq,
            wu: WuId(seq / 2),
            host: HostId(seq as u32),
        }
    }

    #[test]
    fn pops_in_deadline_then_seq_order() {
        let mut q = TimerQueue::new();
        for entry in [e(5.0, 3), e(1.0, 2), e(5.0, 1), e(9.0, 0)] {
            q.push(entry);
        }
        let due = q.pop_due(SimTime::from_secs(5.0), |_| true);
        assert_eq!(
            due.iter().map(|x| x.seq).collect::<Vec<_>>(),
            vec![2, 1, 3],
            "same-instant ties break by seq"
        );
        assert_eq!(q.len(), 1, "future entry stays armed");
    }

    #[test]
    fn stale_entries_are_discarded_lazily() {
        let mut q = TimerQueue::new();
        for entry in [e(1.0, 0), e(2.0, 1), e(3.0, 2)] {
            q.push(entry);
        }
        // seq 0 and 2 invalidated (reported / reissued elsewhere).
        let due = q.pop_due(SimTime::from_secs(10.0), |x| x.seq == 1);
        assert_eq!(due.iter().map(|x| x.seq).collect::<Vec<_>>(), vec![1]);
        assert!(q.is_empty(), "stale entries were dropped, not kept");
    }

    #[test]
    fn next_deadline_skips_stale_tops() {
        let mut q = TimerQueue::new();
        q.push(e(1.0, 0));
        q.push(e(4.0, 1));
        assert_eq!(
            q.next_deadline(|x| x.seq == 1),
            Some(SimTime::from_secs(4.0))
        );
        assert_eq!(q.len(), 1, "the stale top was pruned");
        assert_eq!(q.next_deadline(|_| false), None);
        assert!(q.is_empty());
    }

    #[test]
    fn nothing_due_is_constant_time_and_empty() {
        let mut q = TimerQueue::new();
        q.push(e(100.0, 0));
        assert_eq!(q.peek_deadline(), Some(SimTime::from_secs(100.0)));
        assert!(q.pop_due(SimTime::from_secs(99.0), |_| true).is_empty());
        assert_eq!(q.len(), 1);
    }
}
