//! # vc-middleware
//!
//! A BOINC-like volunteer-computing middleware, re-implemented in-process:
//! the substrate the paper builds its distributed trainer on (§II-C, §III).
//!
//! BOINC's server components map onto this crate as follows:
//!
//! | BOINC component | Here |
//! |---|---|
//! | work generator  | [`server::BoincServer::add_workunits`] (driven by the trainer's work generator) |
//! | scheduler       | [`server::BoincServer::request_work`] — slot-limited, reliability-aware, sticky-file-aware assignment |
//! | transitioner    | [`server::BoincServer::scan_timeouts`] — deadline tracking and reassignment |
//! | validator       | [`validate::Validator`] — result sanity checking before assimilation |
//! | assimilator     | downstream (the VC-ASGD parameter server in `vc-asgd`) |
//!
//! The middleware holds only control-plane state (who runs what, deadlines,
//! caches, reliability); payloads (parameter blobs, data shards) travel
//! through the driver, exactly as BOINC moves files through its web server
//! while the scheduler tracks workunit state.

pub mod clock;
pub mod host;
pub mod server;
pub mod timer;
pub mod validate;
pub mod workunit;

pub use clock::{Clock, VirtualClock, WallClock};
pub use host::{HostCold, HostHot, HostId, HostSummary};
pub use server::{
    Assignment, BoincServer, MiddlewareConfig, ReportStatus, ServerMetrics, HOST_TURNAROUND_S,
    WU_DEADLINE_S,
};
pub use timer::{TimerEntry, TimerQueue};
pub use validate::{
    AcceptAllValidator, BitwiseComparator, FiniteBlobValidator, ResultComparator,
    ToleranceComparator, ValidationVerdict, Validator,
};
pub use workunit::{ShardManifest, WorkUnit, WuId, WuPhase};
