//! Update codecs: quantized, delta-encoded parameter transfer.
//!
//! The paper's modeled cost is dominated by shipping the full parameter
//! file between server and volunteers every round. This module cuts that
//! cost the way DeDLOC does for open collaborations: each shard moves as a
//! **delta against the version the peer already holds**, quantized by a
//! pluggable [`Codec`], with error-feedback residuals keeping the lossy
//! modes unbiased over time.
//!
//! ## Blob formats (all little-endian)
//!
//! | codec | layout | size |
//! |-------|--------|------|
//! | `Raw`  | VCP1 (`vc-tensor::codec`) | `12 + 4n` |
//! | `Fp16` | `[n u32][n × f16 bits u16]` | `4 + 2n` |
//! | `Int8` | `[n u32][scale f32][tokens]` | `≤ 8 + n` |
//! | `TopK` | `[n u32][k u32][k × idx u32, ascending][k × val f32]` | `8 + 8k` |
//!
//! `Int8` tokens are literal `i8` codes except the reserved byte `0x80`
//! (`-128`, never produced by quantization) which escapes a zero run:
//! `[0x80][run u16]`. Quantized deltas are mostly zeros — a weight whose
//! update rounds below `scale/2` encodes as 0 — so run suppression is what
//! pushes `Int8` past the 4× floor of plain byte-per-weight quantization.
//!
//! ## Error feedback
//!
//! For a lossy codec `Q`, the sender keeps a residual `r` per element and
//! transmits `ŷ = Q(x + r)` for update `x`, then sets `r ← (x + r) − ŷ`.
//! The quantization error is re-injected into the next update instead of
//! being lost, so the *accumulated* transmitted signal tracks the true
//! accumulated updates — compression error stays bounded instead of
//! compounding (Stich et al.; the DeDLOC averaging argument).
//!
//! Every decode path here is hostile-input-safe: truncated, oversized,
//! bit-flipped or internally inconsistent blobs return an error, never
//! panic, never over-allocate beyond the declared element count already
//! validated by the caller.

use serde::{Deserialize, Serialize};
use vc_tensor::quant::{
    f16_bits_to_f32, f32_to_f16_bits, int8_quantize_one, int8_scale, topk_indices,
};

/// Length of the codec descriptor appended to `FetchReq` payloads and
/// embedded in delta frames: `[id u8][flags u8][k u32]`.
pub const DESC_LEN: usize = 6;

/// Flag bit: sender maintains an error-feedback residual for this stream.
const FLAG_ERROR_FEEDBACK: u8 = 0b0000_0001;

/// Int8 escape byte opening a `[0x80][run u16]` zero-run token.
const INT8_ZERO_ESCAPE: u8 = 0x80;
/// Zero runs shorter than this encode as literal zero bytes (the escape
/// token itself costs 3 bytes).
const INT8_MIN_RUN: usize = 4;

/// How a parameter update crosses the wire. `Raw` is the bit-exact legacy
/// path; the lossy modes quantize deltas and rely on error feedback (where
/// enabled) plus the quorum tolerance comparator to stay in the clean
/// accuracy band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Codec {
    /// Full-precision VCP1 blobs; byte-identical to the pre-codec protocol.
    #[default]
    Raw,
    /// IEEE binary16 per element: 2× smaller, ~2^-11 relative error.
    Fp16,
    /// Symmetric int8 with zero-run suppression: ≥4× smaller on update
    /// deltas.
    Int8 {
        /// Keep a residual so quantization error feeds the next update.
        error_feedback: bool,
    },
    /// Ship only the `k` largest-magnitude elements of the delta.
    TopK {
        /// Elements kept per shard (clamped to the shard length).
        k: u32,
        /// Keep a residual so dropped elements feed the next update.
        error_feedback: bool,
    },
}

impl Codec {
    /// Stable wire identifier. New codecs append; ids are never reused.
    pub fn id(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::Fp16 => 1,
            Codec::Int8 { .. } => 2,
            Codec::TopK { .. } => 3,
        }
    }

    /// True for every mode that loses bits on the wire.
    pub fn is_lossy(self) -> bool {
        self != Codec::Raw
    }

    /// Whether the sender maintains an error-feedback residual.
    pub fn error_feedback(self) -> bool {
        match self {
            Codec::Raw | Codec::Fp16 => false,
            Codec::Int8 { error_feedback } | Codec::TopK { error_feedback, .. } => error_feedback,
        }
    }

    /// Worst-case encoded size of one `n`-element update under this codec.
    /// Used both to size scratch buffers and as the modeled upload cost in
    /// the coordinator's byte accounting (`Raw` matches the legacy VCP1
    /// size exactly).
    pub fn blob_len(self, n: usize) -> usize {
        match self {
            Codec::Raw => vc_tensor::codec::encoded_len(n),
            Codec::Fp16 => 4 + 2 * n,
            Codec::Int8 { .. } => 8 + n,
            Codec::TopK { k, .. } => 8 + 8 * (k as usize).min(n),
        }
    }

    /// `(atol, rtol)` for the quorum comparator when replicas of the same
    /// workunit diverge only by codec noise. Raw needs none (bitwise).
    ///
    /// `rtol` is always 0: a relative term scales with the *uploaded*
    /// values, so an adversary who poisons with large magnitudes widens
    /// its own acceptance band until two differently-salted poisons agree.
    /// Honest replica divergence is codec noise on O(1) parameters, which
    /// an absolute band covers.
    pub fn quorum_tolerance(self) -> (f32, f32) {
        match self {
            Codec::Raw => (0.0, 0.0),
            Codec::Fp16 => (2e-2, 0.0),
            Codec::Int8 { .. } => (1e-1, 0.0),
            Codec::TopK { .. } => (7.5e-1, 0.0),
        }
    }

    /// Append the 6-byte wire descriptor.
    pub fn write_desc(self, out: &mut Vec<u8>) {
        let mut flags = 0u8;
        if self.error_feedback() {
            flags |= FLAG_ERROR_FEEDBACK;
        }
        let k = match self {
            Codec::TopK { k, .. } => k,
            _ => 0,
        };
        out.push(self.id());
        out.push(flags);
        out.extend_from_slice(&k.to_le_bytes());
    }

    /// Parse a 6-byte descriptor. `Err(id)` reports an id this build does
    /// not speak so the caller can answer with a structured `Error` frame.
    pub fn read_desc(desc: &[u8]) -> Result<Codec, u8> {
        assert_eq!(desc.len(), DESC_LEN, "descriptor must be exactly 6 bytes");
        let ef = desc[1] & FLAG_ERROR_FEEDBACK != 0;
        let k = u32::from_le_bytes([desc[2], desc[3], desc[4], desc[5]]);
        match desc[0] {
            0 => Ok(Codec::Raw),
            1 => Ok(Codec::Fp16),
            2 => Ok(Codec::Int8 { error_feedback: ef }),
            3 => Ok(Codec::TopK {
                k,
                error_feedback: ef,
            }),
            id => Err(id),
        }
    }

    /// Quantize update `x` into `out` (cleared first). `Raw` writes a VCP1
    /// blob so every mode is drivable through one entry point.
    pub fn encode_update(self, x: &[f32], out: &mut Vec<u8>) {
        out.clear();
        let n = x.len();
        assert!(n <= u32::MAX as usize, "update too large for wire header");
        match self {
            Codec::Raw => out.extend_from_slice(&vc_tensor::codec::encode_f32s(x)),
            Codec::Fp16 => {
                out.reserve(4 + 2 * n);
                out.extend_from_slice(&(n as u32).to_le_bytes());
                for &v in x {
                    out.extend_from_slice(&f32_to_f16_bits(v).to_le_bytes());
                }
            }
            Codec::Int8 { .. } => {
                let scale = int8_scale(x);
                let inv = if scale == 0.0 { 0.0 } else { 1.0 / scale };
                out.reserve(8 + n);
                out.extend_from_slice(&(n as u32).to_le_bytes());
                out.extend_from_slice(&scale.to_le_bytes());
                // Quantize and emit in one pass, folding zero runs — no
                // scratch array, so the steady-state path never allocates
                // beyond `out`'s retained capacity.
                let mut i = 0;
                while i < n {
                    let c = int8_quantize_one(x[i], inv);
                    if c == 0 {
                        let mut j = i + 1;
                        while j < n
                            && j - i < u16::MAX as usize
                            && int8_quantize_one(x[j], inv) == 0
                        {
                            j += 1;
                        }
                        let run = j - i;
                        if run >= INT8_MIN_RUN {
                            out.push(INT8_ZERO_ESCAPE);
                            out.extend_from_slice(&(run as u16).to_le_bytes());
                        } else {
                            out.extend(std::iter::repeat_n(0u8, run));
                        }
                        i = j;
                    } else {
                        out.push(c as u8);
                        i += 1;
                    }
                }
            }
            Codec::TopK { k, .. } => {
                let idx = topk_indices(x, k as usize);
                let kept = idx.len();
                out.reserve(8 + 8 * kept);
                out.extend_from_slice(&(n as u32).to_le_bytes());
                out.extend_from_slice(&(kept as u32).to_le_bytes());
                for &i in &idx {
                    out.extend_from_slice(&i.to_le_bytes());
                }
                for &i in &idx {
                    out.extend_from_slice(&x[i as usize].to_le_bytes());
                }
            }
        }
    }

    /// Decode an update blob into `out` (cleared, then resized to `n`).
    /// `n` is the shard length the *caller* expects — a blob declaring any
    /// other element count is rejected before any allocation happens, so a
    /// hostile length field cannot balloon memory. On error `out` is left
    /// empty.
    pub fn decode_update_into(
        self,
        blob: &[u8],
        n: usize,
        out: &mut Vec<f32>,
    ) -> Result<(), &'static str> {
        out.clear();
        if let Codec::Raw = self {
            vc_tensor::codec::decode_f32s_into(blob, out).map_err(|_| "bad raw blob")?;
            if out.len() != n {
                out.clear();
                return Err("raw blob length mismatch");
            }
            return Ok(());
        }
        if blob.len() < 4 {
            return Err("update blob truncated");
        }
        let declared = u32::from_le_bytes([blob[0], blob[1], blob[2], blob[3]]) as usize;
        if declared != n {
            return Err("update blob element count mismatch");
        }
        match self {
            Codec::Raw => unreachable!("handled above"),
            Codec::Fp16 => {
                let body = &blob[4..];
                if body.len() != 2 * n {
                    return Err("fp16 blob length mismatch");
                }
                out.resize(n, 0.0);
                for (d, h) in out.iter_mut().zip(body.chunks_exact(2)) {
                    *d = f16_bits_to_f32(u16::from_le_bytes([h[0], h[1]]));
                }
                Ok(())
            }
            Codec::Int8 { .. } => {
                if blob.len() < 8 {
                    return Err("int8 blob truncated");
                }
                let scale = f32::from_le_bytes([blob[4], blob[5], blob[6], blob[7]]);
                if !scale.is_finite() {
                    return Err("int8 scale not finite");
                }
                out.resize(n, 0.0);
                let mut emitted = 0usize;
                let mut bytes = blob[8..].iter();
                while let Some(&b) = bytes.next() {
                    if b == INT8_ZERO_ESCAPE {
                        let (Some(&lo), Some(&hi)) = (bytes.next(), bytes.next()) else {
                            out.clear();
                            return Err("int8 zero-run truncated");
                        };
                        let run = u16::from_le_bytes([lo, hi]) as usize;
                        if run == 0 || emitted + run > n {
                            out.clear();
                            return Err("int8 zero-run out of range");
                        }
                        // out is pre-zeroed; just advance.
                        emitted += run;
                    } else {
                        if emitted >= n {
                            out.clear();
                            return Err("int8 blob overlong");
                        }
                        out[emitted] = (b as i8) as f32 * scale;
                        emitted += 1;
                    }
                }
                if emitted != n {
                    out.clear();
                    return Err("int8 blob short");
                }
                Ok(())
            }
            Codec::TopK { .. } => {
                if blob.len() < 8 {
                    return Err("topk blob truncated");
                }
                let k = u32::from_le_bytes([blob[4], blob[5], blob[6], blob[7]]) as usize;
                if k > n {
                    return Err("topk k exceeds shard length");
                }
                if blob.len() != 8 + 8 * k {
                    return Err("topk blob length mismatch");
                }
                out.resize(n, 0.0);
                let idx_bytes = &blob[8..8 + 4 * k];
                let val_bytes = &blob[8 + 4 * k..];
                for (ib, vb) in idx_bytes.chunks_exact(4).zip(val_bytes.chunks_exact(4)) {
                    let i = u32::from_le_bytes([ib[0], ib[1], ib[2], ib[3]]) as usize;
                    if i >= n {
                        out.clear();
                        return Err("topk index out of range");
                    }
                    out[i] = f32::from_le_bytes([vb[0], vb[1], vb[2], vb[3]]);
                }
                Ok(())
            }
        }
    }
}

/// Encode the update `new − base` (plus the error-feedback residual when
/// the codec carries one) and report what the receiver will reconstruct.
///
/// On return: `blob` holds the wire bytes, `y` holds the decoded
/// (quantized) update the receiver will add to its copy of `base`, and
/// `residual` — when error feedback is on — holds the quantization error
/// to fold into the next update. The caller advances its own reference by
/// the *same* `y` so both sides stay bit-identical.
///
/// `residual` must be empty (treated as all-zero) or exactly `new.len()`.
pub fn encode_delta(
    codec: Codec,
    new: &[f32],
    base: &[f32],
    residual: &mut Vec<f32>,
    x: &mut Vec<f32>,
    blob: &mut Vec<u8>,
    y: &mut Vec<f32>,
) -> Result<(), &'static str> {
    assert_eq!(new.len(), base.len());
    let n = new.len();
    let ef = codec.error_feedback();
    if ef && residual.len() != n {
        residual.clear();
        residual.resize(n, 0.0);
    }
    x.clear();
    x.resize(n, 0.0);
    for i in 0..n {
        x[i] = new[i] - base[i];
    }
    if ef {
        for i in 0..n {
            x[i] += residual[i];
        }
    }
    codec.encode_update(x, blob);
    codec.decode_update_into(blob, n, y)?;
    if ef {
        for i in 0..n {
            residual[i] = x[i] - y[i];
        }
    }
    Ok(())
}

/// Worker-side upload shaping: replace `params` with what the server will
/// reconstruct after this worker's update crosses a lossy wire.
///
/// `base` is the parameter vector the worker fetched (which the server can
/// reconstruct from its snapshot history); the transmitted update is
/// `params − base` plus the worker's residual. After the call `params`
/// equals `base + decode(encode(update))` — exactly the value the server
/// will merge — and the residual carries the quantization error forward.
/// Returns the encoded blob size for byte accounting.
pub fn apply_update_roundtrip(
    codec: Codec,
    base: &[f32],
    params: &mut [f32],
    residual: &mut Vec<f32>,
    x: &mut Vec<f32>,
    blob: &mut Vec<u8>,
    y: &mut Vec<f32>,
) -> usize {
    assert_eq!(base.len(), params.len());
    encode_delta(codec, params, base, residual, x, blob, y).expect("own encoding always decodes");
    for (p, (&b, &d)) in params.iter_mut().zip(base.iter().zip(y.iter())) {
        *p = b + d;
    }
    blob.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.02)
            .collect()
    }

    #[test]
    fn descriptor_roundtrips_every_mode() {
        for codec in [
            Codec::Raw,
            Codec::Fp16,
            Codec::Int8 {
                error_feedback: true,
            },
            Codec::Int8 {
                error_feedback: false,
            },
            Codec::TopK {
                k: 1234,
                error_feedback: true,
            },
        ] {
            let mut d = Vec::new();
            codec.write_desc(&mut d);
            assert_eq!(d.len(), DESC_LEN);
            assert_eq!(Codec::read_desc(&d), Ok(codec));
        }
        assert_eq!(Codec::read_desc(&[9, 0, 0, 0, 0, 0]), Err(9));
    }

    #[test]
    fn raw_update_roundtrips_bitwise() {
        let x = ramp(513);
        let (mut blob, mut y) = (Vec::new(), Vec::new());
        Codec::Raw.encode_update(&x, &mut blob);
        assert_eq!(blob.len(), Codec::Raw.blob_len(x.len()));
        Codec::Raw
            .decode_update_into(&blob, x.len(), &mut y)
            .unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn fp16_update_within_half_precision() {
        let x = ramp(257);
        let (mut blob, mut y) = (Vec::new(), Vec::new());
        Codec::Fp16.encode_update(&x, &mut blob);
        assert_eq!(blob.len(), Codec::Fp16.blob_len(x.len()));
        Codec::Fp16
            .decode_update_into(&blob, x.len(), &mut y)
            .unwrap();
        for (&a, &b) in x.iter().zip(&y) {
            assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-6);
        }
    }

    #[test]
    fn int8_update_within_half_scale_and_compresses_zeros() {
        let mut x = vec![0.0f32; 1000];
        for i in (0..1000).step_by(10) {
            x[i] = ((i % 13) as f32 - 6.0) * 0.1;
        }
        let codec = Codec::Int8 {
            error_feedback: false,
        };
        let (mut blob, mut y) = (Vec::new(), Vec::new());
        codec.encode_update(&x, &mut blob);
        assert!(
            blob.len() < 8 + 1000 / 2,
            "zero runs must collapse: got {} bytes",
            blob.len()
        );
        codec.decode_update_into(&blob, x.len(), &mut y).unwrap();
        let scale = int8_scale(&x);
        for (&a, &b) in x.iter().zip(&y) {
            assert!((a - b).abs() <= scale * 0.5 + 1e-7);
        }
    }

    #[test]
    fn topk_keeps_largest_and_zeroes_rest() {
        let x = [0.0f32, 5.0, -0.1, -7.0, 0.2, 1.0];
        let codec = Codec::TopK {
            k: 2,
            error_feedback: false,
        };
        let (mut blob, mut y) = (Vec::new(), Vec::new());
        codec.encode_update(&x, &mut blob);
        assert_eq!(blob.len(), codec.blob_len(x.len()));
        codec.decode_update_into(&blob, x.len(), &mut y).unwrap();
        assert_eq!(y, vec![0.0, 5.0, 0.0, -7.0, 0.0, 0.0]);
    }

    #[test]
    fn hostile_blobs_error_instead_of_panicking() {
        let codec = Codec::Int8 {
            error_feedback: false,
        };
        let x = ramp(64);
        let mut blob = Vec::new();
        codec.encode_update(&x, &mut blob);
        let mut out = Vec::new();
        // Truncations at every length.
        for cut in 0..blob.len() {
            let _ = codec.decode_update_into(&blob[..cut], 64, &mut out);
        }
        // Wrong expected length.
        assert!(codec.decode_update_into(&blob, 63, &mut out).is_err());
        // Oversize run.
        let mut evil = Vec::new();
        evil.extend_from_slice(&64u32.to_le_bytes());
        evil.extend_from_slice(&1.0f32.to_le_bytes());
        evil.push(INT8_ZERO_ESCAPE);
        evil.extend_from_slice(&u16::MAX.to_le_bytes());
        assert!(codec.decode_update_into(&evil, 64, &mut out).is_err());
        // Top-k index out of range.
        let tk = Codec::TopK {
            k: 1,
            error_feedback: false,
        };
        let mut evil = Vec::new();
        evil.extend_from_slice(&4u32.to_le_bytes());
        evil.extend_from_slice(&1u32.to_le_bytes());
        evil.extend_from_slice(&9u32.to_le_bytes());
        evil.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(tk.decode_update_into(&evil, 4, &mut out).is_err());
        assert!(out.is_empty(), "failed decode leaves out empty");
    }

    /// Simulates the push stream: each round the sender's base is
    /// re-synced to the receiver's state (as `ShardCache::sync` does), so
    /// any mass TopK drops would be lost forever without an explicit
    /// residual. With EF the dropped mass rides along until it crosses
    /// the top-k threshold and ships.
    fn run_push_stream(ef: bool) -> (f32, f32, f32) {
        let n = 32;
        let codec = Codec::TopK {
            k: 4,
            error_feedback: ef,
        };
        let mut acc = vec![0.0f32; n]; // receiver state == re-synced base
        let mut sum_u = vec![0.0f32; n]; // total true update mass
        let mut new = vec![0.0f32; n];
        let mut residual = Vec::new();
        let (mut x, mut blob, mut y) = (Vec::new(), Vec::new(), Vec::new());
        for step in 0..200 {
            for i in 0..n {
                let u = 0.01 * ((i + 1) as f32) * if step % 2 == 0 { 1.0 } else { 0.9 };
                sum_u[i] += u;
                new[i] = acc[i] + u;
            }
            encode_delta(codec, &new, &acc, &mut residual, &mut x, &mut blob, &mut y).unwrap();
            for (a, &d) in acc.iter_mut().zip(&y) {
                *a += d;
            }
        }
        let err: f32 = sum_u.iter().zip(&acc).map(|(a, b)| (a - b).abs()).sum();
        let mass: f32 = sum_u.iter().map(|t| t.abs()).sum();
        let rnorm: f32 = residual.iter().map(|r| r * r).sum::<f32>().sqrt();
        (err, mass, rnorm)
    }

    #[test]
    fn error_feedback_transmits_dropped_mass_eventually() {
        let (err, mass, rnorm) = run_push_stream(true);
        assert!(
            err < mass * 0.10,
            "EF receiver should track total update mass: err {err} vs mass {mass}"
        );
        // The residual itself stays bounded (no blow-up).
        assert!(rnorm.is_finite() && rnorm < mass, "residual norm bounded");
        // Without EF, mass below the top-k threshold is dropped forever.
        let (err_no_ef, _, _) = run_push_stream(false);
        assert!(
            err_no_ef > mass * 0.3,
            "without EF most sub-threshold mass is lost: err {err_no_ef} vs mass {mass}"
        );
    }

    #[test]
    fn apply_update_roundtrip_matches_server_reconstruction() {
        let base = ramp(100);
        let mut params: Vec<f32> = base.iter().map(|b| b + 0.07).collect();
        let sent = params.clone();
        let codec = Codec::Int8 {
            error_feedback: true,
        };
        let mut residual = Vec::new();
        let (mut x, mut blob, mut y) = (Vec::new(), Vec::new(), Vec::new());
        let bytes = apply_update_roundtrip(
            codec,
            &base,
            &mut params,
            &mut residual,
            &mut x,
            &mut blob,
            &mut y,
        );
        assert!(bytes <= codec.blob_len(100));
        // params is now base + decode(blob): recompute independently.
        let mut expect = Vec::new();
        codec.decode_update_into(&blob, 100, &mut expect).unwrap();
        for i in 0..100 {
            assert_eq!(params[i], base[i] + expect[i]);
            // and the residual is exactly the quantization error
            assert!((residual[i] - (sent[i] - base[i] - expect[i])).abs() < 1e-6);
        }
    }
}
