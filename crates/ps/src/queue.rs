//! A delivery-time-ordered message queue.
//!
//! The reordering core shared by every delayed transport in the workspace:
//! the runtime's worker→coordinator delay line drives it with wall-clock
//! `Instant`s, the deterministic simulation with virtual-time stamps, and
//! the parameter service's delayed in-memory transport with logical ticks.
//! One reordering semantics, three substrates.

use std::collections::BinaryHeap;

/// Heap entry ordered by delivery instant (earliest first under the
/// reversed [`Ord`]), with an arrival sequence number breaking exact ties
/// FIFO.
struct Pending<T, M> {
    at: T,
    seq: u64,
    msg: M,
}

impl<T: Ord, M> PartialEq for Pending<T, M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T: Ord, M> Eq for Pending<T, M> {}
impl<T: Ord, M> PartialOrd for Pending<T, M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord, M> Ord for Pending<T, M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (&other.at, other.seq).cmp(&(&self.at, self.seq))
    }
}

/// A min-heap of messages keyed by delivery time. Messages with different
/// stamps overtake each other; equal stamps release FIFO.
pub struct DelayQueue<T, M> {
    heap: BinaryHeap<Pending<T, M>>,
    seq: u64,
}

impl<T: Ord + Copy, M> DelayQueue<T, M> {
    /// An empty queue.
    pub fn new() -> Self {
        DelayQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Holds `msg` for delivery at `at`.
    pub fn push(&mut self, at: T, msg: M) {
        self.heap.push(Pending {
            at,
            seq: self.seq,
            msg,
        });
        self.seq += 1;
    }

    /// The earliest pending delivery time.
    pub fn next_due(&self) -> Option<T> {
        self.heap.peek().map(|p| p.at)
    }

    /// Releases the earliest message if its delivery time has passed
    /// (`at <= now`). Call in a loop to drain everything due.
    pub fn pop_due(&mut self, now: T) -> Option<M> {
        if self.heap.peek().is_some_and(|p| p.at <= now) {
            Some(self.heap.pop().expect("peeked").msg)
        } else {
            None
        }
    }

    /// Number of held messages.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T: Ord + Copy, M> Default for DelayQueue<T, M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_in_delivery_order_fifo_on_ties() {
        let mut q: DelayQueue<u64, &str> = DelayQueue::new();
        q.push(30, "c");
        q.push(10, "a1");
        q.push(10, "a2");
        q.push(20, "b");
        assert_eq!(q.next_due(), Some(10));
        assert_eq!(q.pop_due(5), None, "nothing due yet");
        assert_eq!(q.pop_due(25), Some("a1"), "ties release FIFO");
        assert_eq!(q.pop_due(25), Some("a2"));
        assert_eq!(q.pop_due(25), Some("b"));
        assert_eq!(q.pop_due(25), None, "30 not due at 25");
        assert_eq!(q.pop_due(30), Some("c"));
        assert!(q.is_empty());
    }
}
