//! Real-socket transport: blocking TCP on loopback.
//!
//! Shards are partitioned into contiguous *groups*, one listener (and one
//! client stream) per group — the paper's "several parameter servers"
//! shape, where different parts of the model live behind different
//! endpoints. Every connection speaks the same frame protocol as the
//! in-memory transport, handled by the same [`PsService`]; the only
//! difference is that bytes cross a socket.

use crate::client::{
    collect_fetch_response, collect_push_response, push_delta_frame, PsClient, PsError,
};
use crate::codec::Codec;
use crate::service::PsService;
use crate::wire::{
    read_frame, write_frame, FetchReq, FetchSummary, Frame, FrameKind, FrameReadError, PushAck,
};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use vc_tensor::codec::encode_f32s;

/// Maps shards onto `groups` contiguous endpoint groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardGroups {
    shards: usize,
    groups: usize,
}

impl ShardGroups {
    /// `groups` is clamped to `1..=shards`.
    pub fn new(shards: usize, groups: usize) -> Self {
        ShardGroups {
            shards: shards.max(1),
            groups: groups.clamp(1, shards.max(1)),
        }
    }

    /// Number of endpoint groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The group serving `shard`.
    pub fn group_of(&self, shard: u32) -> usize {
        let per = self.shards.div_ceil(self.groups);
        ((shard as usize) / per).min(self.groups - 1)
    }
}

/// A running TCP front for a [`PsService`]: one loopback listener per
/// shard group, each with its own accept thread.
pub struct TcpPsServer {
    addrs: Vec<SocketAddr>,
    groups: ShardGroups,
    stop: Arc<AtomicBool>,
    accept_threads: Vec<JoinHandle<()>>,
    // Clones of every accepted connection, so shutdown can unblock the
    // connection threads' reads even while clients are still connected.
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl TcpPsServer {
    /// Binds `groups` listeners on `127.0.0.1:0` and starts serving.
    pub fn bind(service: Arc<PsService>, groups: usize) -> std::io::Result<Self> {
        let shards = service.assimilator().layout().shards();
        let groups = ShardGroups::new(shards, groups);
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let mut addrs = Vec::with_capacity(groups.groups());
        let mut accept_threads = Vec::with_capacity(groups.groups());
        for g in 0..groups.groups() {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?);
            let service = service.clone();
            let stop = stop.clone();
            let conns = conns.clone();
            let handle = std::thread::Builder::new()
                .name(format!("vc-ps-listen-{g}"))
                .spawn(move || accept_loop(listener, service, stop, conns))
                .expect("spawn ps listener");
            accept_threads.push(handle);
        }
        Ok(TcpPsServer {
            addrs,
            groups,
            stop,
            accept_threads,
            conns,
        })
    }

    /// The bound addresses, one per shard group.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The shard→group mapping clients must use.
    pub fn groups(&self) -> ShardGroups {
        self.groups
    }

    /// Stops serving and joins every server thread, even while clients
    /// are still connected: open connection sockets are shut down, which
    /// unblocks their reads mid-wait.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        for conn in self.conns.lock().expect("ps conn registry").iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock each accept() with a throwaway connection.
        for addr in &self.addrs {
            let _ = TcpStream::connect(addr);
        }
        for t in self.accept_threads {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<PsService>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
) {
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let (stream, _) = match listener.accept() {
            Ok(s) => s,
            Err(_) => break,
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(clone) = stream.try_clone() {
            conns.lock().expect("ps conn registry").push(clone);
        }
        let service = service.clone();
        let stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("vc-ps-conn".to_string())
            .spawn(move || connection_loop(stream, service, stop))
            .expect("spawn ps connection");
        handles.push(handle);
    }
    for c in handles {
        let _ = c.join();
    }
}

/// Serves one connection: read a frame, handle it, write the responses.
/// Transport-level garbage (bad length, bad CRC) closes the connection;
/// protocol-level mistakes come back as error frames and the connection
/// lives on.
fn connection_loop(mut stream: TcpStream, service: Arc<PsService>, stop: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let mut scratch = Vec::new();
    let mut write_scratch = Vec::new();
    let mut responses = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let frame = match read_frame(&mut stream, &mut scratch) {
            Ok(f) => f,
            Err(FrameReadError::Eof) => break,
            Err(_) => break, // hostile or broken stream: drop the connection
        };
        responses.clear();
        service.handle(&frame, &mut responses);
        let mut failed = false;
        for resp in &responses {
            if write_frame(&mut stream, resp, &mut write_scratch).is_err() {
                failed = true;
                break;
            }
        }
        if failed || stream.flush().is_err() {
            break;
        }
    }
    // A registry clone of this stream outlives us (see `TcpPsServer::
    // shutdown`), so dropping the fd alone would leave the socket open:
    // close it for real so the peer sees EOF.
    let _ = stream.shutdown(Shutdown::Both);
}

/// Client side of the TCP transport: one stream per shard group.
pub struct TcpClient {
    streams: Vec<TcpStream>,
    groups: ShardGroups,
    read_scratch: Vec<u8>,
    write_scratch: Vec<u8>,
    // Reused per-group request split.
    per_group: Vec<Vec<(u32, u64)>>,
}

impl TcpClient {
    /// Connects one stream to each group endpoint.
    pub fn connect(addrs: &[SocketAddr], groups: ShardGroups) -> std::io::Result<Self> {
        assert_eq!(addrs.len(), groups.groups(), "one address per group");
        let mut streams = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true)?;
            streams.push(s);
        }
        Ok(TcpClient {
            streams,
            groups,
            read_scratch: Vec::new(),
            write_scratch: Vec::new(),
            per_group: vec![Vec::new(); groups.groups()],
        })
    }

    fn io_err(e: std::io::Error) -> PsError {
        PsError::Transport(e.to_string())
    }

    fn read_err(e: FrameReadError) -> PsError {
        match e {
            FrameReadError::Wire(w) => PsError::Wire(w),
            other => PsError::Transport(other.to_string()),
        }
    }

    /// Sends one request on group `g` and collects response frames until
    /// the terminator `done(kind)` says the exchange is over.
    fn exchange(
        &mut self,
        g: usize,
        req: &Frame,
        out: &mut Vec<Frame>,
        done: impl Fn(FrameKind) -> bool,
    ) -> Result<(), PsError> {
        let stream = &mut self.streams[g];
        write_frame(stream, req, &mut self.write_scratch).map_err(Self::io_err)?;
        stream.flush().map_err(Self::io_err)?;
        loop {
            let frame = read_frame(stream, &mut self.read_scratch).map_err(Self::read_err)?;
            let kind = frame.kind;
            out.push(frame);
            if done(kind) || kind == FrameKind::Error {
                return Ok(());
            }
        }
    }
}

impl PsClient for TcpClient {
    fn fetch(
        &mut self,
        epoch: u64,
        wants: &[(u32, u64)],
        codec: Codec,
        out: &mut Vec<Frame>,
    ) -> Result<FetchSummary, PsError> {
        for group in &mut self.per_group {
            group.clear();
        }
        for &(id, ver) in wants {
            let g = self.groups.group_of(id);
            self.per_group[g].push((id, ver));
        }
        let mut total = FetchSummary {
            sent: 0,
            skipped: 0,
        };
        for g in 0..self.groups.groups() {
            let group_wants = std::mem::take(&mut self.per_group[g]);
            if group_wants.is_empty() {
                self.per_group[g] = group_wants;
                continue;
            }
            let req = FetchReq {
                epoch,
                wants: group_wants.clone(),
                codec,
            }
            .to_frame();
            self.per_group[g] = group_wants;
            let mut frames = Vec::new();
            self.exchange(g, &req, &mut frames, |k| k == FrameKind::FetchDone)?;
            let summary = collect_fetch_response(frames, out)?;
            total.sent += summary.sent;
            total.skipped += summary.skipped;
        }
        Ok(total)
    }

    fn push(&mut self, shard_id: u32, epoch: u64, values: &[f32]) -> Result<PushAck, PsError> {
        let g = self.groups.group_of(shard_id);
        let req = Frame {
            kind: FrameKind::Push,
            shard_id,
            version: epoch,
            payload: encode_f32s(values),
        };
        let mut frames = Vec::new();
        self.exchange(g, &req, &mut frames, |k| k == FrameKind::PushAck)?;
        collect_push_response(frames)
    }

    fn push_delta(
        &mut self,
        shard_id: u32,
        epoch: u64,
        base_epoch: u64,
        codec: Codec,
        blob: &[u8],
    ) -> Result<PushAck, PsError> {
        let g = self.groups.group_of(shard_id);
        let req = push_delta_frame(shard_id, epoch, base_epoch, codec, blob);
        let mut frames = Vec::new();
        self.exchange(g, &req, &mut frames, |k| k == FrameKind::PushAck)?;
        collect_push_response(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ShardCache;
    use crate::merge::ShardedAssimilator;
    use vc_asgd::AlphaSchedule;
    use vc_kvstore::{Consistency, VersionedStore};

    fn service(n: usize, p: usize) -> Arc<PsService> {
        let assim = Arc::new(ShardedAssimilator::new(
            Arc::new(VersionedStore::new()),
            n,
            p,
            Consistency::Eventual,
            AlphaSchedule::Const(0.5),
        ));
        let params: Vec<f32> = (0..n).map(|i| i as f32).collect();
        assim.seed_params(&params);
        let svc = Arc::new(PsService::new(assim));
        let (full, manifest) = svc.assimilator().read_params();
        svc.publish_snapshot(1, &full, &manifest);
        svc
    }

    #[test]
    fn group_mapping_is_contiguous_and_total() {
        let g = ShardGroups::new(16, 4);
        assert_eq!(g.groups(), 4);
        for shard in 0..16u32 {
            assert_eq!(g.group_of(shard), (shard / 4) as usize);
        }
        // More groups than shards clamps.
        assert_eq!(ShardGroups::new(2, 8).groups(), 2);
    }

    #[test]
    fn loopback_fetch_and_push_roundtrip() {
        let svc = service(40, 8);
        let server = TcpPsServer::bind(svc.clone(), 3).unwrap();
        let mut client = TcpClient::connect(server.addrs(), server.groups()).unwrap();
        let (want, manifest) = svc.assimilator().read_params();
        let mut cache = ShardCache::new(*svc.assimilator().layout());
        let got = cache.sync(1, &manifest, &mut client).unwrap();
        assert_eq!(got, &want[..]);
        // Second sync: all cache hits, no shard crosses the socket.
        let sent_before = svc.ops().shards_sent;
        cache.sync(1, &manifest, &mut client).unwrap();
        assert_eq!(svc.ops().shards_sent, sent_before);
        // Push one shard through the socket and watch its version move.
        let n0 = svc.assimilator().layout().len(0);
        let ack = client.push(0, 1, &vec![7.0; n0]).unwrap();
        assert_eq!(ack.new_version, 2);
        server.shutdown();
    }

    #[test]
    fn two_clients_share_the_server() {
        let svc = service(24, 4);
        let server = TcpPsServer::bind(svc.clone(), 2).unwrap();
        let addrs = server.addrs().to_vec();
        let groups = server.groups();
        let (want, manifest) = svc.assimilator().read_params();
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let addrs = addrs.clone();
                let manifest = manifest.clone();
                let want = want.clone();
                let svc = svc.clone();
                std::thread::spawn(move || {
                    let mut client = TcpClient::connect(&addrs, groups).unwrap();
                    let mut cache = ShardCache::new(*svc.assimilator().layout());
                    let got = cache.sync(1, &manifest, &mut client).unwrap();
                    assert_eq!(got, &want[..]);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn garbage_on_the_socket_drops_the_connection_not_the_server() {
        let svc = service(10, 2);
        let server = TcpPsServer::bind(svc.clone(), 1).unwrap();
        // Hostile connection: a forged 4 GiB length prefix.
        {
            let mut s = TcpStream::connect(server.addrs()[0]).unwrap();
            s.write_all(&u32::MAX.to_le_bytes()).unwrap();
            s.write_all(&[0u8; 32]).unwrap();
            // The server closes on us; either the read returns 0 or errors.
            let mut buf = [0u8; 8];
            use std::io::Read;
            let _ = s.read(&mut buf);
        }
        // A well-formed client still gets served afterwards.
        let mut client = TcpClient::connect(server.addrs(), server.groups()).unwrap();
        let (want, manifest) = svc.assimilator().read_params();
        let mut cache = ShardCache::new(*svc.assimilator().layout());
        let got = cache.sync(1, &manifest, &mut client).unwrap();
        assert_eq!(got, &want[..]);
        server.shutdown();
    }
}
