//! The parameter service: one request handler shared by every transport.
//!
//! [`PsService::handle`] maps a request frame to its response frames;
//! [`PsService::handle_bytes`] runs the same logic through the full wire
//! codec. The TCP server and the in-memory transport both call into here,
//! so a sweep under the in-memory transport exercises byte-identical
//! frames to a real socket run.
//!
//! Fetches are served from *epoch snapshots*: at each epoch boundary the
//! coordinator publishes the assembled parameter vector with its per-shard
//! version manifest, and workers fetch against that epoch. A worker that
//! already caches a shard at the manifest version gets it skipped — the
//! partial-fetch path that makes sharding pay off on the wire. Pushes go
//! straight to the live per-shard merge.

use crate::codec::Codec;
use crate::merge::ShardedAssimilator;
use crate::wire::{
    decode_all, err_code, error_frame, error_frame_code, DeltaPayload, FetchReq, FetchSummary,
    Frame, FrameKind, WireError, HEADER_LEN,
};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vc_telemetry::metrics::{Counter, Histogram};
use vc_telemetry::Telemetry;
use vc_tensor::codec::{decode_f32s, encode_f32s, encoded_len};
use vc_tensor::Workspace;

/// Counter names for the service's wire accounting.
pub const PS_BYTES_RX: &str = "ps_bytes_rx";
/// Counter: response bytes the service produced.
pub const PS_BYTES_TX: &str = "ps_bytes_tx";
/// Counter: bytes the codec layer kept off the wire (full-blob size minus
/// the delta frame actually sent, fetch and push sides combined).
pub const PS_BYTES_SAVED: &str = "ps_bytes_saved";
/// Histogram: seconds spent quantizing updates at snapshot publish.
pub const PS_ENCODE_S: &str = "ps_encode_s";
/// Histogram: seconds spent decoding pushed update deltas.
pub const PS_DECODE_S: &str = "ps_decode_s";

/// One epoch's published parameters, pre-encoded per shard. Under a lossy
/// codec each *moved* shard also carries its quantized delta against the
/// previous publish (`base_manifest` names the version the delta applies
/// on top of), so a worker that tracked the last epoch downloads the
/// delta instead of the full blob.
struct EpochSnapshot {
    manifest: Vec<u64>,
    blobs: Vec<Bytes>,
    /// Quantized update per shard, `None` where the shard did not move
    /// (or on the first / `Raw` publish). Indexed like `blobs` when
    /// non-empty.
    deltas: Vec<Option<Bytes>>,
    /// Version each delta applies on top of (previous publish's manifest).
    base_manifest: Vec<u64>,
    /// Codec the deltas are encoded in.
    codec: Codec,
}

/// Server-side codec state: the reference parameter vector every worker
/// converges to (the exact sum of quantized deltas) and scratch buffers
/// so steady-state publishes do not allocate.
///
/// Note there is deliberately **no** error-feedback residual here. Each
/// publish encodes `params − reference`, and the reference only advances
/// by what was actually transmitted — so any mass a lossy codec drops is
/// still present in the *next* delta automatically. Adding an explicit
/// residual on top would count that mass twice per round and diverge.
/// Explicit residuals belong to the push stream (see
/// [`crate::codec::encode_delta`]), where the base is re-synced each
/// round and dropped mass would otherwise be lost.
#[derive(Default)]
struct CodecState {
    reference: Vec<f32>,
    prev_manifest: Vec<u64>,
    init: bool,
    ws: Workspace,
    blob_scratch: Vec<u8>,
}

struct PsInstruments {
    tel: Telemetry,
    bytes_saved: Arc<Counter>,
    encode_s: Arc<Histogram>,
    decode_s: Arc<Histogram>,
}

/// Monotonic counters describing the service's traffic. All counts are
/// deterministic functions of the request stream, so DST reports can
/// assert on them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PsOps {
    /// Fetch requests served.
    pub fetches: u64,
    /// Shard blobs actually sent.
    pub shards_sent: u64,
    /// Shards skipped because the worker's cache was current.
    pub cache_hits: u64,
    /// Push merges performed.
    pub pushes: u64,
    /// Request bytes received (frame-encoded size).
    pub bytes_rx: u64,
    /// Response bytes sent (frame-encoded size).
    pub bytes_tx: u64,
}

/// Codec-layer counters, kept **out of [`PsOps`]** on purpose: `PsOps`
/// feeds golden-hashed DST reports, and the vendored serde derive has no
/// `skip_serializing_if`, so any new field there would change the `Raw`
/// wire format of every report. These counters are surfaced only through
/// `/status` and `/metrics`, which are not golden-hashed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CodecOps {
    /// Bytes the codec layer kept off the wire (vs. sending full `Raw`
    /// frames for the same traffic). Zero under `Raw`.
    pub bytes_saved: u64,
    /// Shard fetches answered with a quantized delta instead of the blob.
    pub deltas_sent: u64,
    /// Pushes that arrived as quantized deltas.
    pub delta_pushes: u64,
}

#[derive(Default)]
struct Metrics {
    fetches: AtomicU64,
    shards_sent: AtomicU64,
    cache_hits: AtomicU64,
    pushes: AtomicU64,
    bytes_rx: AtomicU64,
    bytes_tx: AtomicU64,
    bytes_saved: AtomicU64,
    deltas_sent: AtomicU64,
    delta_pushes: AtomicU64,
}

/// The sharded parameter service.
pub struct PsService {
    assim: Arc<ShardedAssimilator>,
    snapshots: RwLock<HashMap<u64, EpochSnapshot>>,
    metrics: Metrics,
    codec: Codec,
    /// Bitmask of codec ids this service speaks (bit `1 << id`).
    supported: u8,
    state: Mutex<CodecState>,
    instruments: Option<PsInstruments>,
}

impl PsService {
    /// Wraps an assimilator as a frame-serving service.
    pub fn new(assim: Arc<ShardedAssimilator>) -> Self {
        PsService {
            assim,
            snapshots: RwLock::new(HashMap::new()),
            metrics: Metrics::default(),
            codec: Codec::Raw,
            supported: 0b1111,
            state: Mutex::new(CodecState::default()),
            instruments: None,
        }
    }

    /// Selects the codec used when publishing snapshots. Fetch responses
    /// only ship deltas to workers requesting this same codec.
    pub fn with_codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Restricts which codec ids this service answers (for negotiation
    /// tests and staged rollouts). `Raw` is always spoken.
    pub fn with_supported(mut self, codecs: &[Codec]) -> Self {
        self.supported = 1; // Raw
        for c in codecs {
            self.supported |= 1 << c.id();
        }
        self
    }

    /// Attaches codec telemetry: the `ps_bytes_saved` counter and the
    /// encode/decode duration histograms.
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        let reg = tel.registry();
        self.instruments = Some(PsInstruments {
            tel: tel.clone(),
            bytes_saved: reg.counter(PS_BYTES_SAVED),
            encode_s: reg.histogram(PS_ENCODE_S),
            decode_s: reg.histogram(PS_DECODE_S),
        });
        self
    }

    /// The codec this service publishes snapshots under.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    fn speaks(&self, codec: Codec) -> bool {
        self.supported & (1 << codec.id()) != 0
    }

    /// The merge pipeline behind this service.
    pub fn assimilator(&self) -> &Arc<ShardedAssimilator> {
        &self.assim
    }

    /// Publishes `params` as the snapshot workers fetch for `epoch`.
    /// `manifest` carries each shard's store version at publish time.
    ///
    /// Under a lossy codec the service maintains a *reference* vector —
    /// the exact value every delta-tracking worker reconstructs — and
    /// publishes each moved shard twice: a full-precision blob of the
    /// reference (for cold or stale workers) and the quantized delta that
    /// advanced the reference from the previous publish. The first publish
    /// is always exact (there is no base to delta against).
    pub fn publish_snapshot(&self, epoch: u64, params: &[f32], manifest: &[u64]) {
        let layout = self.assim.layout();
        assert_eq!(params.len(), layout.param_count(), "snapshot length");
        assert_eq!(manifest.len(), layout.shards(), "manifest length");
        if self.codec == Codec::Raw {
            let blobs = layout
                .iter()
                .map(|(_, range)| encode_f32s(&params[range]))
                .collect();
            self.snapshots.write().insert(
                epoch,
                EpochSnapshot {
                    manifest: manifest.to_vec(),
                    blobs,
                    deltas: Vec::new(),
                    base_manifest: Vec::new(),
                    codec: Codec::Raw,
                },
            );
            return;
        }
        let shards = layout.shards();
        let mut st = self.state.lock();
        let st = &mut *st;
        let mut blobs = Vec::with_capacity(shards);
        let mut deltas = Vec::with_capacity(shards);
        let mut base_manifest = vec![0u64; shards];
        if !st.init {
            st.reference.clear();
            st.reference.extend_from_slice(params);
            st.prev_manifest = manifest.to_vec();
            st.init = true;
            for (_, range) in layout.iter() {
                blobs.push(encode_f32s(&params[range]));
                deltas.push(None);
            }
            base_manifest.copy_from_slice(manifest);
        } else {
            for (i, range) in layout.iter() {
                if manifest[i] == st.prev_manifest[i] {
                    // Shard did not move: republish the reference as-is.
                    blobs.push(encode_f32s(&st.reference[range]));
                    deltas.push(None);
                    base_manifest[i] = manifest[i];
                    continue;
                }
                let len = range.len();
                let mut x = st.ws.take(len);
                let mut y = st.ws.take(len);
                for (j, g) in range.clone().enumerate() {
                    x[j] = params[g] - st.reference[g];
                }
                let t0 = self.instruments.as_ref().map(|ins| ins.tel.now_s());
                self.codec.encode_update(&x, &mut st.blob_scratch);
                if let (Some(t0), Some(ins)) = (t0, self.instruments.as_ref()) {
                    ins.encode_s.observe(ins.tel.now_s() - t0);
                }
                self.codec
                    .decode_update_into(&st.blob_scratch, len, &mut y)
                    .expect("own encoding always decodes");
                for (j, g) in range.clone().enumerate() {
                    st.reference[g] += y[j];
                }
                blobs.push(encode_f32s(&st.reference[range]));
                deltas.push(Some(Bytes::copy_from_slice(&st.blob_scratch)));
                base_manifest[i] = st.prev_manifest[i];
                st.ws.recycle(x);
                st.ws.recycle(y);
            }
            st.prev_manifest.clear();
            st.prev_manifest.extend_from_slice(manifest);
        }
        self.snapshots.write().insert(
            epoch,
            EpochSnapshot {
                manifest: manifest.to_vec(),
                blobs,
                deltas,
                base_manifest,
                codec: self.codec,
            },
        );
    }

    /// Drops snapshots older than `keep_from` (epochs are monotonic; the
    /// coordinator retires snapshots its checkpoints no longer need).
    pub fn retire_snapshots_before(&self, keep_from: u64) {
        self.snapshots.write().retain(|&e, _| e >= keep_from);
    }

    /// Reassembles the full parameter vector of a published epoch
    /// snapshot, if still retained.
    pub fn snapshot_params(&self, epoch: u64) -> Option<Vec<f32>> {
        let snaps = self.snapshots.read();
        let snap = snaps.get(&epoch)?;
        let mut full = Vec::with_capacity(self.assim.layout().param_count());
        for blob in &snap.blobs {
            let part = decode_f32s(blob).expect("snapshot blobs are valid");
            full.extend_from_slice(&part);
        }
        Some(full)
    }

    /// Traffic counters so far.
    pub fn ops(&self) -> PsOps {
        PsOps {
            fetches: self.metrics.fetches.load(Ordering::Relaxed),
            shards_sent: self.metrics.shards_sent.load(Ordering::Relaxed),
            cache_hits: self.metrics.cache_hits.load(Ordering::Relaxed),
            pushes: self.metrics.pushes.load(Ordering::Relaxed),
            bytes_rx: self.metrics.bytes_rx.load(Ordering::Relaxed),
            bytes_tx: self.metrics.bytes_tx.load(Ordering::Relaxed),
        }
    }

    /// Codec-layer counters so far (see [`CodecOps`] for why these are
    /// separate from [`ops`](Self::ops)).
    pub fn codec_ops(&self) -> CodecOps {
        CodecOps {
            bytes_saved: self.metrics.bytes_saved.load(Ordering::Relaxed),
            deltas_sent: self.metrics.deltas_sent.load(Ordering::Relaxed),
            delta_pushes: self.metrics.delta_pushes.load(Ordering::Relaxed),
        }
    }

    fn add_bytes_saved(&self, saved: u64) {
        self.metrics.bytes_saved.fetch_add(saved, Ordering::Relaxed);
        if let Some(ins) = &self.instruments {
            ins.bytes_saved.add(saved);
        }
    }

    /// Handles one request frame, appending response frames to `out`.
    /// Protocol-level failures become [`FrameKind::Error`] frames rather
    /// than errors — the connection survives a bad request.
    pub fn handle(&self, req: &Frame, out: &mut Vec<Frame>) {
        let before = out.len();
        self.metrics
            .bytes_rx
            .fetch_add(req.encoded_len() as u64, Ordering::Relaxed);
        match req.kind {
            FrameKind::Fetch => self.handle_fetch(req, out),
            FrameKind::Push => self.handle_push(req, out),
            FrameKind::PushDelta => self.handle_push_delta(req, out),
            _ => out.push(error_frame("unexpected frame kind")),
        }
        let tx: usize = out[before..].iter().map(|f| f.encoded_len()).sum();
        self.metrics
            .bytes_tx
            .fetch_add(tx as u64, Ordering::Relaxed);
    }

    fn handle_fetch(&self, req: &Frame, out: &mut Vec<Frame>) {
        let fetch = match FetchReq::from_frame(req) {
            Ok(f) => f,
            Err(WireError::UnsupportedCodec(id)) => {
                out.push(error_frame_code(
                    err_code::UNSUPPORTED_CODEC,
                    &format!("unknown codec id {id}"),
                ));
                return;
            }
            Err(e) => {
                out.push(error_frame(&format!("bad fetch: {e}")));
                return;
            }
        };
        if !self.speaks(fetch.codec) {
            out.push(error_frame_code(
                err_code::UNSUPPORTED_CODEC,
                &format!("codec id {} not enabled here", fetch.codec.id()),
            ));
            return;
        }
        let snaps = self.snapshots.read();
        let Some(snap) = snaps.get(&fetch.epoch) else {
            out.push(error_frame(&format!(
                "no snapshot for epoch {}",
                fetch.epoch
            )));
            return;
        };
        let shards = self.assim.layout().shards();
        let mut sent = 0u32;
        let mut skipped = 0u32;
        let mut deltas_sent = 0u64;
        for &(id, cached) in &fetch.wants {
            let i = id as usize;
            if i >= shards {
                out.push(error_frame(&format!("shard {id} out of range")));
                return;
            }
            if snap.manifest[i] == cached {
                skipped += 1;
                continue;
            }
            sent += 1;
            // A worker tracking the previous publish under the same codec
            // gets the quantized delta; everyone else the full blob.
            if fetch.codec != Codec::Raw
                && fetch.codec == snap.codec
                && !snap.deltas.is_empty()
                && cached == snap.base_manifest[i]
            {
                if let Some(delta) = &snap.deltas[i] {
                    let frame = DeltaPayload {
                        base: snap.base_manifest[i],
                        codec: snap.codec,
                        blob: delta.clone(),
                    }
                    .to_frame(FrameKind::ShardDelta, id, snap.manifest[i]);
                    let full_len = 4 + HEADER_LEN + snap.blobs[i].len();
                    let saved = full_len.saturating_sub(frame.encoded_len());
                    self.add_bytes_saved(saved as u64);
                    deltas_sent += 1;
                    out.push(frame);
                    continue;
                }
            }
            out.push(Frame {
                kind: FrameKind::Shard,
                shard_id: id,
                version: snap.manifest[i],
                payload: snap.blobs[i].clone(),
            });
        }
        self.metrics.fetches.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .shards_sent
            .fetch_add(sent as u64, Ordering::Relaxed);
        self.metrics
            .cache_hits
            .fetch_add(skipped as u64, Ordering::Relaxed);
        self.metrics
            .deltas_sent
            .fetch_add(deltas_sent, Ordering::Relaxed);
        out.push(FetchSummary { sent, skipped }.to_frame(fetch.epoch));
    }

    /// A push whose payload is a quantized delta against the epoch
    /// snapshot the worker fetched. The service reconstructs the full
    /// replica (`base + decode(delta)`) and merges it exactly like a raw
    /// push, so the merge pipeline is codec-agnostic.
    fn handle_push_delta(&self, req: &Frame, out: &mut Vec<Frame>) {
        let delta = match DeltaPayload::from_frame(req) {
            Ok(d) => d,
            Err(WireError::UnsupportedCodec(id)) => {
                out.push(error_frame_code(
                    err_code::UNSUPPORTED_CODEC,
                    &format!("unknown codec id {id}"),
                ));
                return;
            }
            Err(e) => {
                out.push(error_frame(&format!("bad push delta: {e}")));
                return;
            }
        };
        if !self.speaks(delta.codec) || delta.codec == Codec::Raw {
            out.push(error_frame_code(
                err_code::UNSUPPORTED_CODEC,
                &format!("codec id {} not enabled here", delta.codec.id()),
            ));
            return;
        }
        let shard_id = req.shard_id as usize;
        let layout = self.assim.layout();
        if shard_id >= layout.shards() {
            out.push(error_frame(&format!("shard {shard_id} out of range")));
            return;
        }
        let len = layout.len(shard_id);
        let mut part = {
            let snaps = self.snapshots.read();
            let Some(snap) = snaps.get(&delta.base) else {
                out.push(error_frame_code(
                    err_code::UNKNOWN_BASE,
                    &format!("no snapshot for base epoch {}", delta.base),
                ));
                return;
            };
            decode_f32s(&snap.blobs[shard_id]).expect("snapshot blobs are valid")
        };
        let t0 = self.instruments.as_ref().map(|ins| ins.tel.now_s());
        let mut update = Vec::with_capacity(len);
        if let Err(e) = delta
            .codec
            .decode_update_into(&delta.blob, len, &mut update)
        {
            out.push(error_frame(&format!("bad delta blob: {e}")));
            return;
        }
        if let (Some(t0), Some(ins)) = (t0, self.instruments.as_ref()) {
            ins.decode_s.observe(ins.tel.now_s() - t0);
        }
        for (p, &u) in part.iter_mut().zip(&update) {
            *p += u;
        }
        let epoch = req.version as usize;
        let ack = self.assim.merge_shard(shard_id, &part, epoch);
        self.metrics.pushes.fetch_add(1, Ordering::Relaxed);
        self.metrics.delta_pushes.fetch_add(1, Ordering::Relaxed);
        let raw_len = 4 + HEADER_LEN + encoded_len(len);
        self.add_bytes_saved(raw_len.saturating_sub(req.encoded_len()) as u64);
        out.push(ack.to_frame(req.shard_id));
    }

    fn handle_push(&self, req: &Frame, out: &mut Vec<Frame>) {
        let shard_id = req.shard_id as usize;
        let layout = self.assim.layout();
        if shard_id >= layout.shards() {
            out.push(error_frame(&format!("shard {shard_id} out of range")));
            return;
        }
        let part = match decode_f32s(&req.payload) {
            Ok(p) => p,
            Err(e) => {
                out.push(error_frame(&format!("bad push blob: {e}")));
                return;
            }
        };
        if part.len() != layout.len(shard_id) {
            out.push(error_frame(&format!(
                "push length {} != shard {shard_id} length {}",
                part.len(),
                layout.len(shard_id)
            )));
            return;
        }
        let epoch = req.version as usize;
        let ack = self.assim.merge_shard(shard_id, &part, epoch);
        self.metrics.pushes.fetch_add(1, Ordering::Relaxed);
        out.push(ack.to_frame(req.shard_id));
    }

    /// The full wire path: decodes request bytes, handles each frame, and
    /// encodes the responses into `out_bytes`. Malformed request *bytes*
    /// (as opposed to well-formed frames with bad contents) are a
    /// transport-level error — a real socket would drop the connection.
    pub fn handle_bytes(&self, req_bytes: &[u8], out_bytes: &mut Vec<u8>) -> Result<(), WireError> {
        let mut reqs = Vec::new();
        decode_all(req_bytes, &mut reqs)?;
        let mut out = Vec::new();
        for req in &reqs {
            self.handle(req, &mut out);
        }
        for frame in &out {
            frame.encode_into(out_bytes);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vc_asgd::AlphaSchedule;
    use vc_kvstore::{Consistency, VersionedStore};

    fn service(n: usize, p: usize) -> PsService {
        let assim = Arc::new(ShardedAssimilator::new(
            Arc::new(VersionedStore::new()),
            n,
            p,
            Consistency::Eventual,
            AlphaSchedule::Const(0.5),
        ));
        let params: Vec<f32> = (0..n).map(|i| i as f32).collect();
        assim.seed_params(&params);
        let svc = PsService::new(assim);
        let (params, manifest) = svc.assimilator().read_params();
        svc.publish_snapshot(1, &params, &manifest);
        svc
    }

    fn fetch_all(svc: &PsService, epoch: u64, shards: usize) -> Vec<Frame> {
        let req = FetchReq {
            epoch,
            wants: (0..shards as u32).map(|i| (i, 0)).collect(),
            codec: Codec::Raw,
        }
        .to_frame();
        let mut out = Vec::new();
        svc.handle(&req, &mut out);
        out
    }

    #[test]
    fn fetch_returns_every_shard_then_done() {
        let svc = service(10, 3);
        let out = fetch_all(&svc, 1, 3);
        assert_eq!(out.len(), 4);
        for (i, f) in out[..3].iter().enumerate() {
            assert_eq!(f.kind, FrameKind::Shard);
            assert_eq!(f.shard_id, i as u32);
            assert_eq!(f.version, 1);
        }
        let done = FetchSummary::from_frame(&out[3]).unwrap();
        assert_eq!(
            done,
            FetchSummary {
                sent: 3,
                skipped: 0
            }
        );
        let ops = svc.ops();
        assert_eq!(ops.fetches, 1);
        assert_eq!(ops.shards_sent, 3);
        assert!(ops.bytes_tx > ops.bytes_rx, "shards dominate the wire");
    }

    #[test]
    fn cached_shards_are_skipped() {
        let svc = service(10, 3);
        let req = FetchReq {
            epoch: 1,
            wants: vec![(0, 1), (1, 0), (2, 1)],
            codec: Codec::Raw,
        }
        .to_frame();
        let mut out = Vec::new();
        svc.handle(&req, &mut out);
        assert_eq!(out.len(), 2, "only shard 1 plus the summary");
        assert_eq!(out[0].shard_id, 1);
        let done = FetchSummary::from_frame(&out[1]).unwrap();
        assert_eq!(
            done,
            FetchSummary {
                sent: 1,
                skipped: 2
            }
        );
        assert_eq!(svc.ops().cache_hits, 2);
    }

    #[test]
    fn unknown_epoch_is_an_error_frame() {
        let svc = service(10, 3);
        let out = fetch_all(&svc, 99, 3);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, FrameKind::Error);
    }

    #[test]
    fn push_merges_and_acks() {
        let svc = service(8, 2);
        let layout_len = svc.assimilator().layout().len(0);
        let push = Frame {
            kind: FrameKind::Push,
            shard_id: 0,
            version: 1, // epoch
            payload: encode_f32s(&vec![100.0; layout_len]),
        };
        let mut out = Vec::new();
        svc.handle(&push, &mut out);
        assert_eq!(out.len(), 1);
        let ack = crate::wire::PushAck::from_frame(&out[0]).unwrap();
        assert_eq!(ack.new_version, 2);
        assert_eq!(ack.clobbered, 0);
        // alpha 0.5 over seed [0,1,..]: shard 0 values move halfway to 100.
        let (params, _) = svc.assimilator().read_params();
        assert!((params[0] - 50.0).abs() < 1e-4);
    }

    #[test]
    fn bad_push_lengths_and_shards_are_error_frames() {
        let svc = service(8, 2);
        let mut out = Vec::new();
        svc.handle(
            &Frame {
                kind: FrameKind::Push,
                shard_id: 9,
                version: 1,
                payload: encode_f32s(&[1.0]),
            },
            &mut out,
        );
        svc.handle(
            &Frame {
                kind: FrameKind::Push,
                shard_id: 0,
                version: 1,
                payload: encode_f32s(&[1.0]),
            },
            &mut out,
        );
        svc.handle(
            &Frame {
                kind: FrameKind::Push,
                shard_id: 0,
                version: 1,
                payload: Bytes::copy_from_slice(b"garbage"),
            },
            &mut out,
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|f| f.kind == FrameKind::Error));
    }

    #[test]
    fn handle_bytes_is_the_same_protocol() {
        let svc = service(10, 3);
        let req = FetchReq {
            epoch: 1,
            wants: vec![(0, 0), (1, 0), (2, 0)],
            codec: Codec::Raw,
        }
        .to_frame();
        let mut direct = Vec::new();
        svc.handle(&req, &mut direct);
        let mut wire_out = Vec::new();
        svc.handle_bytes(&req.encode(), &mut wire_out).unwrap();
        let mut decoded = Vec::new();
        decode_all(&wire_out, &mut decoded).unwrap();
        assert_eq!(decoded, direct, "transport must not change the frames");
    }

    #[test]
    fn raw_ops_serialize_without_codec_fields() {
        // PsOps feeds golden-hashed reports, so its wire shape must stay
        // byte-identical to the pre-codec format: codec counters live in
        // the separate CodecOps struct, never in PsOps.
        let json = serde_json::to_string(&PsOps::default()).unwrap();
        assert!(!json.contains("bytes_saved"), "{json}");
        assert!(!json.contains("deltas_sent"), "{json}");
        assert!(!json.contains("delta_pushes"), "{json}");
        // Pre-codec JSON round-trips exactly.
        let old =
            r#"{"fetches":1,"shards_sent":2,"cache_hits":3,"pushes":4,"bytes_rx":5,"bytes_tx":6}"#;
        let ops: PsOps = serde_json::from_str(old).unwrap();
        assert_eq!(serde_json::to_string(&ops).unwrap(), old);
        // Codec counters surface through codec_ops() instead.
        let svc = service(10, 3);
        assert_eq!(svc.codec_ops(), CodecOps::default());
    }

    #[test]
    fn snapshot_params_reassembles_and_retires() {
        let svc = service(10, 3);
        let full = svc.snapshot_params(1).unwrap();
        assert_eq!(full, (0..10).map(|i| i as f32).collect::<Vec<_>>());
        svc.retire_snapshots_before(2);
        assert!(svc.snapshot_params(1).is_none());
    }
}
